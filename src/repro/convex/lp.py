"""Dense two-phase simplex linear programming.

The relaxed verifiers (MILP class, paper §II-B-2) and the MINLP
branch-and-bound bounder both need an LP oracle.  This is a textbook
tableau simplex with Bland's anti-cycling rule — appropriate for the
dense, small-to-medium instances this library generates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, InfeasibleError, UnboundedError
from repro.convex.problem import LPProblem, Solution

__all__ = ["solve_lp", "simplex_standard_form"]

_EPS = 1e-9


def simplex_standard_form(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int = 10000
) -> tuple[np.ndarray, float]:
    """Solve ``min c^T x`` s.t. ``A x = b``, ``x >= 0`` by two-phase simplex.

    Returns ``(x, objective)``.  Raises :class:`InfeasibleError` or
    :class:`UnboundedError` accordingly.
    """
    a = np.asarray(a, dtype=np.float64).copy()
    b = np.asarray(b, dtype=np.float64).ravel().copy()
    c = np.asarray(c, dtype=np.float64).ravel().copy()
    m, n = a.shape
    # make rhs nonnegative
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    # phase 1: add artificial variables
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # phase-1 objective: minimize sum of artificials
    tableau[m, n : n + m] = 1.0
    basis = list(range(n, n + m))
    # price out artificials
    tableau[m, :] -= tableau[:m, :].sum(axis=0)

    def pivot(t: np.ndarray, basis: list[int], allowed_cols: int, max_iter: int) -> None:
        """Dantzig pricing for speed, switching to Bland's anti-cycling
        rule whenever the objective stalls (degenerate pivots)."""
        rows = t.shape[0] - 1
        stall = 0
        last_obj = t[rows, -1]
        for _ in range(max_iter):
            reduced = t[rows, :allowed_cols]
            if stall < 25:
                enter = int(np.argmin(reduced))
                if reduced[enter] >= -_EPS:
                    return
            else:
                # Bland: smallest-index entering column
                negatives = np.nonzero(reduced < -_EPS)[0]
                if negatives.size == 0:
                    return
                enter = int(negatives[0])
            ratios = np.full(rows, np.inf)
            col = t[:rows, enter]
            pos = col > _EPS
            ratios[pos] = t[:rows, -1][pos] / col[pos]
            if not np.any(np.isfinite(ratios)):
                raise UnboundedError("LP is unbounded")
            # among minimizing ratios pick smallest basis index (Bland tiebreak)
            min_ratio = ratios.min()
            candidates = [i for i in range(rows) if ratios[i] <= min_ratio + _EPS]
            leave = min(candidates, key=lambda i: basis[i])
            piv = t[leave, enter]
            t[leave, :] /= piv  # numlint: disable=NL002 -- leave row chosen from col > _EPS, so piv > _EPS
            mask = np.abs(t[:, enter]) > _EPS
            mask[leave] = False
            t[mask, :] -= np.outer(t[mask, enter], t[leave, :])
            basis[leave] = enter
            obj = t[rows, -1]
            if obj > last_obj + 1e-12 * max(1.0, abs(last_obj)):
                stall = 0
                last_obj = obj
            else:
                stall += 1
        raise ConvergenceError("simplex exceeded its pivot budget", iterations=max_iter)

    pivot(tableau, basis, n + m, max_iter)
    feas_tol = 1e-7 * max(1.0, float(np.max(np.abs(b), initial=0.0)))
    if tableau[m, -1] < -feas_tol:
        raise InfeasibleError(f"phase-1 objective {-tableau[m, -1]:.3e} > 0: infeasible")

    # drive remaining artificials out of the basis where possible
    for i in range(m):
        if basis[i] >= n:
            row = tableau[i, :n]
            j = int(np.argmax(np.abs(row)))
            if abs(row[j]) > _EPS:
                piv = tableau[i, j]
                tableau[i, :] /= piv  # numlint: disable=NL002 -- guarded by abs(row[j]) > _EPS just above
                for k in range(m + 1):
                    if k != i and abs(tableau[k, j]) > _EPS:
                        tableau[k, :] -= tableau[k, j] * tableau[i, :]
                basis[i] = j

    # phase 2: replace objective row
    phase2 = np.zeros((m + 1, n + 1))
    phase2[:m, :n] = tableau[:m, :n]
    phase2[:m, -1] = tableau[:m, -1]
    phase2[m, :n] = c
    for i, bi in enumerate(basis):
        if bi < n and abs(phase2[m, bi]) > _EPS:
            phase2[m, :] -= phase2[m, bi] * phase2[i, :]
    basis2 = list(basis)
    pivot(phase2, basis2, n, max_iter)

    x = np.zeros(n)
    for i, bi in enumerate(basis2):
        if bi < n:
            x[bi] = phase2[i, -1]
    return x, float(c @ x)


def solve_lp(problem: LPProblem, max_iter: int = 10000) -> Solution:
    """Solve a general-form :class:`LPProblem` by reduction to standard form.

    Free variables are split, finite lower bounds shifted to zero, finite
    upper bounds become inequality rows, and inequalities get slacks.
    """
    n = problem.dim
    c = problem.c
    lo, hi = problem.lo, problem.hi

    # variable mapping: x_j = (pos_j - neg_j) + shift_j
    # finite lower bound -> shift; infinite lower bound -> split
    col_pos = np.zeros(n, dtype=int)
    col_neg = np.full(n, -1, dtype=int)
    shift = np.zeros(n)
    next_col = 0
    for j in range(n):
        if np.isfinite(lo[j]):
            shift[j] = lo[j]
            col_pos[j] = next_col
            next_col += 1
        else:
            col_pos[j] = next_col
            col_neg[j] = next_col + 1
            next_col += 2
    n_std = next_col

    def expand_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(n_std)
        for j in range(n):
            out[col_pos[j]] += row[j]
            if col_neg[j] >= 0:
                out[col_neg[j]] -= row[j]
        return out

    eq_rows: list[np.ndarray] = []
    eq_rhs: list[float] = []
    ineq_rows: list[np.ndarray] = []
    ineq_rhs: list[float] = []

    if problem.a is not None:
        for i in range(problem.a.shape[0]):
            eq_rows.append(expand_row(problem.a[i]))
            eq_rhs.append(float(problem.b[i] - problem.a[i] @ shift))
    if problem.g is not None:
        for i in range(problem.g.shape[0]):
            ineq_rows.append(expand_row(problem.g[i]))
            ineq_rhs.append(float(problem.h[i] - problem.g[i] @ shift))
    for j in range(n):
        if np.isfinite(hi[j]):
            row = np.zeros(n)
            row[j] = 1.0
            ineq_rows.append(expand_row(row))
            ineq_rhs.append(float(hi[j] - shift[j]))

    n_slack = len(ineq_rows)
    m_total = len(eq_rows) + n_slack
    a_std = np.zeros((m_total, n_std + n_slack))
    b_std = np.zeros(m_total)
    for i, (row, rhs) in enumerate(zip(eq_rows, eq_rhs)):
        a_std[i, :n_std] = row
        b_std[i] = rhs
    for k, (row, rhs) in enumerate(zip(ineq_rows, ineq_rhs)):
        i = len(eq_rows) + k
        a_std[i, :n_std] = row
        a_std[i, n_std + k] = 1.0
        b_std[i] = rhs

    c_std = np.zeros(n_std + n_slack)
    for j in range(n):
        c_std[col_pos[j]] += c[j]
        if col_neg[j] >= 0:
            c_std[col_neg[j]] -= c[j]
    const = float(c @ shift)

    x_std, obj_std = simplex_standard_form(a_std, b_std, c_std, max_iter=max_iter)
    x = np.zeros(n)
    for j in range(n):
        x[j] = x_std[col_pos[j]] + shift[j]
        if col_neg[j] >= 0:
            x[j] -= x_std[col_neg[j]]
    return Solution(x=x, objective=obj_std + const, iterations=0, converged=True)

"""Problem descriptions for the convex-optimization substrate.

These dataclasses are the intermediate representation shared by the
solvers, the relaxation machinery (Eqs. 7-10), the MINLP branch-and-bound
bounder, and the QoS formulations.  Each problem knows how to evaluate
its objective/constraints and how to certify its own convexity — the
library never silently hands a nonconvex instance to a convex solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import DimensionError, NonConvexError
from repro.linalg.matrix_utils import frobenius_inner
from repro.linalg.psd import is_psd, min_eigenvalue, symmetrize

__all__ = [
    "QuadraticForm",
    "QPProblem",
    "QCQPProblem",
    "SDPProblem",
    "LPProblem",
    "Solution",
]


@dataclass(frozen=True)
class QuadraticForm:
    """``f(x) = 0.5 x^T P x + q^T x + r`` — one term of Eq. 7."""

    p: np.ndarray
    q: np.ndarray
    r: float = 0.0

    def __post_init__(self):
        p = symmetrize(np.asarray(self.p, dtype=np.float64))
        q = np.asarray(self.q, dtype=np.float64).ravel()
        if p.shape[0] != q.size:
            raise DimensionError(f"P is {p.shape} but q has length {q.size}")
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "r", float(self.r))

    @property
    def dim(self) -> int:
        return self.q.size

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64).ravel()
        return float(0.5 * x @ self.p @ x + self.q @ x + self.r)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).ravel()
        return self.p @ x + self.q

    def is_convex(self, tol: float = 1e-9) -> bool:
        """Convex iff P is PSD — the paper's Eq. 7 envelope (1)."""
        return is_psd(self.p, tol=tol)

    def convexity_margin(self) -> float:
        """Smallest eigenvalue of P; >= 0 means convex, > 0 strictly."""
        return min_eigenvalue(self.p)


@dataclass(frozen=True)
class QPProblem:
    """``min 0.5 x^T P x + q^T x`` subject to ``G x <= h`` and ``A x = b``."""

    objective: QuadraticForm
    g: Optional[np.ndarray] = None
    h: Optional[np.ndarray] = None
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None

    def __post_init__(self):
        n = self.objective.dim
        for name, mat, vec in (("inequality", self.g, self.h), ("equality", self.a, self.b)):
            if (mat is None) != (vec is None):
                raise DimensionError(f"{name} constraints need both matrix and rhs")
            if mat is not None:
                m = np.asarray(mat, dtype=np.float64)
                v = np.asarray(vec, dtype=np.float64).ravel()
                if m.ndim != 2 or m.shape[1] != n or m.shape[0] != v.size:
                    raise DimensionError(
                        f"{name} constraint shapes {m.shape} / {v.shape} do not "
                        f"match dimension {n}"
                    )
        if self.g is not None:
            object.__setattr__(self, "g", np.asarray(self.g, dtype=np.float64))
            object.__setattr__(self, "h", np.asarray(self.h, dtype=np.float64).ravel())
        if self.a is not None:
            object.__setattr__(self, "a", np.asarray(self.a, dtype=np.float64))
            object.__setattr__(self, "b", np.asarray(self.b, dtype=np.float64).ravel())

    @property
    def dim(self) -> int:
        return self.objective.dim

    def is_convex(self) -> bool:
        return self.objective.is_convex()

    def residuals(self, x: np.ndarray) -> tuple[float, float]:
        """(max inequality violation, max |equality residual|)."""
        x = np.asarray(x, dtype=np.float64).ravel()
        ineq = 0.0 if self.g is None else float(np.max(np.maximum(self.g @ x - self.h, 0.0), initial=0.0))
        eq = 0.0 if self.a is None else float(np.max(np.abs(self.a @ x - self.b), initial=0.0))
        return ineq, eq

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        ineq, eq = self.residuals(x)
        return ineq <= tol and eq <= tol


@dataclass(frozen=True)
class QCQPProblem:
    """Paper Eq. 7: quadratic objective with quadratic inequality
    constraints ``f_i(x) <= 0`` and linear equalities ``A x = b``."""

    objective: QuadraticForm
    constraints: List[QuadraticForm] = field(default_factory=list)
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None

    def __post_init__(self):
        n = self.objective.dim
        for i, c in enumerate(self.constraints):
            if c.dim != n:
                raise DimensionError(f"constraint {i} has dim {c.dim}, expected {n}")
        if (self.a is None) != (self.b is None):
            raise DimensionError("equality constraints need both A and b")
        if self.a is not None:
            a = np.asarray(self.a, dtype=np.float64)
            b = np.asarray(self.b, dtype=np.float64).ravel()
            if a.ndim != 2 or a.shape[1] != n or a.shape[0] != b.size:
                raise DimensionError("equality constraint shapes do not match")
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "b", b)

    @property
    def dim(self) -> int:
        return self.objective.dim

    def is_convex(self, tol: float = 1e-9) -> bool:
        """Eq. 7's convexity condition: every P_i (objective included)
        positive semidefinite."""
        return self.objective.is_convex(tol) and all(c.is_convex(tol) for c in self.constraints)

    def assert_convex(self) -> "QCQPProblem":
        if not self.objective.is_convex():
            raise NonConvexError(
                f"QCQP objective P0 has min eigenvalue "
                f"{self.objective.convexity_margin():.3e} < 0"
            )
        for i, c in enumerate(self.constraints):
            if not c.is_convex():
                raise NonConvexError(
                    f"QCQP constraint P{i + 1} has min eigenvalue "
                    f"{c.convexity_margin():.3e} < 0"
                )
        return self

    def constraint_values(self, x: np.ndarray) -> np.ndarray:
        return np.array([c.value(x) for c in self.constraints], dtype=np.float64)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        x = np.asarray(x, dtype=np.float64).ravel()
        if self.constraints and np.max(self.constraint_values(x), initial=-np.inf) > tol:
            return False
        if self.a is not None and np.max(np.abs(self.a @ x - self.b), initial=0.0) > tol:
            return False
        return True


@dataclass(frozen=True)
class SDPProblem:
    """Standard-form SDP: ``min <C, X>`` s.t. ``<A_i, X> = b_i``, ``X >= 0``.

    The Eq. 9-10 trace-minimization problems reduce to this form with
    ``C = I`` restricted to the ``R_c`` block.
    """

    c: np.ndarray
    constraint_mats: List[np.ndarray] = field(default_factory=list)
    constraint_rhs: Optional[np.ndarray] = None

    def __post_init__(self):
        c = symmetrize(np.asarray(self.c, dtype=np.float64))
        object.__setattr__(self, "c", c)
        mats = [symmetrize(np.asarray(m, dtype=np.float64)) for m in self.constraint_mats]
        for i, m in enumerate(mats):
            if m.shape != c.shape:
                raise DimensionError(f"constraint matrix {i} shape {m.shape} != {c.shape}")
        object.__setattr__(self, "constraint_mats", mats)
        rhs = (
            np.zeros(len(mats))
            if self.constraint_rhs is None
            else np.asarray(self.constraint_rhs, dtype=np.float64).ravel()
        )
        if rhs.size != len(mats):
            raise DimensionError("rhs length does not match number of constraints")
        object.__setattr__(self, "constraint_rhs", rhs)

    @property
    def dim(self) -> int:
        return self.c.shape[0]

    def objective_value(self, x: np.ndarray) -> float:
        return frobenius_inner(self.c, symmetrize(x))

    def constraint_residual(self, x: np.ndarray) -> float:
        if not self.constraint_mats:
            return 0.0
        x = np.asarray(x, dtype=np.float64)
        vals = np.array([frobenius_inner(m, x) for m in self.constraint_mats])
        return float(np.max(np.abs(vals - self.constraint_rhs)))


@dataclass(frozen=True)
class LPProblem:
    """``min c^T x`` s.t. ``G x <= h``, ``A x = b``, ``lo <= x <= hi``."""

    c: np.ndarray
    g: Optional[np.ndarray] = None
    h: Optional[np.ndarray] = None
    a: Optional[np.ndarray] = None
    b: Optional[np.ndarray] = None
    lo: Optional[np.ndarray] = None
    hi: Optional[np.ndarray] = None

    def __post_init__(self):
        c = np.asarray(self.c, dtype=np.float64).ravel()
        object.__setattr__(self, "c", c)
        n = c.size
        for name in ("g", "a"):
            mat = getattr(self, name)
            if mat is not None:
                m = np.asarray(mat, dtype=np.float64)
                if m.ndim != 2 or m.shape[1] != n:
                    raise DimensionError(f"{name} has shape {m.shape}, expected (*, {n})")
                object.__setattr__(self, name, m)
        for name in ("h", "b"):
            vec = getattr(self, name)
            if vec is not None:
                object.__setattr__(self, name, np.asarray(vec, dtype=np.float64).ravel())
        lo = np.full(n, -np.inf) if self.lo is None else np.asarray(self.lo, dtype=np.float64).ravel()
        hi = np.full(n, np.inf) if self.hi is None else np.asarray(self.hi, dtype=np.float64).ravel()
        if lo.size != n or hi.size != n:
            raise DimensionError("bound vectors must match dimension")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def dim(self) -> int:
        return self.c.size


@dataclass(frozen=True)
class Solution:
    """Solver output: primal point, objective, and convergence metadata."""

    x: np.ndarray
    objective: float
    iterations: int
    converged: bool
    status: str = "optimal"
    dual: Optional[np.ndarray] = None

    def __post_init__(self):
        object.__setattr__(self, "x", np.asarray(self.x, dtype=np.float64))

"""BFGS / L-BFGS quasi-Newton minimizers with trust-region-aware
initialization (paper §IV-C).

"Given a particular Hessian matrix in a resolvable form, proxies (i.e.,
approximations) of the Hessian matrix can be obtained in alternative
ways, e.g., [the] BFGS algorithm.  However, to avoid false curvature
information, additional initialization conditions are required."

Both solvers implement the curvature guard (``s^T y > 0`` before any
update) and the Rafati-Marcia-style initial scaling ``gamma_k I`` that
keeps early steps inside a trust region.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConvergenceError
from repro.obs import current_span, profiled, record_solver_outcome

__all__ = ["OptimizeResult", "minimize_bfgs", "minimize_lbfgs", "numerical_gradient"]

GradFn = Callable[[np.ndarray], np.ndarray]
ObjFn = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class OptimizeResult:
    """Unconstrained-minimizer output."""

    x: np.ndarray
    fun: float
    grad_norm: float
    iterations: int
    converged: bool
    n_curvature_skips: int = 0


def numerical_gradient(f: ObjFn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient for objectives without analytic grads."""
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    for i in range(x.size):
        e = np.zeros_like(x)
        e[i] = eps
        g[i] = (f(x + e) - f(x - e)) / (2.0 * eps)
    return g


def _wolfe_line_search(
    f: ObjFn,
    grad: GradFn,
    x: np.ndarray,
    p: np.ndarray,
    fx: float,
    gx: np.ndarray,
    c1: float = 1e-4,
    c2: float = 0.9,
    max_iter: int = 30,
) -> tuple[float, float, np.ndarray]:
    """Backtracking-with-zoom line search enforcing the Wolfe conditions.

    Returns ``(alpha, f(x + alpha p), grad(x + alpha p))``.
    """
    dphi0 = float(gx @ p)
    alpha = 1.0
    alpha_prev, f_prev = 0.0, fx
    for it in range(max_iter):
        x_new = x + alpha * p
        f_new = f(x_new)
        if f_new > fx + c1 * alpha * dphi0 or (it > 0 and f_new >= f_prev):
            return _zoom(f, grad, x, p, fx, dphi0, alpha_prev, alpha, c1, c2)
        g_new = grad(x_new)
        dphi = float(g_new @ p)
        if abs(dphi) <= -c2 * dphi0:
            return alpha, f_new, g_new
        if dphi >= 0:
            return _zoom(f, grad, x, p, fx, dphi0, alpha, alpha_prev, c1, c2)
        alpha_prev, f_prev = alpha, f_new
        alpha *= 2.0
    g_new = grad(x + alpha * p)
    return alpha, f(x + alpha * p), g_new


def _zoom(f, grad, x, p, fx, dphi0, lo, hi, c1, c2, max_iter: int = 25):
    f_lo = f(x + lo * p)
    for _ in range(max_iter):
        alpha = 0.5 * (lo + hi)
        x_new = x + alpha * p
        f_new = f(x_new)
        if f_new > fx + c1 * alpha * dphi0 or f_new >= f_lo:
            hi = alpha
        else:
            g_new = grad(x_new)
            dphi = float(g_new @ p)
            if abs(dphi) <= -c2 * dphi0:
                return alpha, f_new, g_new
            if dphi * (hi - lo) >= 0:
                hi = lo
            lo, f_lo = alpha, f_new
    x_new = x + lo * p
    return lo, f(x_new), grad(x_new)


@profiled("convex.bfgs.solve")
def minimize_bfgs(
    f: ObjFn,
    x0: np.ndarray,
    grad: GradFn | None = None,
    tol: float = 1e-8,
    max_iter: int = 500,
    initial_trust_radius: float | None = None,
    strict: bool = False,
) -> OptimizeResult:
    """Full-matrix BFGS with curvature-guarded updates.

    ``initial_trust_radius`` caps the very first step length; the paper
    points to trust regions as the remedy for "false curvature
    information" from a cold-started inverse-Hessian proxy.  Lenient on
    non-convergence by default; ``strict=True`` raises
    :class:`ConvergenceError` (the ``convex/`` convention).
    """
    grad = grad or (lambda x: numerical_gradient(f, x))
    x = np.asarray(x0, dtype=np.float64).copy()
    n = x.size
    h = np.eye(n)
    fx = f(x)
    gx = grad(x)
    skips = 0
    for it in range(1, max_iter + 1):
        gn = float(np.linalg.norm(gx))
        if gn <= tol:
            current_span().set(iterations=it - 1, converged=True,
                               curvature_skips=skips)
            record_solver_outcome("bfgs", it - 1, True, residual=gn)
            return OptimizeResult(x=x, fun=fx, grad_norm=gn, iterations=it - 1, converged=True, n_curvature_skips=skips)
        p = -h @ gx
        if it == 1 and initial_trust_radius is not None:
            pn = float(np.linalg.norm(p))
            if pn > initial_trust_radius:
                p *= initial_trust_radius / pn
        if float(gx @ p) >= 0:
            p = -gx  # reset to steepest descent on a bad direction
        alpha, f_new, g_new = _wolfe_line_search(f, grad, x, p, fx, gx)
        s = alpha * p
        y = g_new - gx
        sy = float(s @ y)
        if sy > 1e-12 * float(np.linalg.norm(s)) * float(np.linalg.norm(y) + 1e-300):
            if it == 1:
                # Rafati-Marcia initial scaling: gamma = s^T y / y^T y
                h = (sy / max(float(y @ y), 1e-300)) * np.eye(n)
            rho = 1.0 / sy
            i_mat = np.eye(n)
            v = i_mat - rho * np.outer(s, y)
            h = v @ h @ v.T + rho * np.outer(s, s)
        else:
            skips += 1  # curvature guard: skip update to avoid indefiniteness
        x, fx, gx = x + s, f_new, g_new
    gn = float(np.linalg.norm(gx))
    current_span().set(iterations=max_iter, converged=False,
                       curvature_skips=skips)
    record_solver_outcome("bfgs", max_iter, False, residual=gn)
    if strict:
        raise ConvergenceError(
            f"BFGS did not reach tolerance in {max_iter} iterations "
            f"(grad norm {gn:.3e})", iterations=max_iter, residual=gn)
    return OptimizeResult(
        x=x, fun=fx, grad_norm=gn, iterations=max_iter,
        converged=False, n_curvature_skips=skips,
    )


@profiled("convex.lbfgs.solve")
def minimize_lbfgs(
    f: ObjFn,
    x0: np.ndarray,
    grad: GradFn | None = None,
    memory: int = 10,
    tol: float = 1e-8,
    max_iter: int = 1000,
    strict: bool = False,
) -> OptimizeResult:
    """Limited-memory BFGS (two-loop recursion) with the standard
    ``gamma_k = s^T y / y^T y`` initial Hessian scaling.  Lenient on
    non-convergence by default; ``strict=True`` raises
    :class:`ConvergenceError` (the ``convex/`` convention)."""
    grad = grad or (lambda x: numerical_gradient(f, x))
    x = np.asarray(x0, dtype=np.float64).copy()
    s_hist: deque[np.ndarray] = deque(maxlen=memory)
    y_hist: deque[np.ndarray] = deque(maxlen=memory)
    rho_hist: deque[float] = deque(maxlen=memory)
    fx = f(x)
    gx = grad(x)
    skips = 0
    for it in range(1, max_iter + 1):
        gn = float(np.linalg.norm(gx))
        if gn <= tol:
            current_span().set(iterations=it - 1, converged=True,
                               curvature_skips=skips)
            record_solver_outcome("lbfgs", it - 1, True, residual=gn)
            return OptimizeResult(x=x, fun=fx, grad_norm=gn, iterations=it - 1, converged=True, n_curvature_skips=skips)
        # two-loop recursion
        q = gx.copy()
        alphas = []
        for s, y, rho in zip(reversed(s_hist), reversed(y_hist), reversed(rho_hist)):
            a = rho * float(s @ q)
            alphas.append(a)
            q -= a * y
        if s_hist:
            gamma = float(s_hist[-1] @ y_hist[-1]) / max(float(y_hist[-1] @ y_hist[-1]), 1e-300)
        else:
            gamma = 1.0
        r = gamma * q
        for (s, y, rho), a in zip(zip(s_hist, y_hist, rho_hist), reversed(alphas)):
            b = rho * float(y @ r)
            r += (a - b) * s
        p = -r
        if float(gx @ p) >= 0:
            p = -gx
        alpha, f_new, g_new = _wolfe_line_search(f, grad, x, p, fx, gx)
        s = alpha * p
        y = g_new - gx
        sy = float(s @ y)
        if sy > 1e-12 * float(np.linalg.norm(s)) * float(np.linalg.norm(y) + 1e-300):
            s_hist.append(s)
            y_hist.append(y)
            rho_hist.append(1.0 / sy)
        else:
            skips += 1
        x, fx, gx = x + s, f_new, g_new
    gn = float(np.linalg.norm(gx))
    current_span().set(iterations=max_iter, converged=False,
                       curvature_skips=skips)
    record_solver_outcome("lbfgs", max_iter, False, residual=gn)
    if strict:
        raise ConvergenceError(
            f"L-BFGS did not reach tolerance in {max_iter} iterations "
            f"(grad norm {gn:.3e})", iterations=max_iter, residual=gn)
    return OptimizeResult(
        x=x, fun=fx, grad_norm=gn, iterations=max_iter,
        converged=False, n_curvature_skips=skips,
    )

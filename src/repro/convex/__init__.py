"""Convex-optimization substrate: QP/QCQP/SDP/LP solvers, the
rank->trace->SDP chain (paper Eqs. 7-10), envelopes, trust regions,
BFGS proxies, ADMM, and relaxation-gradation accounting."""

from repro.convex.admm import (
    ADMMResult,
    admm_consensus,
    prox_box,
    prox_indicator_affine,
    prox_l1,
    prox_l2_squared,
    prox_nonconvex_l0,
)
from repro.convex.bfgs import OptimizeResult, minimize_bfgs, minimize_lbfgs, numerical_gradient
from repro.convex.envelopes import (
    Interval,
    LinearBound,
    concave_secant,
    convex_tangent,
    envelope_gap,
    mccormick_bilinear,
    quadratic_envelope,
    relu_envelope,
)
from repro.convex.corr import CoRRConfig, CoRRResult, corr_minimize, fit_convex_quadratic
from repro.convex.langevin import LangevinConfig, LangevinResult, langevin_minimize
from repro.convex.lp import simplex_standard_form, solve_lp
from repro.convex.problem import (
    LPProblem,
    QCQPProblem,
    QPProblem,
    QuadraticForm,
    SDPProblem,
    Solution,
)
from repro.convex.qcqp import ShorResult, shor_relaxation, solve_qcqp, solve_qcqp_barrier
from repro.convex.qp import solve_box_qp, solve_equality_qp, solve_qp
from repro.convex.rank import (
    DecompositionResult,
    make_decomposition_instance,
    rank_minimization_reference,
    trace_minimization,
)
from repro.convex.relaxation import (
    RelaxationChain,
    RelaxationGrade,
    RelaxationStep,
    tightness_ratio,
)
from repro.convex.sdp import AffineSubspaceProjector, solve_sdp
from repro.convex.trust_region import TrustRegionResult, cauchy_point, solve_trust_region

__all__ = [
    "ADMMResult",
    "CoRRConfig",
    "CoRRResult",
    "AffineSubspaceProjector",
    "DecompositionResult",
    "Interval",
    "LangevinConfig",
    "LangevinResult",
    "LPProblem",
    "LinearBound",
    "OptimizeResult",
    "QCQPProblem",
    "QPProblem",
    "QuadraticForm",
    "RelaxationChain",
    "RelaxationGrade",
    "RelaxationStep",
    "SDPProblem",
    "ShorResult",
    "Solution",
    "TrustRegionResult",
    "admm_consensus",
    "cauchy_point",
    "concave_secant",
    "corr_minimize",
    "convex_tangent",
    "envelope_gap",
    "fit_convex_quadratic",
    "langevin_minimize",
    "make_decomposition_instance",
    "mccormick_bilinear",
    "minimize_bfgs",
    "minimize_lbfgs",
    "numerical_gradient",
    "prox_box",
    "prox_indicator_affine",
    "prox_l1",
    "prox_l2_squared",
    "prox_nonconvex_l0",
    "quadratic_envelope",
    "rank_minimization_reference",
    "relu_envelope",
    "shor_relaxation",
    "simplex_standard_form",
    "solve_box_qp",
    "solve_equality_qp",
    "solve_lp",
    "solve_qcqp",
    "solve_qcqp_barrier",
    "solve_qp",
    "solve_sdp",
    "solve_trust_region",
    "tightness_ratio",
    "trace_minimization",
]

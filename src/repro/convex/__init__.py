"""Convex-optimization substrate: QP/QCQP/SDP/LP solvers, the
rank->trace->SDP chain (paper Eqs. 7-10), envelopes, trust regions,
BFGS proxies, ADMM, and relaxation-gradation accounting.

**Non-convergence convention.**  Iterative solvers in this package are
*lenient by default*: when the iteration budget runs out they return
their best iterate with ``converged=False`` (BnB bounding and other
callers tolerate slightly inexact solves).  Every such solver also
accepts ``strict=True``, which raises
:class:`~repro.exceptions.ConvergenceError` instead — the mode the
:mod:`repro.resilience` retry/fallback machinery hooks into.  Solvers
whose fallback output is *exact by construction* (e.g. the trust-region
secular bisection, which always returns a boundary point) stay lenient
and document it.  Long loops additionally accept a cooperative
``budget`` (:class:`repro.resilience.Budget`) charged per iteration.
"""

from repro.convex.admm import (
    ADMMResult,
    admm_consensus,
    prox_box,
    prox_indicator_affine,
    prox_l1,
    prox_l2_squared,
    prox_nonconvex_l0,
)
from repro.convex.bfgs import OptimizeResult, minimize_bfgs, minimize_lbfgs, numerical_gradient
from repro.convex.envelopes import (
    Interval,
    LinearBound,
    concave_secant,
    convex_tangent,
    envelope_gap,
    mccormick_bilinear,
    quadratic_envelope,
    relu_envelope,
)
from repro.convex.corr import CoRRConfig, CoRRResult, corr_minimize, fit_convex_quadratic
from repro.convex.firstorder import (
    BatchQPResult,
    BatchSDPResult,
    box_qp_fista,
    box_qp_fista_batch,
    solve_qcqp_firstorder,
    solve_sdp_firstorder,
    solve_sdp_firstorder_batch,
)
from repro.convex.langevin import LangevinConfig, LangevinResult, langevin_minimize
from repro.convex.lp import simplex_standard_form, solve_lp
from repro.convex.problem import (
    LPProblem,
    QCQPProblem,
    QPProblem,
    QuadraticForm,
    SDPProblem,
    Solution,
)
from repro.convex.qcqp import ShorResult, shor_relaxation, solve_qcqp, solve_qcqp_barrier
from repro.convex.qp import solve_box_qp, solve_equality_qp, solve_qp
from repro.convex.rank import (
    DecompositionResult,
    make_decomposition_instance,
    rank_minimization_reference,
    trace_minimization,
)
from repro.convex.relaxation import (
    RelaxationChain,
    RelaxationGrade,
    RelaxationStep,
    tightness_ratio,
)
from repro.convex.sdp import AffineSubspaceProjector, solve_sdp
from repro.convex.trust_region import TrustRegionResult, cauchy_point, solve_trust_region

__all__ = [
    "ADMMResult",
    "BatchQPResult",
    "BatchSDPResult",
    "CoRRConfig",
    "CoRRResult",
    "AffineSubspaceProjector",
    "DecompositionResult",
    "Interval",
    "LangevinConfig",
    "LangevinResult",
    "LPProblem",
    "LinearBound",
    "OptimizeResult",
    "QCQPProblem",
    "QPProblem",
    "QuadraticForm",
    "RelaxationChain",
    "RelaxationGrade",
    "RelaxationStep",
    "SDPProblem",
    "ShorResult",
    "Solution",
    "TrustRegionResult",
    "admm_consensus",
    "box_qp_fista",
    "box_qp_fista_batch",
    "cauchy_point",
    "concave_secant",
    "corr_minimize",
    "convex_tangent",
    "envelope_gap",
    "fit_convex_quadratic",
    "langevin_minimize",
    "make_decomposition_instance",
    "mccormick_bilinear",
    "minimize_bfgs",
    "minimize_lbfgs",
    "numerical_gradient",
    "prox_box",
    "prox_indicator_affine",
    "prox_l1",
    "prox_l2_squared",
    "prox_nonconvex_l0",
    "quadratic_envelope",
    "rank_minimization_reference",
    "relu_envelope",
    "shor_relaxation",
    "simplex_standard_form",
    "solve_box_qp",
    "solve_equality_qp",
    "solve_lp",
    "solve_qcqp",
    "solve_qcqp_barrier",
    "solve_qcqp_firstorder",
    "solve_qp",
    "solve_sdp",
    "solve_sdp_firstorder",
    "solve_sdp_firstorder_batch",
    "solve_trust_region",
    "tightness_ratio",
    "trace_minimization",
]

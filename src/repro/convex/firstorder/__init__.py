"""First-order fast path for the relaxation chain.

The paper's Eq. 8–10 rank -> trace -> SDP chain and the verification LPs
are stagewise convex programs; every rung of the production ladders used
to pay interior-point or per-iteration eigendecomposition costs even for
the thousands of small, near-identical solves the serving layer
generates.  This package is the gradient-only backend:

* :mod:`~repro.convex.firstorder.gradient` — batched projected FISTA
  (Nesterov momentum + adaptive restart) for the box-QP shaped rungs,
  certified by a closed-form Lagrangian duality gap;
* :mod:`~repro.convex.firstorder.burer_monteiro` — the low-rank
  ``X = V V^T`` factorization solver for the SDP rung, gradient steps on
  ``V`` with rank escalation on stall and an end-of-solve dual
  certificate (no eigendecomposition inside the loop);
* :mod:`~repro.convex.firstorder.qcqp_rung` — the certified
  Shor-lift-solve-recover-project pipeline slotted between the ``sdp``
  and barrier rungs of :func:`repro.convex.qcqp.solve_qcqp_resilient`.

Everything runs behind the :mod:`repro.kernels` vectorized/reference
backend switch and answers either *certified* or not at all
(:class:`~repro.exceptions.CertificationError`), so fallback ladders
degrade honestly instead of returning a fast wrong answer.
"""

from repro.convex.firstorder.burer_monteiro import (
    BatchSDPResult,
    solve_sdp_firstorder,
    solve_sdp_firstorder_batch,
)
from repro.convex.firstorder.gradient import (
    BatchQPResult,
    box_qp_fista,
    box_qp_fista_batch,
)
from repro.convex.firstorder.qcqp_rung import solve_qcqp_firstorder

__all__ = [
    "BatchQPResult",
    "BatchSDPResult",
    "box_qp_fista",
    "box_qp_fista_batch",
    "solve_qcqp_firstorder",
    "solve_sdp_firstorder",
    "solve_sdp_firstorder_batch",
]

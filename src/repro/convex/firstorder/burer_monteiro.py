"""Low-rank Burer–Monteiro factorization solver for the SDP rung.

Instead of projecting onto the PSD cone with a per-iteration
eigendecomposition (the ADMM rung's dominant cost), the SDP

    min <C, X>  s.t.  <A_i, X> = b_i,  <B_j, X> <= d_j,  X >= 0

is factored ``X = V V^T`` with ``V`` an ``n x r`` matrix, ``r << n``, and
solved by an augmented-Lagrangian method taking plain gradient steps on
``V`` (SDPLR; Burer & Monteiro 2003).  PSD-ness holds *by construction*,
so the iteration is eigendecomposition-free.  When the factorization
rank is too small the method stalls on a spurious stationary point; the
solver then **escalates the rank** by activating one more (seeded,
per-problem) column of ``V`` — zero columns have identically zero
gradient, so inactive columns cost nothing and activating one never
disturbs another problem's trajectory in a batch.

Certification: the final augmented-Lagrangian multiplier estimates
``(y, z >= 0)`` give the dual slack matrix ``S = C - A*(y) + B*(z)``.
For any such pair, ``b^T y - d^T z`` lower-bounds the SDP optimum
whenever ``S >= 0`` (weak duality), so the answer is certified only when
the primal residuals, the duality gap *and* ``lambda_min(S)`` are within
tolerance (one batched ``eigvalsh`` at the very end — never inside the
loop).  With a caller-supplied ``trace_ub`` on the optimal ``tr(X)`` a
slightly indefinite slack is corrected by ``lambda_min(S) * trace_ub``
instead of rejected.  Uncertified answers raise
:class:`~repro.exceptions.CertificationError` so the ladder descends.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.convex.problem import Solution
from repro.exceptions import CertificationError, ConfigurationError, DimensionError
from repro.kernels.backend import resolve_backend
from repro.kernels.gram import (
    apply_adjoint_batch,
    apply_adjoint_batch_reference,
    apply_operator_batch,
    apply_operator_batch_reference,
    outer_product_batch,
    stack_symmetric,
)
from repro.obs import current_span, profiled
from repro.parallel.executor import derive_seed
from repro.resilience.budget import Budget

__all__ = ["BatchSDPResult", "solve_sdp_firstorder_batch", "solve_sdp_firstorder"]

#: Armijo sufficient-decrease constant, step halving factor, and the
#: non-monotone window (Grippo et al.) that lets Barzilai–Borwein steps
#: overshoot locally without losing global decrease
_ARMIJO = 1e-4
_STEP_DOWN = 0.5
_NM_WINDOW = 8
#: inner iterations without an outer event before one is forced
_STALL_WINDOW = 300


@dataclass(frozen=True)
class BatchSDPResult:
    """Outcome of one batched Burer–Monteiro solve with certificates."""

    x: np.ndarray             # (B, n, n) factored primal X = V V^T
    v: np.ndarray             # (B, n, r_max) final factors
    objective: np.ndarray     # (B,) <C, X>
    dual_bound: np.ndarray    # (B,) certified lower bounds (-inf if none)
    gap: np.ndarray           # (B,) objective - dual_bound
    eq_residual: np.ndarray   # (B,) max |<A_i,X> - b_i|
    ineq_violation: np.ndarray  # (B,) max(<B_j,X> - d_j, 0)
    min_dual_eig: np.ndarray  # (B,) lambda_min of the dual slack S
    rank: np.ndarray          # (B,) active factorization ranks
    iterations: np.ndarray    # (B,)
    converged: np.ndarray     # (B,) bool
    certified: np.ndarray     # (B,) bool

    @property
    def n_uncertified(self) -> int:
        return int(np.sum(~self.certified))


def _ops(backend: Optional[str]):
    if resolve_backend(backend) == "reference":
        def xmat(v):
            return np.stack([vb @ vb.T for vb in v]) if len(v) else v[..., :0]
        return apply_operator_batch_reference, apply_adjoint_batch_reference, xmat
    return (apply_operator_batch, apply_adjoint_batch,
            lambda v: outer_product_batch(v))


def _merit(cmats, eq_stacks, eq_rhs, ineq_stacks, ineq_rhs,
           y, z, sigma, v, op, xmat):
    """Augmented-Lagrangian value, residuals and the multiplier shifts."""
    x = xmat(v)
    eqr = op(eq_stacks, x) - eq_rhs
    iv = op(ineq_stacks, x) - ineq_rhs
    zhat = np.maximum(0.0, z + sigma[:, None] * iv)
    obj = np.einsum("bij,bij->b", cmats, x)
    phi = (obj
           - np.einsum("bk,bk->b", y, eqr)
           + 0.5 * sigma * np.einsum("bk,bk->b", eqr, eqr)
           + (0.5 / np.maximum(sigma, 1e-30))
           * (np.einsum("bk,bk->b", zhat, zhat)
              - np.einsum("bk,bk->b", z, z)))
    return x, eqr, iv, zhat, obj, phi


@profiled("convex.firstorder.bm_sdp_batch")
def solve_sdp_firstorder_batch(
    c: np.ndarray,
    eq_stacks: np.ndarray,
    eq_rhs: np.ndarray,
    ineq_stacks: Optional[np.ndarray] = None,
    ineq_rhs: Optional[np.ndarray] = None,
    rank: int = 2,
    max_rank: Optional[int] = None,
    max_iter: int = 2000,
    inner_tol: float = 1e-6,
    feas_tol: float = 1e-6,
    cert_tol: float = 1e-4,
    sigma0: float = 2.0,
    seed: int = 0,
    trace_ub: Optional[float] = None,
    v0: Optional[np.ndarray] = None,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
) -> BatchSDPResult:
    """Solve ``B`` small SDPs at once by batched Burer–Monteiro.

    ``c`` is ``(B, n, n)``; ``eq_stacks`` ``(B, k_e, n, n)`` with rhs
    ``(B, k_e)`` and likewise for the inequalities.  All problems in a
    batch share ``(n, k_e, k_i)`` — ragged batches belong in separate
    calls.  ``v0`` (``(B, n, r0)``) warm-starts the factors; otherwise
    each problem draws its initial (and rank-escalation) factor columns
    from a seed derived from its own *content*, so the trajectory of one
    problem never depends on its batch position or on what else shares
    the batch.  A cooperative ``budget`` is charged one unit per batched
    sweep.
    """
    if sigma0 <= 0.0:
        raise ConfigurationError("sigma0 must be positive (it divides the "
                                 "omega/eta gate tethers)")
    c = np.asarray(c, dtype=np.float64)
    if c.ndim != 3 or c.shape[1] != c.shape[2]:
        raise DimensionError(f"expected c of shape (B, n, n); got {c.shape}")
    nb, n = c.shape[0], c.shape[1]
    c = 0.5 * (c + np.transpose(c, (0, 2, 1)))
    eq_stacks = np.asarray(eq_stacks, dtype=np.float64).reshape(nb, -1, n, n)
    eq_rhs = np.asarray(eq_rhs, dtype=np.float64).reshape(nb, -1)
    if ineq_stacks is None:
        ineq_stacks = np.zeros((nb, 0, n, n))
        ineq_rhs = np.zeros((nb, 0))
    else:
        ineq_stacks = np.asarray(ineq_stacks, dtype=np.float64).reshape(nb, -1, n, n)
        ineq_rhs = np.asarray(ineq_rhs, dtype=np.float64).reshape(nb, -1)
    op, adj, xmat = _ops(backend)

    r_max = n if max_rank is None else max(1, min(int(max_rank), n))
    # floor the starting rank at the Barvinok–Pataki bound: an extreme
    # optimal X can need rank r with r(r+1)/2 >= m, and starting below
    # it makes spurious stationary points generic rather than rare
    m_total = eq_rhs.shape[1] + ineq_rhs.shape[1]
    r_pataki = int(np.ceil((np.sqrt(8.0 * m_total + 1.0) - 1.0) / 2.0))
    r0 = max(1, min(max(int(rank), r_pataki), r_max))
    # per-problem seeded init columns keyed by problem *content*, not
    # batch position: initializing or escalating problem b injects the
    # same values whether it is solved alone or inside any batch
    stored = np.empty((nb, n, r_max))
    for b in range(nb):
        if budget is not None:
            budget.spend(1, context="solve_sdp_firstorder_batch.seed")
        h = hashlib.sha256()
        for arr in (c[b], eq_stacks[b], eq_rhs[b], ineq_stacks[b], ineq_rhs[b]):
            h.update(np.ascontiguousarray(arr).tobytes())
        content = int.from_bytes(h.digest()[:8], "little")
        rng = np.random.default_rng(derive_seed(seed, content, "firstorder.bm"))
        stored[b] = rng.standard_normal((n, r_max)) / np.sqrt(max(n, 1))
    v = np.zeros((nb, n, r_max))
    ranks = np.full(nb, r0, dtype=np.int64)
    if v0 is not None:
        v0 = np.asarray(v0, dtype=np.float64).reshape(nb, n, -1)
        rw = min(v0.shape[2], r_max)
        v[:, :, :rw] = v0[:, :, :rw]
        ranks[:] = max(r0, rw)
    else:
        v[:, :, :r0] = stored[:, :, :r0]

    y = np.zeros((nb, eq_rhs.shape[1]))
    z = np.zeros((nb, ineq_rhs.shape[1]))
    sigma = np.full(nb, float(sigma0))
    cnorm = np.sqrt(np.einsum("bij,bij->b", c, c))
    step = 0.1 / (1.0 + cnorm)
    # safeguarded augmented-Lagrangian schedule (Conn–Gould–Toint):
    # omega gates the inner gradient, eta_feas gates whether a finished
    # inner solve is allowed to update the multipliers at all
    omega = np.full(nb, 1.0 / max(float(sigma0), 1e-30))
    eta_feas = np.full(nb, 1.0 / max(float(sigma0), 1e-30) ** 0.1)
    rhs_scale = 1.0 + np.maximum(
        np.max(np.abs(eq_rhs), axis=1, initial=0.0),
        np.max(np.abs(ineq_rhs), axis=1, initial=0.0))
    noimp = np.zeros(nb, dtype=np.int64)
    stall = np.zeros(nb, dtype=np.int64)
    active = np.ones(nb, dtype=bool)
    iterations = np.zeros(nb, dtype=np.int64)
    # Barzilai–Borwein memory (valid only between multiplier updates)
    prev_v = np.zeros_like(v)
    prev_g = np.zeros_like(v)
    have_bb = np.zeros(nb, dtype=bool)
    phi_ring = np.full((nb, _NM_WINDOW), np.inf)

    # cached merit state at the current v (one fresh merit evaluation per
    # iteration: the trial's; accepted trials *become* the cached state)
    x, eqr, iv, zhat, obj, phi = _merit(
        c, eq_stacks, eq_rhs, ineq_stacks, ineq_rhs, y, z, sigma, v, op, xmat)

    for it in range(max_iter):
        if budget is not None:
            budget.spend(1, context="solve_sdp_firstorder_batch")
        if not np.any(active):
            break
        yhat = y - sigma[:, None] * eqr
        s = c - adj(yhat, eq_stacks) + adj(zhat, ineq_stacks)
        g = 2.0 * np.einsum("bij,bjr->bir", s, v)
        gnorm2 = np.einsum("bir,bir->b", g, g)
        gnorm = np.sqrt(gnorm2)
        vscale = 1.0 + np.einsum("bir,bir->b", v, v)

        # spectral (BB1) step, safeguarded into [1e-10, 1e6]
        if np.any(have_bb):
            sk = v - prev_v
            yk = g - prev_g
            sy = np.einsum("bir,bir->b", sk, yk)
            ss = np.einsum("bir,bir->b", sk, sk)
            bb = ss / np.where(np.abs(sy) > 1e-300, sy, 1e-300)
            ok = have_bb & (sy > 1e-14 * np.sqrt(ss * np.einsum("bir,bir->b", yk, yk) + 1e-300))
            step = np.where(ok, np.clip(bb, 1e-10, 1e6), step)

        trial = v - step[:, None, None] * g
        tx, teqr, tiv, tzhat, tobj, phi_t = _merit(
            c, eq_stacks, eq_rhs, ineq_stacks, ineq_rhs, y, z, sigma, trial, op, xmat)
        ref_phi = np.maximum(np.max(phi_ring, axis=1), phi)
        accept = phi_t <= ref_phi - _ARMIJO * step * gnorm2
        move = active & accept
        prev_v = np.where(move[:, None, None], v, prev_v)
        prev_g = np.where(move[:, None, None], g, prev_g)
        # BB only ever fires right after an accepted move; a rejection
        # must keep its halved step until the line search succeeds again
        have_bb = move
        m3 = move[:, None, None]
        v = np.where(m3, trial, v)
        x = np.where(m3, tx, x)
        eqr = np.where(move[:, None], teqr, eqr)
        iv = np.where(move[:, None], tiv, iv)
        zhat = np.where(move[:, None], tzhat, zhat)
        obj = np.where(move, tobj, obj)
        phi = np.where(move, phi_t, phi)
        step = np.where(active & ~accept, step * _STEP_DOWN, step)
        phi_ring[:, it % _NM_WINDOW] = phi
        iterations = iterations + active

        # inner problem solved to the current gate -> outer update.
        # gnorm here is the gradient at the *pre-step* iterate, matching
        # the (yhat, zhat) shifts a multiplier update would promote.  A
        # problem whose inner solve stalls past the window is *forced*
        # into a (never-good) outer event so sigma/rank can still move.
        stall = stall + active
        conv_inner = active & (gnorm <= np.maximum(omega, inner_tol) * vscale)
        forced = active & (stall >= _STALL_WINDOW) & ~conv_inner
        inner_done = conv_inner | forced
        if np.any(inner_done):
            feas = np.maximum(np.max(np.abs(eqr), axis=1, initial=0.0),
                              np.max(np.maximum(iv, 0.0), axis=1, initial=0.0))
            stall = np.where(inner_done, 0, stall)
            # feasibility met its sigma-tied gate: promote the shifts to
            # multipliers and tighten both gates (sigma unchanged)
            good = conv_inner & (feas <= eta_feas * rhs_scale)
            y = np.where(good[:, None], y - sigma[:, None] * eqr, y)
            z = np.where(good[:, None],
                         np.maximum(0.0, z + sigma[:, None] * iv), z)
            omega = np.where(good, omega / sigma, omega)
            eta_feas = np.where(good,
                                eta_feas / np.maximum(sigma, 1e-30) ** 0.9,
                                eta_feas)
            noimp = np.where(good, 0, noimp)
            # feasibility missed the gate: keep the multipliers (a sloppy
            # update would poison them), raise sigma, re-tether the gates
            bad = inner_done & ~good
            # the clip pins sigma inside [sigma0, 1e4] for every branch,
            # keeping every 1/sigma tether finite
            sigma = np.clip(np.where(bad, sigma * 4.0, sigma),
                            float(sigma0), 1e4)
            noimp = np.where(bad, noimp + 1, noimp)
            omega = np.where(bad, 1.0 / sigma, omega)
            eta_feas = np.where(bad, 1.0 / np.maximum(sigma, 1e-30) ** 0.1,
                                eta_feas)
            # persistently stalled while infeasible -> escalate the rank
            esc = bad & (noimp >= 2) & (ranks < r_max)
            idx = np.nonzero(esc)[0]
            if idx.size:
                v[idx, :, ranks[idx]] = stored[idx, :, ranks[idx]]
                ranks[idx] += 1
                noimp[idx] = 0
            # outer change invalidates the BB memory; restart the step
            # conservatively (the AL gradient stiffens with sigma)
            have_bb = have_bb & ~inner_done
            step = np.where(inner_done,
                            0.1 / ((1.0 + cnorm) * (1.0 + np.sqrt(sigma))),
                            step)
            # stop on a *cheap* certificate estimate (no eigh in-loop):
            # the updated multipliers give the dual value directly, and
            # both gates sit well inside the final certification gates
            dual_est = (np.einsum("bk,bk->b", eq_rhs, y)
                        - np.einsum("bk,bk->b", ineq_rhs, z))
            gap_ok = np.abs(obj - dual_est) <= cert_tol * (1.0 + np.abs(obj))
            done = good & (feas <= 5.0 * feas_tol * rhs_scale) \
                & ((gnorm <= inner_tol * vscale) | gap_ok)
            active = active & ~done
            # refresh the stale cached state: escalated rows changed v
            # (full recompute), the rest only changed multipliers
            # (closed-form refresh from the cached residuals)
            if idx.size:
                rx, reqr, riv, rzhat, robj, rphi = _merit(
                    c, eq_stacks, eq_rhs, ineq_stacks, ineq_rhs,
                    y, z, sigma, v, op, xmat)
                e3 = esc[:, None, None]
                x = np.where(e3, rx, x)
                eqr = np.where(esc[:, None], reqr, eqr)
                iv = np.where(esc[:, None], riv, iv)
                obj = np.where(esc, robj, obj)
            zh = np.maximum(0.0, z + sigma[:, None] * iv)
            ph = (obj
                  - np.einsum("bk,bk->b", y, eqr)
                  + 0.5 * sigma * np.einsum("bk,bk->b", eqr, eqr)
                  + (0.5 / sigma) * (np.einsum("bk,bk->b", zh, zh)
                                     - np.einsum("bk,bk->b", z, z)))
            zhat = np.where(inner_done[:, None], zh, zhat)
            phi = np.where(inner_done, ph, phi)
            # the refreshed merit is the only valid non-monotone
            # reference after an outer change — never +inf, which would
            # blind the line search to a divergent first step
            phi_ring = np.where(inner_done[:, None], phi[:, None], phi_ring)

    converged = ~active
    # --- dual certification (single batched eigh, outside the loop;
    # the cached merit state is current for the final iterate) ----------
    yhat = y - sigma[:, None] * eqr
    s = c - adj(yhat, eq_stacks) + adj(zhat, ineq_stacks)
    s = 0.5 * (s + np.transpose(s, (0, 2, 1)))
    min_eig = (np.linalg.eigvalsh(s)[:, 0] if n
               else np.zeros(nb))
    eq_res = np.max(np.abs(eqr), axis=1, initial=0.0)
    ineq_vio = np.max(np.maximum(iv, 0.0), axis=1, initial=0.0)
    dual = (np.einsum("bk,bk->b", eq_rhs, yhat)
            - np.einsum("bk,bk->b", ineq_rhs, zhat))
    s_scale = 1.0 + cnorm
    if trace_ub is not None:
        dual = dual + np.minimum(min_eig, 0.0) * float(trace_ub)
        psd_ok = np.ones(nb, dtype=bool)
    else:
        psd_ok = min_eig >= -cert_tol * s_scale
        dual = np.where(psd_ok, dual, -np.inf)
    gap = obj - dual
    pscale = 1.0 + np.abs(obj)
    certified = (converged & psd_ok
                 & (eq_res <= feas_tol * rhs_scale * 10.0)
                 & (ineq_vio <= feas_tol * rhs_scale * 10.0)
                 & np.isfinite(gap) & (gap <= cert_tol * pscale * 10.0))
    current_span().set(batch=nb, converged=int(np.sum(converged)),
                       certified=int(np.sum(certified)),
                       max_rank=int(np.max(ranks, initial=0)))
    return BatchSDPResult(
        x=x, v=v, objective=obj, dual_bound=dual, gap=gap,
        eq_residual=eq_res, ineq_violation=ineq_vio, min_dual_eig=min_eig,
        rank=ranks, iterations=iterations, converged=converged,
        certified=certified)


def solve_sdp_firstorder(
    c: np.ndarray,
    eq_mats: Sequence[np.ndarray],
    eq_rhs: np.ndarray,
    ineq_mats: Optional[Sequence[np.ndarray]] = None,
    ineq_rhs: Optional[np.ndarray] = None,
    certify: bool = True,
    warm_start: Optional[np.ndarray] = None,
    **kwargs,
) -> Solution:
    """Single-problem Burer–Monteiro solve (a batch of one).

    ``warm_start`` accepts a primal matrix ``X0`` (``(n, n)``); its
    leading eigenpairs seed the factor ``V`` — the one eigendecomposition
    happens before the loop, not inside it.  Remaining keyword arguments
    go to :func:`solve_sdp_firstorder_batch`.  With ``certify=True`` an
    uncertified answer raises
    :class:`~repro.exceptions.CertificationError` carrying the primal
    iterate for warm-start carry-down.
    """
    c = np.asarray(c, dtype=np.float64)
    n = c.shape[0]
    eq_stack = stack_symmetric(list(eq_mats), n=n)[None]
    eq_b = np.asarray(eq_rhs, dtype=np.float64).ravel()[None]
    ineq_stack = None
    ineq_d = None
    if ineq_mats is not None and len(ineq_mats):
        ineq_stack = stack_symmetric(list(ineq_mats), n=n)[None]
        ineq_d = (np.zeros(len(ineq_mats)) if ineq_rhs is None
                  else np.asarray(ineq_rhs, dtype=np.float64).ravel())[None]
    v0 = None
    if warm_start is not None:
        x0 = np.asarray(warm_start, dtype=np.float64)
        if x0.shape == (n, n):
            w, vecs = np.linalg.eigh(0.5 * (x0 + x0.T))
            r = max(1, int(kwargs.get("rank", 2)))
            cols = vecs[:, ::-1][:, :r] * np.sqrt(np.maximum(w[::-1][:r], 0.0))
            v0 = cols[None]
    res = solve_sdp_firstorder_batch(
        c[None], eq_stack, eq_b, ineq_stack, ineq_d, v0=v0, **kwargs)
    if certify and not bool(res.certified[0]):
        raise CertificationError(
            "Burer–Monteiro answer not certified "
            f"(gap {float(res.gap[0]):.3e}, eq residual "
            f"{float(res.eq_residual[0]):.3e}, min dual eig "
            f"{float(res.min_dual_eig[0]):.3e})",
            iterations=int(res.iterations[0]),
            residual=float(res.eq_residual[0]),
            iterate=res.x[0].copy(),
        )
    return Solution(x=res.x[0], objective=float(res.objective[0]),
                    iterations=int(res.iterations[0]),
                    converged=bool(res.converged[0]), status="firstorder")

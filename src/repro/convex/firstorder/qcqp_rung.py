"""The firstorder rung of the QCQP degradation ladder.

Runs the same Shor lifting as the ``sdp`` rung (paper Eq. 7 -> Eq. 10)
but solves the lifted SDP with the Burer–Monteiro factorization instead
of interior point / ADMM, recovers a candidate from the dominant factor
column, projects it back onto the equality manifold (the
feasibility-projection pattern of Wang et al., arXiv:2407.03668), and
only returns when the whole pipeline *certifies*: the SDP solve must
carry its dual certificate and the recovered point must be feasible.
Anything less raises :class:`~repro.exceptions.CertificationError` so
:func:`repro.convex.qcqp.solve_qcqp_resilient` descends to the exact
barrier rung instead of serving a wrong answer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.convex.firstorder.burer_monteiro import solve_sdp_firstorder
from repro.convex.problem import QCQPProblem, Solution
from repro.exceptions import CertificationError
from repro.obs import current_span, profiled
from repro.resilience.budget import Budget

__all__ = ["solve_qcqp_firstorder"]


@profiled("convex.firstorder.qcqp")
def solve_qcqp_firstorder(
    problem: QCQPProblem,
    budget: Optional[Budget] = None,
    warm_start: Optional[np.ndarray] = None,
    feas_tol: float = 1e-5,
    cert_tol: float = 1e-3,
    max_iter: int = 2000,
    seed: int = 0,
    backend: Optional[str] = None,
) -> Solution:
    """Certified first-order solve of a (possibly nonconvex) QCQP.

    ``warm_start`` accepts either the previous rung's lifted matrix
    (``(n+1, n+1)``, e.g. the failed SDP rung's iterate) or a primal
    point (``(n,)``) — anything else is ignored, so the ladder can hand
    down whatever its last rung produced without shape bookkeeping.
    """
    from repro.convex.qcqp import _lift  # local: avoids a module cycle

    n = problem.dim
    obj = _lift(problem.objective.p, problem.objective.q, problem.objective.r, n)
    eq_mats = []
    eq_rhs = []
    e00 = np.zeros((n + 1, n + 1))
    e00[0, 0] = 1.0
    eq_mats.append(e00)
    eq_rhs.append(1.0)
    if problem.a is not None:
        for i in range(problem.a.shape[0]):
            m = np.zeros((n + 1, n + 1))
            m[0, 1:] = 0.5 * problem.a[i]
            m[1:, 0] = 0.5 * problem.a[i]
            eq_mats.append(m)
            eq_rhs.append(float(problem.b[i]))
    ineq_mats = [_lift(c.p, c.q, c.r, n) for c in problem.constraints]
    ineq_rhs = np.zeros(len(ineq_mats))

    lifted_ws = None
    if warm_start is not None:
        ws = np.asarray(warm_start, dtype=np.float64)
        if ws.shape == (n + 1, n + 1):
            lifted_ws = ws
        elif ws.shape == (n,):
            vec = np.concatenate([[1.0], ws])
            lifted_ws = np.outer(vec, vec)

    sol = solve_sdp_firstorder(
        obj, eq_mats, np.asarray(eq_rhs), ineq_mats or None,
        ineq_rhs if len(ineq_mats) else None,
        warm_start=lifted_ws, max_iter=max_iter, cert_tol=cert_tol,
        seed=seed, budget=budget, backend=backend,
    )
    lifted = sol.x
    # rank-1 recovery from the dominant eigenvector of the certified lift
    w, vecs = np.linalg.eigh(lifted)
    vec = vecs[:, -1] * np.sqrt(max(float(w[-1]), 0.0))
    x_rec = vec[1:] / vec[0] if abs(vec[0]) > 1e-9 else lifted[1:, 0]
    # feasibility projection: restore the equality manifold exactly
    if problem.a is not None:
        x_rec = x_rec + np.linalg.pinv(problem.a) @ (problem.b - problem.a @ x_rec)
    if not (np.all(np.isfinite(x_rec)) and problem.is_feasible(x_rec, tol=feas_tol)):
        raise CertificationError(
            "firstorder recovery is infeasible after projection",
            iterations=sol.iterations,
            iterate=x_rec,
        )
    objective = problem.objective.value(x_rec)
    gap = objective - sol.objective  # recovered value vs certified SDP bound
    current_span().set(iterations=sol.iterations, relaxation_gap=float(gap))
    return Solution(x=x_rec, objective=objective, iterations=sol.iterations,
                    converged=True, status="firstorder")

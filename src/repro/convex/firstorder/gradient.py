"""Batched projected/accelerated gradient solvers (FISTA with restart).

The QP-shaped rungs of the relaxation chain are box-constrained convex
quadratics ``min 0.5 x^T P x + q^T x  s.t.  lo <= x <= hi``.  Bunel et
al. (arXiv:2010.14322) observe that this problem class needs no interior
point: a projected accelerated gradient method (Nesterov momentum with
the O'Donoghue–Candès adaptive restart) converges at ``O(1/k^2)`` and
every iteration is a single matrix–vector product plus a clip — which
vectorizes over a whole *stack* of problems as one batched contraction
(:func:`repro.kernels.gram.quad_gradient_batch`).

Every answer is **certified** before it is returned: from the final
gradient ``g = P x + q`` we build exact KKT multipliers
``lam = max(g, 0)`` / ``mu = max(-g, 0)`` (stationarity then holds by
construction wherever the box is finite) and evaluate the Lagrangian
dual in closed form,

    d(lam, mu) = -0.5 x^T P x + lam^T lo - mu^T hi,

so ``gap = primal - dual`` is a sound duality-gap bound by weak duality.
An answer whose relative gap exceeds ``cert_tol`` is *not certified*;
:func:`box_qp_fista` raises :class:`~repro.exceptions.CertificationError`
instead of returning it, so a fallback ladder descends to the exact rung
rather than serving a wrong answer.

Determinism contract: both the single-problem and the batched entry
points route through the same fixed-order einsum kernels, and finished
problems are frozen by a convergence mask, so the trajectory of problem
``b`` in a batch of 256 is bit-identical to solving it alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.convex.problem import Solution
from repro.exceptions import CertificationError, DimensionError
from repro.kernels.backend import resolve_backend
from repro.kernels.gram import quad_gradient_batch, quad_gradient_batch_reference
from repro.obs import current_span, profiled
from repro.resilience.budget import Budget

__all__ = ["BatchQPResult", "box_qp_fista_batch", "box_qp_fista"]


@dataclass(frozen=True)
class BatchQPResult:
    """Outcome of one batched box-QP solve, with per-problem certificates.

    ``certified[b]`` is True only when problem ``b`` converged *and* its
    closed-form duality gap is within tolerance — the only answers the
    fast path is allowed to serve.
    """

    x: np.ndarray            # (B, n) final (always box-feasible) iterates
    objective: np.ndarray    # (B,) primal objectives 0.5 x'Px + q'x
    dual_bound: np.ndarray   # (B,) closed-form Lagrangian dual values
    gap: np.ndarray          # (B,) primal - dual (>= 0 up to round-off)
    iterations: np.ndarray   # (B,) iterations until frozen
    converged: np.ndarray    # (B,) bool
    certified: np.ndarray    # (B,) bool

    @property
    def n_uncertified(self) -> int:
        return int(np.sum(~self.certified))


def _gradient_fn(backend: Optional[str]):
    if resolve_backend(backend) == "reference":
        return quad_gradient_batch_reference
    return quad_gradient_batch


@profiled("convex.firstorder.box_qp_batch")
def box_qp_fista_batch(
    p: np.ndarray,
    q: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_iter: int = 500,
    tol: float = 1e-9,
    cert_tol: float = 1e-6,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
) -> BatchQPResult:
    """Solve ``B`` box QPs at once by FISTA with adaptive restart.

    ``p`` is ``(B, n, n)`` (each slice PSD — convex instances only),
    ``q`` is ``(B, n)``, ``lo``/``hi`` broadcast to ``(B, n)`` (entries
    may be infinite; certification then requires the matching multiplier
    to vanish).  ``x0`` warm-starts the iteration (clipped into the box).
    A cooperative ``budget`` is charged one unit per batched sweep.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.ndim != 3 or q.ndim != 2 or p.shape[:2] != (q.shape[0], q.shape[1]):
        raise DimensionError(f"expected p (B,n,n) and q (B,n); got {p.shape} / {q.shape}")
    nb, n = q.shape
    lo = np.broadcast_to(np.asarray(lo, dtype=np.float64), (nb, n)).copy()
    hi = np.broadcast_to(np.asarray(hi, dtype=np.float64), (nb, n)).copy()
    grad = _gradient_fn(backend)

    # one-time per-problem Lipschitz constants (batched eigh applies the
    # same LAPACK routine per slice, so L_b is batch-size independent)
    if n:
        lips = np.maximum(np.abs(np.linalg.eigvalsh(p)).max(axis=1), 1e-12)
    else:
        lips = np.ones(nb)
    step = (1.0 / lips)[:, None]

    x = np.clip(np.zeros((nb, n)) if x0 is None
                else np.asarray(x0, dtype=np.float64).reshape(nb, n), lo, hi)
    y = x.copy()
    t = np.ones(nb)
    active = np.ones(nb, dtype=bool)
    iterations = np.zeros(nb, dtype=np.int64)

    for _ in range(max_iter):
        if budget is not None:
            budget.spend(1, context="box_qp_fista_batch")
        if not np.any(active):
            break
        g = grad(p, y, q)
        x_new = np.clip(y - step * g, lo, hi)
        diff = x_new - x
        # O'Donoghue–Candès restart: momentum fights the descent direction
        restart = np.einsum("bi,bi->b", y - x_new, diff) > 0.0
        t_cur = np.where(restart, 1.0, t)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_cur * t_cur))
        beta = ((t_cur - 1.0) / t_next)[:, None]
        y_new = x_new + beta * diff
        # freeze finished problems so trajectories are batch-independent
        moved = np.max(np.abs(diff), axis=1, initial=0.0)
        scale = 1.0 + np.max(np.abs(x_new), axis=1, initial=0.0)
        done = moved <= tol * scale
        upd = active[:, None]
        x = np.where(upd, x_new, x)
        y = np.where(upd, y_new, y)
        t = np.where(active, t_next, t)
        iterations = iterations + active
        active = active & ~done

    converged = ~active
    # --- closed-form duality-gap certification -------------------------
    g = grad(p, x, q)
    fin_lo = np.isfinite(lo)
    fin_hi = np.isfinite(hi)
    lam = np.where(fin_lo, np.maximum(g, 0.0), 0.0)
    mu = np.where(fin_hi, np.maximum(-g, 0.0), 0.0)
    # stationarity residual is nonzero only where an infinite bound
    # suppressed its multiplier — the dual is then not finitely evaluable
    stat = np.max(np.abs(g - lam + mu), axis=1) if n else np.zeros(nb)
    px = np.einsum("bij,bj->bi", p, x)
    xpx = np.einsum("bi,bi->b", x, px)
    primal = 0.5 * xpx + np.einsum("bi,bi->b", q, x)
    dual = (-0.5 * xpx
            + np.einsum("bi,bi->b", lam, np.where(fin_lo, lo, 0.0))
            - np.einsum("bi,bi->b", mu, np.where(fin_hi, hi, 0.0)))
    pscale = 1.0 + np.abs(primal)
    dual = np.where(stat <= 1e-9 * pscale, dual, -np.inf)
    gap = primal - dual
    certified = (converged & np.isfinite(primal) & np.isfinite(dual)
                 & (gap <= cert_tol * pscale))
    current_span().set(batch=nb, converged=int(np.sum(converged)),
                       certified=int(np.sum(certified)))
    return BatchQPResult(x=x, objective=primal, dual_bound=dual, gap=gap,
                         iterations=iterations, converged=converged,
                         certified=certified)


def box_qp_fista(
    p: np.ndarray,
    q: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_iter: int = 500,
    tol: float = 1e-9,
    cert_tol: float = 1e-6,
    certify: bool = True,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
) -> Solution:
    """Single-problem form of :func:`box_qp_fista_batch` (a batch of one,
    so the trajectory is bit-identical to the batched solve).

    With ``certify=True`` (default) an uncertified answer raises
    :class:`~repro.exceptions.CertificationError` carrying the best
    iterate (``err.iterate``) for warm-start carry-down.
    """
    q1 = np.asarray(q, dtype=np.float64).ravel()
    n = q1.size
    res = box_qp_fista_batch(
        np.asarray(p, dtype=np.float64).reshape(1, n, n), q1[None, :],
        np.broadcast_to(np.asarray(lo, dtype=np.float64), (n,))[None, :],
        np.broadcast_to(np.asarray(hi, dtype=np.float64), (n,))[None, :],
        x0=None if x0 is None else np.asarray(x0, dtype=np.float64).reshape(1, n),
        max_iter=max_iter, tol=tol, cert_tol=cert_tol,
        budget=budget, backend=backend,
    )
    if certify and not bool(res.certified[0]):
        raise CertificationError(
            f"box QP answer not certified (gap {float(res.gap[0]):.3e}, "
            f"converged={bool(res.converged[0])})",
            iterations=int(res.iterations[0]),
            residual=float(res.gap[0]),
            iterate=res.x[0].copy(),
        )
    return Solution(x=res.x[0], objective=float(res.objective[0]),
                    iterations=int(res.iterations[0]),
                    converged=bool(res.converged[0]), status="firstorder")

"""Convex quadratic programming.

Two solvers are provided:

* :func:`solve_equality_qp` — direct KKT solve for equality-constrained
  QPs (used as the inner step of the barrier and active-set methods, and
  by the adaptive-inertia QP of the RCR stack).
* :func:`solve_qp` — an operator-splitting (OSQP-style ADMM) solver for
  general convex QPs with inequality, equality, and box constraints.
  Splitting solvers are the pragmatic choice the paper's "M-GNU-O
  platform" role requires: robust on small-to-medium dense problems with
  no combinatorial active-set search.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError, NonConvexError
from repro.convex.problem import QPProblem, QuadraticForm, Solution
from repro.obs import current_span, profiled, record_solver_outcome

__all__ = ["solve_equality_qp", "solve_qp", "solve_box_qp"]


def solve_equality_qp(
    p: np.ndarray, q: np.ndarray, a: np.ndarray | None = None, b: np.ndarray | None = None
) -> Solution:
    """Minimize ``0.5 x^T P x + q^T x`` subject to ``A x = b`` via the KKT
    system.  P must be PSD on the nullspace of A; a tiny ridge is added
    for semidefinite P."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64).ravel()
    n = q.size
    ridge = 1e-12 * max(1.0, float(np.trace(np.abs(p))) / max(n, 1))
    p_reg = 0.5 * (p + p.T) + ridge * np.eye(n)
    if a is None or np.asarray(a).size == 0:
        try:
            x = np.linalg.solve(p_reg, -q)
        except np.linalg.LinAlgError as exc:
            raise NonConvexError(f"singular KKT system: {exc}") from exc
        obj = QuadraticForm(p, q).value(x)
        return Solution(x=x, objective=obj, iterations=1, converged=True)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).ravel()
    m = a.shape[0]
    kkt = np.zeros((n + m, n + m))
    kkt[:n, :n] = p_reg
    kkt[:n, n:] = a.T
    kkt[n:, :n] = a
    rhs = np.concatenate([-q, b])
    try:
        sol = np.linalg.solve(kkt, rhs)
    except np.linalg.LinAlgError:
        sol, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
    x, nu = sol[:n], sol[n:]
    obj = QuadraticForm(p, q).value(x)
    return Solution(x=x, objective=obj, iterations=1, converged=True, dual=nu)


@profiled("convex.qp.solve")
def solve_qp(
    problem: QPProblem,
    rho: float = 1.0,
    sigma: float = 1e-6,
    alpha: float = 1.6,
    max_iter: int = 4000,
    tol: float = 1e-8,
    strict: bool = False,
) -> Solution:
    """OSQP-style ADMM for a convex :class:`QPProblem`.

    The problem is rewritten as ``min 0.5 x^T P x + q^T x`` subject to
    ``l <= C x <= u`` where C stacks the inequality rows (``l = -inf``,
    ``u = h``) and equality rows (``l = u = b``).  Raises
    :class:`NonConvexError` when the Hessian fails its PSD certificate.
    Lenient on non-convergence by default (BnB bounding tolerates
    slightly inexact relaxation solves); ``strict=True`` raises
    :class:`ConvergenceError` per the ``convex/`` convention.
    """
    if rho <= 0.0:
        raise ConfigurationError("ADMM penalty rho must be positive")
    if not problem.is_convex():
        raise NonConvexError(
            "QP Hessian is not PSD; relax the problem before calling a convex solver"
        )
    p = problem.objective.p
    q = problem.objective.q
    n = problem.dim

    rows: list[np.ndarray] = []
    lowers: list[np.ndarray] = []
    uppers: list[np.ndarray] = []
    if problem.g is not None:
        rows.append(problem.g)
        lowers.append(np.full(problem.g.shape[0], -np.inf))
        uppers.append(problem.h)
    if problem.a is not None:
        rows.append(problem.a)
        lowers.append(problem.b)
        uppers.append(problem.b)
    if not rows:
        return solve_equality_qp(p, q)
    c = np.vstack(rows)
    lo = np.concatenate(lowers)
    hi = np.concatenate(uppers)
    m = c.shape[0]

    kkt = p + sigma * np.eye(n) + rho * (c.T @ c)
    try:
        chol = np.linalg.cholesky(kkt)
    except np.linalg.LinAlgError as exc:
        raise NonConvexError(f"ADMM KKT matrix not PD: {exc}") from exc

    def kkt_solve(rhs: np.ndarray) -> np.ndarray:
        y = np.linalg.solve(chol, rhs)
        return np.linalg.solve(chol.T, y)

    x = np.zeros(n)
    z = np.zeros(m)
    y = np.zeros(m)
    obj_form = problem.objective
    for it in range(1, max_iter + 1):
        rhs = sigma * x - q + c.T @ (rho * z - y)
        x_new = kkt_solve(rhs)
        cx = c @ x_new
        z_tilde = alpha * cx + (1 - alpha) * z
        z_new = np.clip(z_tilde + y / rho, lo, hi)
        y = y + rho * (z_tilde - z_new)
        prim_res = float(np.max(np.abs(cx - z_new), initial=0.0))
        dual_res = float(np.max(np.abs(rho * c.T @ (z_new - z)), initial=0.0))
        x, z = x_new, z_new
        if prim_res <= tol and dual_res <= tol:
            current_span().set(iterations=it, converged=True, residual=prim_res)
            record_solver_outcome("qp", it, True, residual=prim_res)
            return Solution(
                x=x, objective=obj_form.value(x), iterations=it, converged=True, dual=y
            )
    current_span().set(iterations=max_iter, converged=False)
    record_solver_outcome("qp", max_iter, False)
    if strict:
        raise ConvergenceError(
            f"QP ADMM did not converge in {max_iter} iterations",
            iterations=max_iter,
        )
    # Return best effort with converged=False rather than raising: BnB
    # bounding tolerates slightly inexact relaxation solves.
    return Solution(
        x=x,
        objective=obj_form.value(x),
        iterations=max_iter,
        converged=False,
        status="max_iter",
        dual=y,
    )


@profiled("convex.qp.box")
def solve_box_qp(
    p: np.ndarray,
    q: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    max_iter: int = 2000,
    tol: float = 1e-9,
) -> Solution:
    """Projected-gradient solver for box-constrained convex QPs.

    Used on the hot path (adaptive inertia weights, water-filling
    refinements) where constructing a full :class:`QPProblem` would be
    overkill.  Step size is 1/L with L from the spectral radius of P.
    """
    p = 0.5 * (np.asarray(p, dtype=np.float64) + np.asarray(p, dtype=np.float64).T)
    q = np.asarray(q, dtype=np.float64).ravel()
    lo = np.asarray(lo, dtype=np.float64).ravel()
    hi = np.asarray(hi, dtype=np.float64).ravel()
    n = q.size
    eigs = np.linalg.eigvalsh(p)
    if eigs[0] < -1e-8 * max(1.0, abs(eigs[-1])):
        raise NonConvexError(f"box QP Hessian has negative eigenvalue {eigs[0]:.3e}")
    lipschitz = max(float(eigs[-1]), 1e-12)
    step = 1.0 / lipschitz
    x = np.clip(np.zeros(n), lo, hi)
    form = QuadraticForm(p, q)
    # Nesterov acceleration
    y_acc = x.copy()
    t_acc = 1.0
    for it in range(1, max_iter + 1):
        grad = p @ y_acc + q
        x_new = np.clip(y_acc - step * grad, lo, hi)
        t_new = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_acc * t_acc))
        y_acc = x_new + ((t_acc - 1.0) / t_new) * (x_new - x)
        move = float(np.max(np.abs(x_new - x), initial=0.0))
        x, t_acc = x_new, t_new
        if move <= tol * max(1.0, float(np.max(np.abs(x), initial=0.0))):
            current_span().set(iterations=it, converged=True)
            record_solver_outcome("box-qp", it, True)
            return Solution(x=x, objective=form.value(x), iterations=it, converged=True)
    record_solver_outcome("box-qp", max_iter, False)
    raise ConvergenceError("box QP projected gradient did not converge", iterations=max_iter)

"""Semidefinite programming by ADMM splitting.

The paper's Eq. 10 reformulates the trace-minimization problem as an SDP
and notes that "numerous SDP solvers (e.g., SDPT3 ...) [are] available".
Offline and from scratch, we implement the standard two-block ADMM for
SDPs in the form

    min <C, X>   s.t.  <A_i, X> = b_i,   <B_j, X> <= d_j,   X >= 0.

Inequalities carry scalar slacks ``s_j >= 0`` that live in the cone block
alongside the PSD projection, so the iteration stays a clean two-block
splitting:

* (X, s)-update: joint Euclidean projection of ``(Z - U - C/rho, t - v)``
  onto the affine subspace ``{A(X) = b, B(X) + s = d}`` (a precomputed
  small solve);
* (Z, t)-update: PSD projection of ``X + U`` and clipping of ``s + v``
  to the nonnegative orthant;
* scaled dual ascent on both blocks.

The constraint algebra runs on :mod:`repro.kernels.gram` — constraints
held as one ``(m, n, n)`` stack, the Gram matrix and every operator
application a single contraction — and the iteration loop works in a
preallocated :class:`~repro.kernels.workspace.SDPWorkspace`, so a sweep
performs no Python-level allocation beyond the unavoidable LAPACK calls.
``backend="reference"`` restores the original per-constraint loops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.convex.problem import SDPProblem, Solution
from repro.kernels.backend import resolve_backend
from repro.kernels.gram import (
    apply_adjoint,
    apply_operator,
    gram_matrix,
    gram_matrix_reference,
    stack_symmetric,
)
from repro.kernels.workspace import SDPWorkspace
from repro.linalg.matrix_utils import frobenius_inner
from repro.linalg.psd import project_psd, symmetrize
from repro.obs import current_span, profiled, record_solver_outcome
from repro.resilience.budget import Budget

__all__ = ["solve_sdp", "solve_sdp_general", "AffineSubspaceProjector"]


class AffineSubspaceProjector:
    """Euclidean projection onto ``{X symmetric : <A_i, X> = b_i}``.

    Precomputes the Gram matrix of the constraint operators so repeated
    projections inside ADMM cost a single small solve plus one matrix
    combination.  The backend is resolved at construction time:
    ``"vectorized"`` (default) assembles the Gram and applies the
    operator/adjoint as stacked contractions; ``"reference"`` keeps the
    original ``O(m^2)`` scalar loops.
    """

    def __init__(self, mats: list[np.ndarray], rhs: np.ndarray,
                 backend: Optional[str] = None):
        self.backend = resolve_backend(backend)
        self.mats = [symmetrize(m) for m in mats]
        self.rhs = np.asarray(rhs, dtype=np.float64).ravel()
        self.stack = stack_symmetric(self.mats)
        if self.backend == "reference":
            gram = gram_matrix_reference(self.mats)
        else:
            gram = gram_matrix(self.stack)
        m = len(self.mats)
        # pseudo-inverse tolerates linearly dependent constraints
        self._gram_pinv = np.linalg.pinv(gram) if m else np.zeros((0, 0))

    def project(self, x: np.ndarray) -> np.ndarray:
        """min ||Y - X||_F s.t. <A_i, Y> = b_i."""
        if not self.mats:
            return symmetrize(x)
        x = symmetrize(x)
        if self.backend == "reference":
            vals = np.array([np.sum(m * x) for m in self.mats])
            lam = self._gram_pinv @ (vals - self.rhs)
            out = x.copy()
            for li, m in zip(lam, self.mats):
                out -= li * m
            return out
        lam = self._gram_pinv @ (apply_operator(self.stack, x) - self.rhs)
        return x - apply_adjoint(lam, self.stack)

    def residual(self, x: np.ndarray) -> float:
        if not self.mats:
            return 0.0
        if self.backend == "reference":
            vals = np.array([np.sum(m * x) for m in self.mats])
        else:
            vals = apply_operator(self.stack, np.asarray(x, dtype=np.float64))
        return float(np.max(np.abs(vals - self.rhs)))


class _SlackAffineProjector:
    """Projection of ``(X, s)`` onto ``{A(X) = b, B(X) + s = d}``.

    Equality rows contribute their Gram entries; inequality rows carry a
    slack that adds an identity to their Gram block.  ``project_into``
    is the allocation-free form used by the ADMM sweep — it writes into
    the caller's :class:`~repro.kernels.workspace.SDPWorkspace` buffers.
    """

    def __init__(
        self,
        eq_mats: list[np.ndarray],
        eq_rhs: np.ndarray,
        ineq_mats: list[np.ndarray],
        ineq_rhs: np.ndarray,
        backend: Optional[str] = None,
    ):
        self.backend = resolve_backend(backend)
        self.eq_mats = [symmetrize(m) for m in eq_mats]
        self.ineq_mats = [symmetrize(m) for m in ineq_mats]
        self.all_mats = self.eq_mats + self.ineq_mats
        self.rhs = np.concatenate(
            [np.asarray(eq_rhs, dtype=np.float64).ravel(), np.asarray(ineq_rhs, dtype=np.float64).ravel()]
        )
        self.n_eq = len(self.eq_mats)
        self.n_ineq = len(self.ineq_mats)
        k = self.n_eq + self.n_ineq
        self.stack = stack_symmetric(self.all_mats)
        if self.backend == "reference":
            gram = gram_matrix_reference(self.all_mats)
        else:
            gram = gram_matrix(self.stack)
        # slacks add identity on the inequality block
        for j in range(self.n_eq, k):
            gram[j, j] += 1.0
        self._gram_pinv = np.linalg.pinv(gram) if k else np.zeros((0, 0))

    def project(self, x: np.ndarray, s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k = self.n_eq + self.n_ineq
        if k == 0:
            return symmetrize(x), s
        x = symmetrize(x)
        if self.backend == "reference":
            vals = np.array([np.sum(m * x) for m in self.all_mats])
        else:
            vals = apply_operator(self.stack, x)
        vals[self.n_eq:] += s
        lam = self._gram_pinv @ (vals - self.rhs)
        if self.backend == "reference":
            out = x.copy()
            for li, m in zip(lam, self.all_mats):
                out -= li * m
        else:
            out = x - apply_adjoint(lam, self.stack)
        s_out = s - lam[self.n_eq:]
        return out, s_out

    def project_into(self, x_in: np.ndarray, s_in: np.ndarray,
                     ws: SDPWorkspace) -> None:
        """Project ``(x_in, s_in)`` writing the result into ``ws.x`` /
        ``ws.s`` using only workspace scratch."""
        np.add(x_in, x_in.T, out=ws.x)
        ws.x *= 0.5
        k = self.n_eq + self.n_ineq
        if k == 0:
            ws.s[...] = s_in
            return
        if self.backend == "reference":
            ws.x[...], ws.s[...] = self.project(x_in, s_in)
            return
        apply_operator(self.stack, ws.x, out=ws.vals)
        ws.vals[self.n_eq:] += s_in
        ws.vals -= self.rhs
        np.matmul(self._gram_pinv, ws.vals, out=ws.lam)
        apply_adjoint(ws.lam, self.stack, out=ws.corr)
        ws.x -= ws.corr
        np.subtract(s_in, ws.lam[self.n_eq:], out=ws.s)


@profiled("convex.sdp.solve")
def solve_sdp_general(
    c: np.ndarray,
    eq_mats: list[np.ndarray],
    eq_rhs: np.ndarray,
    ineq_mats: list[np.ndarray] | None = None,
    ineq_rhs: np.ndarray | None = None,
    rho: float = 1.0,
    max_iter: int = 8000,
    tol: float = 1e-7,
    raise_on_failure: bool = False,
    strict: bool = False,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
    warm_start: Optional[np.ndarray] = None,
) -> Solution:
    """Solve ``min <C, X>`` s.t. ``<A_i,X> = b_i``, ``<B_j,X> <= d_j``,
    ``X >= 0`` by two-block ADMM with slack variables.

    Non-convergence follows the ``convex/`` convention: lenient by
    default; ``strict=True`` (or the older ``raise_on_failure``) raises
    :class:`ConvergenceError`.  A cooperative ``budget`` is charged one
    unit per ADMM sweep.  ``backend`` selects the constraint-algebra
    kernels (``None`` resolves the process-wide switch).  ``warm_start``
    seeds both splitting blocks with a primal matrix ``X0`` (``(n, n)``,
    e.g. a failed faster rung's best iterate); mismatched shapes are
    ignored so ladders can hand down whatever they have.
    """
    if rho <= 0.0:
        raise ConfigurationError("ADMM penalty rho must be positive")
    strict = strict or raise_on_failure
    c = symmetrize(np.asarray(c, dtype=np.float64))
    n = c.shape[0]
    ineq_mats = ineq_mats or []
    ineq_rhs = np.zeros(len(ineq_mats)) if ineq_rhs is None else np.asarray(ineq_rhs, dtype=np.float64).ravel()
    projector = _SlackAffineProjector(
        eq_mats, np.asarray(eq_rhs, dtype=np.float64).ravel(), ineq_mats, ineq_rhs,
        backend=backend,
    )
    m_ineq = len(ineq_mats)

    ws = SDPWorkspace(n=n, k=len(eq_mats) + m_ineq, m_ineq=m_ineq)
    if warm_start is not None:
        x0 = np.asarray(warm_start, dtype=np.float64)
        if x0.shape == (n, n) and np.all(np.isfinite(x0)):
            ws.x[...] = symmetrize(x0)
            ws.z[...] = ws.x
    c_over_rho = c / rho
    scale = max(1.0, float(np.linalg.norm(c)))
    prim_res = np.inf
    for it in range(1, max_iter + 1):
        if budget is not None:
            budget.spend(1, context="solve_sdp_general")
        # (X, s)-update: project (z - u - c/rho, t - v) without allocating
        np.subtract(ws.z, ws.u, out=ws.mat_in)
        ws.mat_in -= c_over_rho
        np.subtract(ws.t, ws.v, out=ws.vec_in)
        projector.project_into(ws.mat_in, ws.vec_in, ws)
        # (Z, t)-update: cone projections (eigh allocates internally)
        np.add(ws.x, ws.u, out=ws.mat_tmp)
        z_new = project_psd(ws.mat_tmp)
        t_new = np.maximum(ws.s + ws.v, 0.0)
        np.subtract(z_new, ws.z, out=ws.mat_tmp)
        dual_res = (
            rho
            * (float(np.linalg.norm(ws.mat_tmp)) + float(np.linalg.norm(t_new - ws.t)))
            / scale
        )
        ws.z[...] = z_new
        ws.t[...] = t_new
        # scaled dual ascent
        ws.u += ws.x
        ws.u -= ws.z
        ws.v += ws.s
        ws.v -= ws.t
        np.subtract(ws.x, ws.z, out=ws.mat_tmp)
        prim_res = (
            float(np.linalg.norm(ws.mat_tmp)) + float(np.linalg.norm(ws.s - ws.t))
        ) / max(1.0, float(np.linalg.norm(ws.x)))
        if prim_res <= tol and dual_res <= tol:
            current_span().set(iterations=it, converged=True, residual=prim_res)
            record_solver_outcome("sdp", it, True, residual=prim_res)
            return Solution(
                x=ws.z.copy(), objective=frobenius_inner(c, ws.z),
                iterations=it, converged=True,
            )
    current_span().set(iterations=max_iter, converged=False,
                       residual=float(prim_res))
    record_solver_outcome("sdp", max_iter, False, residual=float(prim_res))
    if strict:
        raise ConvergenceError("SDP ADMM did not converge", iterations=max_iter, residual=prim_res)
    return Solution(
        x=ws.z.copy(),
        objective=frobenius_inner(c, ws.z),
        iterations=max_iter,
        converged=False,
        status="max_iter",
    )


def solve_sdp(
    problem: SDPProblem,
    rho: float = 1.0,
    max_iter: int = 5000,
    tol: float = 1e-7,
    raise_on_failure: bool = False,
    strict: bool = False,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
    warm_start: Optional[np.ndarray] = None,
) -> Solution:
    """Solve a standard-form (equality-constrained) :class:`SDPProblem`."""
    return solve_sdp_general(
        problem.c,
        problem.constraint_mats,
        problem.constraint_rhs,
        rho=rho,
        max_iter=max_iter,
        tol=tol,
        strict=strict or raise_on_failure,
        budget=budget,
        backend=backend,
        warm_start=warm_start,
    )

"""Semidefinite programming by ADMM splitting.

The paper's Eq. 10 reformulates the trace-minimization problem as an SDP
and notes that "numerous SDP solvers (e.g., SDPT3 ...) [are] available".
Offline and from scratch, we implement the standard two-block ADMM for
SDPs in the form

    min <C, X>   s.t.  <A_i, X> = b_i,   <B_j, X> <= d_j,   X >= 0.

Inequalities carry scalar slacks ``s_j >= 0`` that live in the cone block
alongside the PSD projection, so the iteration stays a clean two-block
splitting:

* (X, s)-update: joint Euclidean projection of ``(Z - U - C/rho, t - v)``
  onto the affine subspace ``{A(X) = b, B(X) + s = d}`` (a precomputed
  small solve);
* (Z, t)-update: PSD projection of ``X + U`` and clipping of ``s + v``
  to the nonnegative orthant;
* scaled dual ascent on both blocks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.convex.problem import SDPProblem, Solution
from repro.linalg.psd import project_psd, symmetrize
from repro.obs import current_span, profiled, record_solver_outcome
from repro.resilience.budget import Budget

__all__ = ["solve_sdp", "solve_sdp_general", "AffineSubspaceProjector"]


class AffineSubspaceProjector:
    """Euclidean projection onto ``{X symmetric : <A_i, X> = b_i}``.

    Precomputes the Gram matrix of the constraint operators so repeated
    projections inside ADMM cost a single small solve plus one matrix
    combination.
    """

    def __init__(self, mats: list[np.ndarray], rhs: np.ndarray):
        self.mats = [symmetrize(m) for m in mats]
        self.rhs = np.asarray(rhs, dtype=np.float64).ravel()
        m = len(self.mats)
        gram = np.zeros((m, m))
        for i in range(m):
            for j in range(i, m):
                gram[i, j] = gram[j, i] = float(np.sum(self.mats[i] * self.mats[j]))
        # pseudo-inverse tolerates linearly dependent constraints
        self._gram_pinv = np.linalg.pinv(gram) if m else np.zeros((0, 0))

    def project(self, x: np.ndarray) -> np.ndarray:
        """min ||Y - X||_F s.t. <A_i, Y> = b_i."""
        if not self.mats:
            return symmetrize(x)
        x = symmetrize(x)
        vals = np.array([np.sum(m * x) for m in self.mats])
        lam = self._gram_pinv @ (vals - self.rhs)
        out = x.copy()
        for li, m in zip(lam, self.mats):
            out -= li * m
        return out

    def residual(self, x: np.ndarray) -> float:
        if not self.mats:
            return 0.0
        vals = np.array([np.sum(m * x) for m in self.mats])
        return float(np.max(np.abs(vals - self.rhs)))


class _SlackAffineProjector:
    """Projection of ``(X, s)`` onto ``{A(X) = b, B(X) + s = d}``.

    Equality rows contribute their Gram entries; inequality rows carry a
    slack that adds an identity to their Gram block.
    """

    def __init__(
        self,
        eq_mats: list[np.ndarray],
        eq_rhs: np.ndarray,
        ineq_mats: list[np.ndarray],
        ineq_rhs: np.ndarray,
    ):
        self.eq_mats = [symmetrize(m) for m in eq_mats]
        self.ineq_mats = [symmetrize(m) for m in ineq_mats]
        self.all_mats = self.eq_mats + self.ineq_mats
        self.rhs = np.concatenate(
            [np.asarray(eq_rhs, dtype=np.float64).ravel(), np.asarray(ineq_rhs, dtype=np.float64).ravel()]
        )
        self.n_eq = len(self.eq_mats)
        self.n_ineq = len(self.ineq_mats)
        k = self.n_eq + self.n_ineq
        gram = np.zeros((k, k))
        for i in range(k):
            for j in range(i, k):
                gram[i, j] = gram[j, i] = float(np.sum(self.all_mats[i] * self.all_mats[j]))
        # slacks add identity on the inequality block
        for j in range(self.n_eq, k):
            gram[j, j] += 1.0
        self._gram_pinv = np.linalg.pinv(gram) if k else np.zeros((0, 0))

    def project(self, x: np.ndarray, s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        k = self.n_eq + self.n_ineq
        if k == 0:
            return symmetrize(x), s
        x = symmetrize(x)
        vals = np.array([np.sum(m * x) for m in self.all_mats])
        vals[self.n_eq :] += s
        lam = self._gram_pinv @ (vals - self.rhs)
        out = x.copy()
        for li, m in zip(lam, self.all_mats):
            out -= li * m
        s_out = s - lam[self.n_eq :]
        return out, s_out


@profiled("convex.sdp.solve")
def solve_sdp_general(
    c: np.ndarray,
    eq_mats: list[np.ndarray],
    eq_rhs: np.ndarray,
    ineq_mats: list[np.ndarray] | None = None,
    ineq_rhs: np.ndarray | None = None,
    rho: float = 1.0,
    max_iter: int = 8000,
    tol: float = 1e-7,
    raise_on_failure: bool = False,
    strict: bool = False,
    budget: Optional[Budget] = None,
) -> Solution:
    """Solve ``min <C, X>`` s.t. ``<A_i,X> = b_i``, ``<B_j,X> <= d_j``,
    ``X >= 0`` by two-block ADMM with slack variables.

    Non-convergence follows the ``convex/`` convention: lenient by
    default; ``strict=True`` (or the older ``raise_on_failure``) raises
    :class:`ConvergenceError`.  A cooperative ``budget`` is charged one
    unit per ADMM sweep.
    """
    if rho <= 0.0:
        raise ConfigurationError("ADMM penalty rho must be positive")
    strict = strict or raise_on_failure
    c = symmetrize(np.asarray(c, dtype=np.float64))
    n = c.shape[0]
    ineq_mats = ineq_mats or []
    ineq_rhs = np.zeros(len(ineq_mats)) if ineq_rhs is None else np.asarray(ineq_rhs, dtype=np.float64).ravel()
    projector = _SlackAffineProjector(eq_mats, np.asarray(eq_rhs, dtype=np.float64).ravel(), ineq_mats, ineq_rhs)
    m_ineq = len(ineq_mats)

    x = np.zeros((n, n))
    z = np.zeros((n, n))
    u = np.zeros((n, n))
    s = np.zeros(m_ineq)
    t = np.zeros(m_ineq)
    v = np.zeros(m_ineq)
    scale = max(1.0, float(np.linalg.norm(c)))
    prim_res = np.inf
    for it in range(1, max_iter + 1):
        if budget is not None:
            budget.spend(1, context="solve_sdp_general")
        x, s = projector.project(z - u - c / rho, t - v)
        z_new = project_psd(x + u)
        t_new = np.maximum(s + v, 0.0)
        dual_res = (
            rho
            * (float(np.linalg.norm(z_new - z)) + float(np.linalg.norm(t_new - t)))
            / scale
        )
        z, t = z_new, t_new
        u = u + x - z
        v = v + s - t
        prim_res = (
            float(np.linalg.norm(x - z)) + float(np.linalg.norm(s - t))
        ) / max(1.0, float(np.linalg.norm(x)))
        if prim_res <= tol and dual_res <= tol:
            current_span().set(iterations=it, converged=True, residual=prim_res)
            record_solver_outcome("sdp", it, True, residual=prim_res)
            return Solution(
                x=z, objective=float(np.sum(c * z)), iterations=it, converged=True
            )
    current_span().set(iterations=max_iter, converged=False,
                       residual=float(prim_res))
    record_solver_outcome("sdp", max_iter, False, residual=float(prim_res))
    if strict:
        raise ConvergenceError("SDP ADMM did not converge", iterations=max_iter, residual=prim_res)
    return Solution(
        x=z,
        objective=float(np.sum(c * z)),
        iterations=max_iter,
        converged=False,
        status="max_iter",
    )


def solve_sdp(
    problem: SDPProblem,
    rho: float = 1.0,
    max_iter: int = 5000,
    tol: float = 1e-7,
    raise_on_failure: bool = False,
    strict: bool = False,
    budget: Optional[Budget] = None,
) -> Solution:
    """Solve a standard-form (equality-constrained) :class:`SDPProblem`."""
    return solve_sdp_general(
        problem.c,
        problem.constraint_mats,
        problem.constraint_rhs,
        rho=rho,
        max_iter=max_iter,
        tol=tol,
        strict=strict or raise_on_failure,
        budget=budget,
    )

"""Convex Relaxation Regression (CoRR).

§I names "Convex Relaxation Regression (CoRR)" among the general-purpose
approaches applicable once a nonconvex function has been decomposed.  The
idea (Bhojanapalli et al. / the CoRR line): estimate the *convex
envelope* of a nonconvex objective from function evaluations by fitting
the best convex quadratic under-estimator over a trust region, minimize
the surrogate, recenter, and shrink.  The fit is itself a convex program
— here a least-squares fit followed by a PSD projection of the quadratic
term, with the under-estimation constraint enforced by an offset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.linalg.psd import project_psd

__all__ = ["CoRRConfig", "CoRRResult", "corr_minimize", "fit_convex_quadratic"]


def fit_convex_quadratic(
    points: np.ndarray, values: np.ndarray, underestimate: bool = True
) -> tuple[np.ndarray, np.ndarray, float]:
    """Fit ``q(x) = 0.5 x^T P x + b^T x + c`` with ``P >= 0`` to samples.

    Least-squares fit of a full quadratic, then projection of the
    quadratic term onto the PSD cone; with ``underestimate`` the constant
    is lowered so ``q(x_i) <= f(x_i)`` at every sample — a valid
    (regression) convex under-estimator on the sampled region.
    Returns ``(P, b, c)``.
    """
    points = np.asarray(points, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64).ravel()
    n_samples, dim = points.shape
    n_quad = dim * (dim + 1) // 2
    if n_samples < n_quad + dim + 1:
        raise ConfigurationError(
            f"need at least {n_quad + dim + 1} samples to fit a {dim}-D quadratic"
        )
    # design matrix: [upper-tri quadratic monomials, linear, 1]
    cols = []
    idx_pairs = [(i, j) for i in range(dim) for j in range(i, dim)]
    for i, j in idx_pairs:
        factor = 0.5 if i == j else 1.0
        cols.append(factor * points[:, i] * points[:, j])
    for i in range(dim):
        cols.append(points[:, i])
    cols.append(np.ones(n_samples))
    design = np.stack(cols, axis=1)
    coef, *_ = np.linalg.lstsq(design, values, rcond=None)

    p = np.zeros((dim, dim))
    for (i, j), v in zip(idx_pairs, coef[: len(idx_pairs)]):
        if i == j:
            p[i, i] = v
        else:
            # the design column x_i x_j (i < j) carries P_ij + P_ji = 2 P_ij
            # worth of the quadratic form, and q(x) uses 0.5 x^T P x, so the
            # fitted coefficient equals P_ij directly
            p[i, j] = p[j, i] = v
    b = coef[len(idx_pairs) : len(idx_pairs) + dim]
    c = float(coef[-1])
    p = project_psd(p)
    if underestimate:
        fitted = 0.5 * np.einsum("si,ij,sj->s", points, p, points) + points @ b + c
        overshoot = float(np.max(fitted - values, initial=0.0))
        c -= overshoot
    return p, b, c


@dataclass(frozen=True)
class CoRRConfig:
    """CoRR loop parameters."""

    n_samples: int = 40
    n_rounds: int = 8
    shrink: float = 0.6
    ridge: float = 1e-8

    def __post_init__(self):
        if self.n_samples < 4 or self.n_rounds < 1:
            raise ConfigurationError("invalid CoRR configuration")
        if not 0.0 < self.shrink < 1.0:
            raise ConfigurationError("shrink factor must be in (0, 1)")


@dataclass
class CoRRResult:
    """CoRR outcome with the per-round surrogate minima."""

    best_x: np.ndarray
    best_value: float
    evaluations: int
    round_bests: List[float] = field(default_factory=list)


def corr_minimize(
    objective: Callable[[np.ndarray], float],
    lo: np.ndarray,
    hi: np.ndarray,
    config: CoRRConfig | None = None,
    seed: int = 0,
) -> CoRRResult:
    """Minimize a (nonconvex) objective over a box by iterated convex
    quadratic regression surrogates.

    Each round samples the current region, fits a convex under-estimating
    quadratic, minimizes it in closed form (clipped to the region), and
    recenters a shrunken region at the surrogate minimizer.
    """
    cfg = config or CoRRConfig()
    lo = np.asarray(lo, dtype=np.float64).ravel()
    hi = np.asarray(hi, dtype=np.float64).ravel()
    if lo.size != hi.size or np.any(lo > hi):
        raise ConfigurationError("invalid box bounds")
    dim = lo.size
    rng = np.random.default_rng(seed)

    center = 0.5 * (lo + hi)
    radius = 0.5 * (hi - lo)
    best_x = center.copy()
    best_value = float(objective(best_x))
    evaluations = 1
    round_bests: List[float] = []

    for _ in range(cfg.n_rounds):
        pts = center + radius * (rng.random((cfg.n_samples, dim)) * 2 - 1)
        pts = np.clip(pts, lo, hi)
        vals = np.array([objective(p) for p in pts])
        evaluations += cfg.n_samples
        i_best = int(np.argmin(vals))
        if vals[i_best] < best_value:
            best_value = float(vals[i_best])
            best_x = pts[i_best].copy()
        try:
            p, b, c = fit_convex_quadratic(pts, vals)
        except ConfigurationError:
            round_bests.append(best_value)
            continue
        # minimize the surrogate over the region
        p_reg = p + cfg.ridge * np.eye(dim)
        try:
            x_star = np.linalg.solve(p_reg, -b)
        except np.linalg.LinAlgError:
            x_star = center
        x_star = np.clip(x_star, np.maximum(center - radius, lo),
                         np.minimum(center + radius, hi))
        val_star = float(objective(x_star))
        evaluations += 1
        if val_star < best_value:
            best_value = val_star
            best_x = x_star.copy()
        round_bests.append(best_value)
        center = best_x.copy()
        radius = radius * cfg.shrink
    return CoRRResult(best_x=best_x, best_value=best_value,
                      evaluations=evaluations, round_bests=round_bests)

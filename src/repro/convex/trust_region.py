"""Trust-region subproblem machinery (paper §IV-C).

"Resolving of the QCQP can assist in the determination of the involved
*trust regions* (the subset of the objective function region that is
approximated)."  The trust-region subproblem

    min  0.5 p^T B p + g^T p    s.t.  ||p|| <= delta

is itself a QCQP with a single ball constraint; it is solved here by the
More-Sorensen secular-equation method, which is exact even for
*indefinite* B — one of the few nonconvex problems with a polynomial
algorithm, and the reason trust-region methods can exploit curvature the
paper's BFGS proxies cannot certify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.obs import current_span, profiled
from repro.resilience.budget import Budget

__all__ = ["TrustRegionResult", "solve_trust_region", "cauchy_point"]


@dataclass(frozen=True)
class TrustRegionResult:
    """Solution of a trust-region subproblem."""

    p: np.ndarray
    value: float
    lagrange_multiplier: float
    on_boundary: bool
    hard_case: bool


def cauchy_point(g: np.ndarray, b: np.ndarray, delta: float) -> np.ndarray:
    """Cauchy (steepest-descent) point — the cheap baseline step that any
    trust-region solver must dominate."""
    if delta <= 0.0:
        raise ConfigurationError("trust-region radius delta must be positive")
    g = np.asarray(g, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64)
    gn = float(np.linalg.norm(g))
    if gn == 0.0:
        return np.zeros_like(g)
    gbg = float(g @ b @ g)
    if gbg <= 0:
        tau = 1.0
    else:
        tau = min(gn**3 / (delta * gbg), 1.0)
    return -tau * (delta / gn) * g


@profiled("convex.trust_region.solve")
def solve_trust_region(
    g: np.ndarray,
    b: np.ndarray,
    delta: float,
    tol: float = 1e-10,
    max_iter: int = 200,
    budget: Optional[Budget] = None,
) -> TrustRegionResult:
    """More-Sorensen: find ``p`` and ``lam >= 0`` with
    ``(B + lam I) p = -g``, ``lam (delta - ||p||) = 0``, ``B + lam I >= 0``.

    A cooperative ``budget`` is charged one unit per secular-equation
    bisection step.
    """
    g = np.asarray(g, dtype=np.float64).ravel()
    b = 0.5 * (np.asarray(b, dtype=np.float64) + np.asarray(b, dtype=np.float64).T)
    n = g.size
    w, v = np.linalg.eigh(b)
    gbar = v.T @ g
    lam_min = float(w[0])

    def p_norm(lam: float) -> float:
        denom = w + lam
        coeffs = np.where(np.abs(denom) > 1e-300, -gbar / denom, 0.0)
        return float(np.linalg.norm(coeffs))

    def p_of(lam: float) -> np.ndarray:
        denom = w + lam
        coeffs = np.where(np.abs(denom) > 1e-300, -gbar / denom, 0.0)
        return v @ coeffs

    # interior solution: B PD and ||B^-1 g|| <= delta
    if lam_min > 0:
        p = p_of(0.0)
        if np.linalg.norm(p) <= delta + tol:
            val = float(0.5 * p @ b @ p + g @ p)
            return TrustRegionResult(p=p, value=val, lagrange_multiplier=0.0, on_boundary=False, hard_case=False)

    # hard case: g orthogonal to the eigenspace of lam_min and the
    # secular equation has no root above -lam_min
    lam_lo = max(0.0, -lam_min) + 1e-14
    if p_norm(lam_lo) < delta:
        # hard case: add a component along the smallest eigenvector
        mask = np.abs(w - lam_min) < 1e-10 * max(1.0, abs(lam_min))
        z = v[:, np.argmax(mask)]
        p_base = p_of(lam_lo)
        rem = delta**2 - float(np.linalg.norm(p_base) ** 2)
        tau = np.sqrt(max(rem, 0.0))
        p = p_base + tau * z
        val = float(0.5 * p @ b @ p + g @ p)
        return TrustRegionResult(
            p=p, value=val, lagrange_multiplier=lam_lo, on_boundary=True, hard_case=True
        )

    # boundary solution: find lam > lam_lo with ||p(lam)|| = delta by
    # safeguarded Newton on 1/||p|| - 1/delta (secular equation)
    lam = lam_lo
    hi = lam_lo + max(1.0, float(np.linalg.norm(g)) / delta)
    while p_norm(hi) > delta:
        if budget is not None:
            budget.spend(1, context="solve_trust_region.bracket")
        hi *= 2.0
        if hi > 1e16:
            raise ConvergenceError("trust-region secular bracketing failed")
    lo = lam_lo
    for it in range(max_iter):
        if budget is not None:
            budget.spend(1, context="solve_trust_region")
        lam = 0.5 * (lo + hi)
        norm = p_norm(lam)
        if abs(norm - delta) <= tol * delta:
            break
        if norm > delta:
            lo = lam
        else:
            hi = lam
    p = p_of(lam)
    # rescale exactly onto the boundary
    pn = float(np.linalg.norm(p))
    if pn > 0:
        p = p * (delta / pn)
    val = float(0.5 * p @ b @ p + g @ p)
    current_span().set(iterations=it + 1, on_boundary=True)
    return TrustRegionResult(p=p, value=val, lagrange_multiplier=lam, on_boundary=True, hard_case=False)

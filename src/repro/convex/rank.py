"""Rank-minimization -> trace-minimization -> SDP chain (paper Eqs. 8-10).

The paper's §IV-C derives a decomposition ``R_s = R_c + R_n`` with
``R_c >= 0`` (low rank) and ``R_n`` diagonal, via:

* Eq. 8 — the Rank Minimization Problem (RMP), "nonconvex and
  discontinuous ... cannot be solved directly";
* Eq. 9 — the Trace Minimization Problem (TMP), replacing ``rank`` with
  ``tr`` ("the rank function tallies the number of nonzero eigenvalues
  and the trace function computes the sum");
* Eq. 10 — the equivalent SDP form handed to a standard solver.

This module implements all three: an exhaustive/greedy RMP reference for
small instances, the TMP via :func:`repro.convex.sdp.solve_sdp`, and
metrics quantifying how faithfully the trace surrogate recovers the true
low-rank component (SDPCHAIN benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionError
from repro.convex.problem import SDPProblem
from repro.convex.sdp import solve_sdp
from repro.linalg.matrix_utils import numerical_rank
from repro.linalg.psd import is_psd, project_psd, symmetrize

__all__ = [
    "DecompositionResult",
    "trace_minimization",
    "rank_minimization_reference",
    "make_decomposition_instance",
]


@dataclass(frozen=True)
class DecompositionResult:
    """Decomposition ``R_s ~= R_c + R_n`` with quality metrics."""

    r_c: np.ndarray
    r_n: np.ndarray
    objective: float
    rank: int
    residual: float
    converged: bool

    def diagonal_noise(self) -> np.ndarray:
        return np.diag(self.r_n).copy()


def _check_input(r_s: np.ndarray) -> np.ndarray:
    r_s = symmetrize(np.asarray(r_s, dtype=np.float64))
    return r_s


def trace_minimization(
    r_s: np.ndarray,
    require_nonnegative_noise: bool = True,
    sdp_max_iter: int = 8000,
    rank_tol: float = 1e-6,
) -> DecompositionResult:
    """Solve the TMP (Eq. 9) / SDP (Eq. 10):

    ``min tr(R_c)`` s.t. ``R_c + R_n = R_s``, ``R_c >= 0``, ``R_n`` diagonal.

    Because ``R_n`` is diagonal and otherwise free, the equality
    constraint pins exactly the off-diagonal entries of ``R_c`` to those
    of ``R_s``; the SDP variable is ``R_c`` alone with constraints
    ``(R_c)_{ij} = (R_s)_{ij}`` for ``i != j``.  When
    ``require_nonnegative_noise`` is set, candidate solutions with
    ``diag(R_s - R_c) < 0`` are repaired by clipping the diagonal of
    ``R_c`` (noise variances cannot be negative).
    """
    r_s = _check_input(r_s)
    n = r_s.shape[0]
    mats: list[np.ndarray] = []
    rhs: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            m = np.zeros((n, n))
            m[i, j] = m[j, i] = 0.5
            mats.append(m)
            rhs.append(float(r_s[i, j]))
    sdp = SDPProblem(c=np.eye(n), constraint_mats=mats, constraint_rhs=np.array(rhs))
    sol = solve_sdp(sdp, max_iter=sdp_max_iter)
    r_c = project_psd(sol.x)
    # restore the exact off-diagonal equality (PSD projection may have
    # perturbed it slightly)
    off = r_s - np.diag(np.diag(r_s))
    r_c_off = r_c - np.diag(np.diag(r_c))
    if np.linalg.norm(r_c_off - off) > 1e-6 * max(np.linalg.norm(off), 1.0):
        fixed = off + np.diag(np.diag(r_c))
        if is_psd(fixed, tol=1e-7):
            r_c = fixed
    if require_nonnegative_noise:
        diag_c = np.diag(r_c).copy()
        diag_s = np.diag(r_s)
        over = diag_c > diag_s
        if np.any(over):
            diag_c[over] = diag_s[over]
            candidate = r_c - np.diag(np.diag(r_c)) + np.diag(diag_c)
            if is_psd(candidate, tol=1e-7):
                r_c = candidate
    r_n = np.diag(np.diag(r_s - r_c))
    residual = float(np.linalg.norm(r_c + r_n - r_s) / max(np.linalg.norm(r_s), 1e-300))
    scale = max(float(np.max(np.abs(np.diag(r_c)))), 1e-12)
    return DecompositionResult(
        r_c=r_c,
        r_n=r_n,
        objective=float(np.trace(r_c)),
        rank=numerical_rank(r_c, tol=rank_tol * scale),
        residual=residual,
        converged=sol.converged,
    )


def rank_minimization_reference(
    r_s: np.ndarray, max_rank: int | None = None, tol: float = 1e-7
) -> DecompositionResult:
    """Reference solution of the RMP (Eq. 8) for small instances.

    Searches ranks ``k = 0, 1, ...`` and, for each, alternates projections
    between the rank-k PSD set and the off-diagonal-matching affine set to
    test whether a feasible ``R_c`` of that rank exists.  Exponential in
    nothing but linear in ``n * max_rank`` iterations — yet only reliable
    for small ``n``; that *is* the point the paper makes about the RMP.
    """
    r_s = _check_input(r_s)
    n = r_s.shape[0]
    max_rank = n if max_rank is None else min(max_rank, n)
    off_mask = ~np.eye(n, dtype=bool)
    target_off = r_s[off_mask]

    for k in range(0, max_rank + 1):
        x = r_s.copy()
        feasible = False
        for _ in range(600):
            # rank-k PSD projection
            w, v = np.linalg.eigh(symmetrize(x))
            w_clip = np.zeros_like(w)
            idx = np.argsort(w)[::-1][:k]
            w_clip[idx] = np.maximum(w[idx], 0.0)
            x = (v * w_clip) @ v.T
            # off-diagonal matching projection
            x = x.copy()
            x[off_mask] = target_off
            x = symmetrize(x)
            w2 = np.linalg.eigvalsh(x)
            rank_ok = (np.sum(w2 > tol * max(abs(w2[-1]), 1e-12)) <= k) and w2[0] > -1e-6
            if rank_ok:
                feasible = True
                break
        if feasible:
            w, v = np.linalg.eigh(symmetrize(x))
            w = np.maximum(w, 0.0)
            order = np.argsort(w)[::-1]
            keep = order[:k]
            mask = np.zeros_like(w)
            mask[keep] = w[keep]
            r_c = (v * mask) @ v.T
            r_c = symmetrize(r_c)
            r_c[off_mask] = target_off
            r_c = symmetrize(r_c)
            r_n = np.diag(np.diag(r_s - r_c))
            residual = float(
                np.linalg.norm(r_c + r_n - r_s) / max(np.linalg.norm(r_s), 1e-300)
            )
            return DecompositionResult(
                r_c=r_c,
                r_n=r_n,
                objective=float(k),
                rank=k,
                residual=residual,
                converged=True,
            )
    # fall back: full rank always feasible with R_n = 0
    r_c = project_psd(r_s)
    r_n = np.diag(np.diag(r_s - r_c))
    return DecompositionResult(
        r_c=r_c,
        r_n=r_n,
        objective=float(numerical_rank(r_c)),
        rank=numerical_rank(r_c),
        residual=0.0,
        converged=False,
    )


def make_decomposition_instance(
    n: int,
    rank: int,
    noise_scale: float = 0.5,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``(R_s, R_c_true, R_n_true)`` with known ground truth for
    the SDPCHAIN benchmark: ``R_c`` random PSD of given rank, ``R_n``
    positive diagonal."""
    if not 0 <= rank <= n:
        raise DimensionError(f"rank must be in [0, {n}]")
    rng = rng or np.random.default_rng(0)
    f = rng.standard_normal((n, rank)) if rank else np.zeros((n, 1))
    r_c = symmetrize(f @ f.T)
    r_n = np.diag(noise_scale * (0.5 + rng.random(n)))
    return r_c + r_n, r_c, r_n

"""Deterministic fan-out engine with a relaxation cache.

The RCR stack is embarrassingly parallel at every layer — per-spec
verification queries, per-frame QoS scheduling, per-particle PSO fitness
evaluation.  This package provides the shared machinery that makes those
layers scale without giving up reproducibility:

* :class:`Executor` — one ordered-``map`` API over three backends
  (:class:`SerialExecutor`, :class:`ThreadExecutor`,
  :class:`ProcessExecutor`), built so results are **bit-identical**
  across backends;
* :func:`derive_seed` — stable ``(master_seed, task_index, salt)`` →
  seed derivation, the rule every parallel hot path uses for per-task
  randomness;
* :func:`map_solve` — chunked fan-out with cooperative cancellation
  against a resilience :class:`~repro.resilience.Budget` and
  ``parallel.*`` spans/counters through the installed telemetry;
* :class:`RelaxationCache` / :func:`fingerprint` — content-addressed
  LRU memoization of repeated relaxation/verification solves, with
  hit/miss/eviction counters in the metrics registry.

Consumers: ``repro.verify.verify_batch`` / ``compare_verifiers``,
``repro.qos.scheduler.Scheduler.run(executor=...)``, the three PSO
variants' fitness evaluation, and ``run_rcr_stack(executor=...)``.
See docs/PARALLELISM.md for backend selection and the determinism
contract.
"""

from __future__ import annotations

from repro.parallel.cache import RelaxationCache, fingerprint
from repro.parallel.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    derive_seed,
    make_executor,
    map_solve,
)

__all__ = [
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "RelaxationCache",
    "SerialExecutor",
    "ThreadExecutor",
    "derive_seed",
    "fingerprint",
    "make_executor",
    "map_solve",
]

"""Deterministic batched/parallel execution for the solver stack.

Every hot path of the RCR reproduction is embarrassingly parallel —
per-spec verification queries, per-frame QoS solves, per-particle PSO
fitness evaluations — and this module provides the one fan-out engine
they all share: an :class:`Executor` abstraction with serial,
thread-pool, and process-pool backends behind a single ``map`` API,
plus :func:`map_solve`, the chunked, budget-aware, instrumented fan-out
entry point.

The determinism contract
------------------------

Parallel execution must be *bit-identical* to serial execution:

* results are always returned in **task order**, never completion
  order;
* any per-task randomness must derive from :func:`derive_seed`
  (a stable hash of ``(master_seed, task_index, salt)``) so the random
  stream a task sees depends only on *which* task it is, not on which
  worker ran it or when;
* tasks must not communicate through shared mutable state (the
  scheduler's parallel path, for example, deliberately does not share a
  circuit breaker across frames).

Under that contract ``SerialExecutor``, ``ThreadExecutor``, and
``ProcessExecutor`` are interchangeable, and the property suite in
``tests/test_parallel_determinism.py`` holds backend-for-backend.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.obs import SECONDS_BUCKETS, get_metrics, get_tracer
from repro.resilience import Budget

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "derive_seed",
    "map_solve",
    "BACKENDS",
]

T = TypeVar("T")
R = TypeVar("R")

#: backend names accepted by :func:`make_executor`
BACKENDS = ("serial", "thread", "process")


def derive_seed(master_seed: int, task_index: int, salt: str = "") -> int:
    """Stable task-index → seed derivation (the determinism linchpin).

    Hashes ``(master_seed, task_index, salt)`` with SHA-256 and folds the
    digest to a 63-bit integer, so the seed a task receives is a pure
    function of its identity — independent of worker assignment,
    completion order, and backend.  Distinct salts give independent
    streams for different subsystems sharing one master seed.
    """
    payload = f"{int(master_seed)}:{int(task_index)}:{salt}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class Executor:
    """Backend-agnostic ordered ``map``.

    Subclasses implement :meth:`map`, which must return results **in
    input order**.  Executors are context managers; :meth:`shutdown` is
    idempotent and the serial backend's is a no-op.
    """

    #: short name recorded in spans/metrics (``serial``/``thread``/``process``)
    backend = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError

    def map_cancellable(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> Tuple[List[R], int]:
        """Ordered map that stops dispatching once ``should_cancel()`` fires.

        Returns ``(results, n_skipped)`` where ``results`` is an
        in-order *prefix* of the item results and ``n_skipped`` counts
        items whose results were not produced.  Work already running
        when cancellation fires cannot be interrupted (cooperative
        cancellation), but queued work is never started — the fix for
        executed-then-discarded waste under an expired budget.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release worker resources (no-op for the serial backend)."""

    @property
    def max_workers(self) -> int:
        return 1

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(backend={self.backend!r}, max_workers={self.max_workers})"


class SerialExecutor(Executor):
    """In-process, in-order execution — the reference backend.

    Every other backend must reproduce this one's results bit-for-bit;
    it is also the fallback when worker pools are unavailable (e.g.
    sandboxed environments without process spawning).
    """

    backend = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def map_cancellable(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> Tuple[List[R], int]:
        if should_cancel is None:
            return self.map(fn, items), 0
        results: List[R] = []
        for item in items:
            if should_cancel():
                break
            results.append(fn(item))
        return results, len(items) - len(results)


class _PoolExecutor(Executor):
    """Shared plumbing for the ``concurrent.futures``-backed pools."""

    _pool_cls: type

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self._max_workers = int(max_workers)
        self._pool: Optional[concurrent.futures.Executor] = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> concurrent.futures.Executor:
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self._max_workers)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        try:
            # collect in submission (= input) order, not completion order
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise

    def map_cancellable(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> Tuple[List[R], int]:
        if should_cancel is None:
            return self.map(fn, items), 0
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        results: List[R] = []
        try:
            for index, future in enumerate(futures):
                if should_cancel():
                    # still-queued futures are withdrawn from the pool;
                    # ones already running finish but their results are
                    # dropped (cooperative cancellation cannot preempt)
                    for pending in futures[index:]:
                        pending.cancel()
                    break
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results, len(items) - len(results)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend: cheap dispatch, shared memory.

    Best for tasks that release the GIL (BLAS-heavy solves) or are
    I/O-bound; results remain deterministic because ordering and seeding
    never depend on scheduling.
    """

    backend = "thread"
    _pool_cls = concurrent.futures.ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend: true multi-core fan-out.

    Task functions and arguments must be picklable; worker-side metrics
    and trace spans stay in the worker process (coordinators therefore
    record aggregate ``parallel.*`` metrics on the parent side).
    """

    backend = "process"
    _pool_cls = concurrent.futures.ProcessPoolExecutor


def make_executor(backend: str = "serial", max_workers: int = 2) -> Executor:
    """Build an executor by backend name (``serial``/``thread``/``process``)."""
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(max_workers=max_workers)
    if backend == "process":
        return ProcessExecutor(max_workers=max_workers)
    raise ConfigurationError(f"unknown backend {backend!r}; choose from {BACKENDS}")


def _chunks(n_items: int, chunk_size: int) -> Iterable[range]:
    for start in range(0, n_items, chunk_size):
        yield range(start, min(start + chunk_size, n_items))


def map_solve(
    fn: Callable[[T], R],
    items: Sequence[T],
    executor: Optional[Executor] = None,
    budget: Optional[Budget] = None,
    chunk_size: Optional[int] = None,
    label: str = "map_solve",
) -> List[R]:
    """Chunked fan-out of ``fn`` over ``items`` with cooperative cancellation.

    Items are dispatched in chunks (default: ``4 * max_workers``).  The
    resilience ``budget`` is checked between chunks *and* between the
    items of the in-flight chunk (via
    :meth:`Executor.map_cancellable`), so when the budget expires
    mid-chunk the still-queued work is withdrawn from the pool rather
    than executed-then-discarded, and
    :class:`~repro.exceptions.BudgetExceededError` is raised.  One unit
    of budget is charged per completed task.

    Emits a ``parallel.map`` span and ``parallel.tasks`` /
    ``parallel.cancelled_tasks`` / ``parallel.cancelled_chunks``
    counters labelled by backend and ``label`` (``cancelled_chunks``
    counts chunks not fully executed: the partially-run in-flight chunk
    plus every never-dispatched one); results preserve input order on
    every backend.
    """
    executor = executor or SerialExecutor()
    items = list(items)
    n = len(items)
    if chunk_size is None:
        chunk_size = max(1, 4 * executor.max_workers)
    elif chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    metrics = get_metrics()
    start = time.perf_counter()
    results: List[R] = []
    chunks = list(_chunks(n, chunk_size))
    should_cancel = (lambda: budget.expired) if budget is not None else None

    def record_cancelled(chunk_index: int, span) -> None:
        cancelled = n - len(results)
        metrics.counter("parallel.cancelled_tasks", backend=executor.backend,
                        label=label).inc(cancelled)
        metrics.counter("parallel.cancelled_chunks", backend=executor.backend,
                        label=label).inc(len(chunks) - chunk_index)
        span.set(cancelled=cancelled, completed=len(results),
                 cancelled_chunks=len(chunks) - chunk_index)

    with get_tracer().span("parallel.map", backend=executor.backend,
                           label=label, n_tasks=n,
                           max_workers=executor.max_workers) as span:
        try:
            for chunk_index, chunk in enumerate(chunks):
                if budget is not None:
                    try:
                        budget.check(context=f"parallel[{label}]")
                    except BudgetExceededError:
                        record_cancelled(chunk_index, span)
                        raise
                chunk_results, skipped = executor.map_cancellable(
                    fn, [items[i] for i in chunk], should_cancel)
                results.extend(chunk_results)
                if skipped:
                    # the budget expired inside this chunk: queued items
                    # were withdrawn, remaining chunks never dispatch
                    record_cancelled(chunk_index, span)
                    assert budget is not None
                    budget.check(context=f"parallel[{label}]")
                    raise BudgetExceededError(  # pragma: no cover - guard
                        f"parallel[{label}] cancelled mid-chunk")
                if budget is not None:
                    budget.charge(len(chunk))
        finally:
            metrics.counter("parallel.tasks", backend=executor.backend,
                            label=label).inc(len(results))
            metrics.histogram("parallel.map_seconds", buckets=SECONDS_BUCKETS,
                              backend=executor.backend,
                              label=label).observe(time.perf_counter() - start)
        span.set(completed=len(results))
    return results

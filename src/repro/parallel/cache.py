"""Content-addressed memoization of relaxation/verification solves.

Salman et al.'s convex-relaxation-barrier study evaluates thousands of
*structurally identical* relaxation queries per network; in the QoS
control loop the same (network, spec, method) triple recurs every frame.
A :class:`RelaxationCache` memoizes those solves under a
**content-addressed fingerprint** — a SHA-256 over the exact bytes of
the problem matrices and spec parameters — so a hit is only possible
when every input is bit-identical, and a perturbed matrix (even by one
ULP) misses.

The cache is an LRU bounded by ``max_entries``, safe for concurrent use
from the thread backend, and reports hits/misses/evictions both on the
instance and through ``parallel.cache.*`` counters in the installed
:class:`~repro.obs.MetricsRegistry`.  With the process backend the
coordinator owns the cache: lookups happen before dispatch and inserts
after collection, so worker processes never need a shared store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import get_metrics

__all__ = ["fingerprint", "RelaxationCache"]


def _feed(h: "hashlib._Hash", value: Any) -> None:
    """Feed one value into the hash with unambiguous type/shape framing.

    Every branch writes a distinct type tag before the payload so that,
    e.g., the float 1.0, the int 1, and the string "1" can never
    fingerprint alike, and array framing (dtype + shape) prevents
    reshape/concatenation collisions.
    """
    if value is None:
        h.update(b"\x00none")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        h.update(b"\x01bool" + (b"1" if value else b"0"))
    elif isinstance(value, int):
        h.update(b"\x02int" + str(value).encode())
    elif isinstance(value, float):
        h.update(b"\x03float" + np.float64(value).tobytes())
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        h.update(b"\x04str" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(value, bytes):
        h.update(b"\x05bytes" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"\x06ndarray" + arr.dtype.str.encode()
                 + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, np.generic):
        _feed(h, value.item())
    elif isinstance(value, (list, tuple)):
        h.update(b"\x07seq" + str(len(value)).encode())
        for v in value:
            _feed(h, v)
    elif isinstance(value, dict):
        h.update(b"\x08dict" + str(len(value)).encode())
        for k in sorted(value, key=str):
            _feed(h, str(k))
            _feed(h, value[k])
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(b"\x09dc" + type(value).__qualname__.encode())
        for f in dataclasses.fields(value):
            _feed(h, f.name)
            _feed(h, getattr(value, f.name))
    else:
        raise ConfigurationError(
            f"cannot fingerprint {type(value).__name__!r}; pass arrays, "
            "primitives, dataclasses, or containers of those")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of a heterogeneous tuple of problem data.

    Accepts numpy arrays (hashed with dtype/shape framing over their
    exact bytes), primitives, dataclasses (e.g. a ``RobustnessSpec``),
    and nested containers.  Bit-identical inputs — and only those —
    produce equal fingerprints.
    """
    h = hashlib.sha256()
    _feed(h, tuple(parts))
    return h.hexdigest()


class RelaxationCache:
    """Bounded LRU of fingerprint → memoized solve result.

    Values are stored as-is (results in this codebase are frozen
    dataclasses); eviction discards the least-recently *used* entry.
    ``metrics_labels`` let several caches share a registry while keeping
    distinct ``parallel.cache.*`` series.
    """

    def __init__(self, max_entries: int = 256, **metrics_labels: object):
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._labels: Dict[str, object] = dict(metrics_labels)
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def keys(self) -> Tuple[str, ...]:
        """Current keys in least- to most-recently-used order."""
        with self._lock:
            return tuple(self._store)

    def get(self, key: str) -> Optional[Any]:
        """Look up ``key``; a hit refreshes its LRU position."""
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                get_metrics().counter("parallel.cache.hits",
                                      **self._labels).inc()
                return self._store[key]
            self.misses += 1
            get_metrics().counter("parallel.cache.misses",
                                  **self._labels).inc()
            return None

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            self._store[key] = value
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
                get_metrics().counter("parallel.cache.evictions",
                                      **self._labels).inc()

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value or compute-and-insert it.

        ``compute`` runs outside the lock so a slow solve never blocks
        concurrent lookups of other keys.
        """
        found = self.get(key)
        if found is not None:
            return found
        value = compute()
        self.put(key, value)
        return value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """JSON-ready counters for reports and benchmarks."""
        with self._lock:
            size = len(self._store)
        return {
            "entries": size,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

"""Phase-convention analysis and conversion for STFT coefficients.

"When phase information is processed, it is crucial to be aware of the
phase conventions by which the STFT is being computed... conversion
between conventions typically equates to point-wise multiplication of the
STFT with an a priori determined matrix of phase factors" (paper §IV-B).

This module constructs those phase-factor matrices, measures residual
skew between two coefficient arrays, and provides phase unwrapping for
downstream processing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionError, SignalProcessingError
from repro.signal.stft import Convention, STFTResult

__all__ = [
    "phase_correction_matrix",
    "convert_convention",
    "phase_skew",
    "magnitude_mismatch",
    "unwrap_phase",
    "delay_of_simplified_convention",
]


def delay_of_simplified_convention(window_length: int) -> int:
    """The group delay (in samples) imbued by Eq. 6 relative to Eq. 5.

    The simplified convention windows causally from ``l = 0`` while the
    stored window peaks at ``g[floor(Lg/2)]``, so its output lags by
    ``floor(Lg/2)`` samples — "a delay ... dependent on the (stored)
    window length Lg".
    """
    if window_length < 1:
        raise SignalProcessingError("window length must be >= 1")
    return window_length // 2


def phase_correction_matrix(
    n_fft: int,
    n_frames: int,
    hop: int,
    source: Convention,
    target: Convention,
    window_length: int,
) -> np.ndarray:
    """Pointwise phase-factor matrix ``P`` with
    ``STFT_target = P * STFT_source`` (elementwise).

    Derivation: let ``C[m, n]`` denote frequency-invariant coefficients
    (phase referenced to each frame's center at global time ``n*hop``).
    Then

    * time_invariant  = C * exp(-2πi m n hop / M) — pure demodulation; the
      conversion in this pair is *exact*.
    * simplified      = exp(-2πi m floor(Lg/2) / M) * C', where C' is the
      frequency-invariant transform evaluated ``floor(Lg/2)`` samples
      later.  The pointwise factor removes the *phase skew*; the residual
      C vs C' difference is the *delay* the paper describes ("a delay as
      well as a phase skew that is dependent on the (stored) window
      length Lg") and is a time shift of the analysis instants, which no
      pointwise matrix can undo.
    """
    for c in (source, target):
        if c not in ("time_invariant", "simplified", "frequency_invariant"):
            raise SignalProcessingError(f"unknown convention {c!r}")
    if n_fft < 1 or hop < 1:
        raise SignalProcessingError("n_fft and hop must both be >= 1")
    m_idx = np.arange(n_fft)[:, None]
    n_idx = np.arange(n_frames)[None, :]
    half = window_length // 2

    def to_freq_invariant(conv: Convention) -> np.ndarray:
        # factor F with  C = F * STFT_conv
        if conv == "frequency_invariant":
            return np.ones((n_fft, n_frames), dtype=np.complex128)
        if conv == "time_invariant":
            return np.exp(2.0j * np.pi * m_idx * ((n_idx * hop) % n_fft) / n_fft)  # numlint: disable=NL002 -- n_fft validated >= 1 in the enclosing function
        # simplified
        return np.exp(2.0j * np.pi * m_idx * half / n_fft) * np.ones(  # numlint: disable=NL002 -- n_fft validated >= 1 in the enclosing function
            (n_fft, n_frames), dtype=np.complex128
        )

    # STFT_target = (1 / F_target) * C = (F_source / F_target) * STFT_source
    return to_freq_invariant(source) / to_freq_invariant(target)  # numlint: disable=NL002 -- phase factors are unit-modulus complex exponentials, never zero


def convert_convention(result: STFTResult, target: Convention) -> STFTResult:
    """Convert an :class:`STFTResult` to another phase convention via the
    pointwise phase-factor matrix."""
    if result.convention == target:
        return result
    p = phase_correction_matrix(
        n_fft=result.n_fft,
        n_frames=result.n_frames,
        hop=result.hop,
        source=result.convention,
        target=target,
        window_length=result.window.size,
    )
    return STFTResult(
        coefficients=result.coefficients * p,
        window=result.window,
        hop=result.hop,
        n_fft=result.n_fft,
        convention=target,
        signal_length=result.signal_length,
    )


def phase_skew(a: np.ndarray, b: np.ndarray, magnitude_floor: float = 1e-8) -> float:
    """Mean absolute phase difference (radians) between two coefficient
    arrays, restricted to bins where both magnitudes exceed the floor.

    The floor matters: "the phase of complex numbers close to the machine
    precision is almost random" (paper quoting the LTFAT docs), so
    including near-zero bins would report spurious skew.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.shape != b.shape:
        raise DimensionError(f"shape mismatch: {a.shape} vs {b.shape}")
    scale = max(float(np.max(np.abs(a))), float(np.max(np.abs(b))), 1e-300)
    mask = (np.abs(a) > magnitude_floor * scale) & (np.abs(b) > magnitude_floor * scale)
    if not np.any(mask):
        return 0.0
    diff = np.angle(a[mask] * np.conj(b[mask]))
    return float(np.mean(np.abs(diff)))


def magnitude_mismatch(a: np.ndarray, b: np.ndarray) -> float:
    """Relative Frobenius mismatch of magnitudes — conventions must agree
    in magnitude even when phases skew."""
    a = np.abs(np.asarray(a, dtype=np.complex128))
    b = np.abs(np.asarray(b, dtype=np.complex128))
    if a.shape != b.shape:
        raise DimensionError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = max(float(np.linalg.norm(a)), 1e-300)
    return float(np.linalg.norm(a - b) / denom)


def unwrap_phase(phase: np.ndarray, axis: int = -1) -> np.ndarray:
    """Unwrap phase along *axis* by adding multiples of 2π so that
    successive differences stay within (-π, π]."""
    phase = np.asarray(phase, dtype=np.float64)
    d = np.diff(phase, axis=axis)
    jumps = np.round(d / (2.0 * np.pi))
    correction = -2.0 * np.pi * np.cumsum(jumps, axis=axis)
    pad_shape = list(phase.shape)
    pad_shape[axis] = 1
    correction = np.concatenate([np.zeros(pad_shape), correction], axis=axis)
    return phase + correction

"""Griffin-Lim phase recovery from STFT magnitudes.

The paper's reference [26] (Marafioti et al., "Adversarial Generation of
Time-Frequency Features") generates magnitude spectrograms whose usable
audio requires *phase recovery* — and the whole §IV-B discussion of phase
conventions exists because recovered phase is only meaningful under a
consistent convention.  Griffin-Lim alternates between the STFT magnitude
constraint and the consistency projection (ISTFT followed by STFT),
converging to a signal whose spectrogram matches the target magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.stft import Convention, STFTResult, istft, stft

__all__ = ["GriffinLimResult", "griffin_lim"]


@dataclass(frozen=True)
class GriffinLimResult:
    """Recovered signal plus the per-iteration spectral-convergence trace."""

    signal: np.ndarray
    convergence: List[float]

    @property
    def final_error(self) -> float:
        return self.convergence[-1] if self.convergence else float("inf")


def griffin_lim(
    magnitude: np.ndarray,
    window: np.ndarray,
    hop: int,
    n_fft: int,
    signal_length: int,
    n_iter: int = 60,
    convention: Convention = "frequency_invariant",
    seed: int = 0,
) -> GriffinLimResult:
    """Recover a real signal whose STFT magnitude matches *magnitude*.

    Parameters mirror :func:`repro.signal.stft.stft`; *magnitude* must
    have shape ``(n_fft, n_frames)`` matching what that transform
    produces for a signal of ``signal_length`` samples.

    Returns the recovered signal and the spectral-convergence history
    ``|| |STFT(x)| - M ||_F / ||M||_F`` per iteration.
    """
    magnitude = np.asarray(magnitude, dtype=np.float64)
    if magnitude.ndim != 2 or magnitude.shape[0] != n_fft:
        raise SignalProcessingError(
            f"magnitude must be (n_fft={n_fft}, n_frames), got {magnitude.shape}"
        )
    if n_iter < 1:
        raise SignalProcessingError("need at least one iteration")
    rng = np.random.default_rng(seed)
    mag_norm = max(float(np.linalg.norm(magnitude)), 1e-300)

    # random initial phase
    phase = np.exp(2j * np.pi * rng.random(magnitude.shape))
    coeffs = magnitude * phase
    convergence: List[float] = []
    signal = np.zeros(signal_length)
    for _ in range(n_iter):
        result = STFTResult(
            coefficients=coeffs,
            window=np.asarray(window, dtype=np.float64),
            hop=hop,
            n_fft=n_fft,
            convention=convention,
            signal_length=signal_length,
        )
        signal = np.real(istft(result))
        re = stft(signal, window, hop=hop, n_fft=n_fft, convention=convention)
        re_coeffs = re.coefficients[:, : magnitude.shape[1]]
        if re_coeffs.shape != magnitude.shape:
            padded = np.zeros_like(coeffs)
            padded[:, : re_coeffs.shape[1]] = re_coeffs
            re_coeffs = padded
        err = float(np.linalg.norm(np.abs(re_coeffs) - magnitude) / mag_norm)
        convergence.append(err)
        # magnitude projection: keep the consistent phase
        mag_re = np.abs(re_coeffs)
        phase = np.where(mag_re > 1e-300, re_coeffs / np.maximum(mag_re, 1e-300), 1.0)
        coeffs = magnitude * phase
    return GriffinLimResult(signal=signal, convergence=convergence)

"""From-scratch FFT family: FFT, IFFT, RFFT, IRFFT.

The paper's experimentation period "necessitated the functions/methods of
FFT, IFFT, RFFT, IRFFT, STFT, and ISTFT" and catalogued bugs in toolkit
implementations (Fig. 3).  To make those detectors meaningful we provide
an independent implementation: an iterative radix-2 Cooley-Tukey kernel
with a Bluestein (chirp-z) fallback for arbitrary lengths, plus the
real-input specializations.  `numpy.fft` is used only as an *oracle* in
tests, never inside this module.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SignalProcessingError

__all__ = [
    "fft",
    "ifft",
    "rfft",
    "irfft",
    "dft_naive",
    "next_pow2",
    "fftfreq",
]


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def fftfreq(n: int, d: float = 1.0) -> np.ndarray:
    """DFT sample frequencies (cycles per unit of *d*), numpy convention."""
    if n < 1:
        raise SignalProcessingError("n must be >= 1")
    if d == 0.0:
        raise SignalProcessingError("sample spacing d must be nonzero")
    results = np.empty(n, dtype=np.float64)
    half = (n - 1) // 2 + 1
    results[:half] = np.arange(0, half)
    results[half:] = np.arange(-(n // 2), 0)
    return results / (n * d)


def dft_naive(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """O(n^2) reference DFT used as the ground-truth oracle in tests."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    k = np.arange(n)
    sign = 2.0j if inverse else -2.0j
    w = np.exp(sign * np.pi * np.outer(k, k) / n)
    out = w @ x
    return out / n if inverse else out


def _fft_radix2(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Iterative in-place radix-2 Cooley-Tukey; length must be a power of 2."""
    n = x.size
    out = x.astype(np.complex128, copy=True)
    # bit-reversal permutation
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            out[i], out[j] = out[j], out[i]
    # butterflies
    length = 2
    sign = 1.0 if inverse else -1.0
    while length <= n:
        ang = sign * 2.0 * math.pi / length
        wlen = complex(math.cos(ang), math.sin(ang))
        half = length >> 1
        w_row = wlen ** np.arange(half)
        for start in range(0, n, length):
            a = out[start : start + half]
            b = out[start + half : start + length]
            t = w_row * b
            out[start + half : start + length] = a - t
            out[start : start + half] = a + t
        length <<= 1
    return out


def _fft_bluestein(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Chirp-z transform: expresses an arbitrary-length DFT as a
    power-of-two circular convolution."""
    n = x.size
    sign = 1.0 if inverse else -1.0
    k = np.arange(n, dtype=np.float64)
    # exp(sign * i*pi*k^2/n); use k^2 mod 2n to keep the phase argument small
    ksq_mod = (k * k) % (2.0 * n)
    chirp = np.exp(sign * 1.0j * np.pi * ksq_mod / n)
    a = x * chirp
    m = next_pow2(2 * n - 1)
    fa = np.zeros(m, dtype=np.complex128)
    fa[:n] = a
    fb = np.zeros(m, dtype=np.complex128)
    conj = np.conj(chirp)
    fb[:n] = conj
    fb[m - n + 1 :] = conj[1:][::-1]
    prod = _fft_radix2(fa, inverse=False) * _fft_radix2(fb, inverse=False)
    conv = _fft_radix2(prod, inverse=True) / m  # numlint: disable=NL002 -- m = next_pow2(...) is always >= 1
    return conv[:n] * chirp


def fft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Forward DFT of a 1-D signal, zero-padded/truncated to length *n*."""
    x = np.asarray(x, dtype=np.complex128).ravel()
    if n is None:
        n = x.size
    if n < 1:
        raise SignalProcessingError("FFT length must be >= 1")
    if x.size < n:
        x = np.concatenate([x, np.zeros(n - x.size, dtype=np.complex128)])
    elif x.size > n:
        x = x[:n]
    if n & (n - 1) == 0:
        return _fft_radix2(x, inverse=False)
    return _fft_bluestein(x, inverse=False)


def ifft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse DFT with 1/n normalization (numpy convention)."""
    x = np.asarray(x, dtype=np.complex128).ravel()
    if n is None:
        n = x.size
    if n < 1:
        raise SignalProcessingError("IFFT length must be >= 1")
    if x.size < n:
        x = np.concatenate([x, np.zeros(n - x.size, dtype=np.complex128)])
    elif x.size > n:
        x = x[:n]
    if n & (n - 1) == 0:
        return _fft_radix2(x, inverse=True) / n
    return _fft_bluestein(x, inverse=True) / n


def rfft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """DFT of a real signal, returning the ``n//2 + 1`` nonredundant bins.

    Implemented on top of :func:`fft` with an explicit realness check so
    a complex input cannot be silently half-spectrum-truncated — one of
    the classes of silent-wrong-result bugs the Fig. 3 catalog tracks.
    """
    arr = np.asarray(x)
    if np.iscomplexobj(arr) and np.any(np.abs(arr.imag) > 0):
        raise SignalProcessingError("rfft input must be real")
    full = fft(arr.real.astype(np.float64), n=n)
    m = full.size
    return full[: m // 2 + 1]


def irfft(x: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft`; *n* is the output length (default
    ``2*(len(x)-1)``).  Reconstructs the conjugate-symmetric spectrum."""
    half = np.asarray(x, dtype=np.complex128).ravel()
    if half.size < 1:
        raise SignalProcessingError("irfft input must be non-empty")
    if n is None:
        n = 2 * (half.size - 1)
    if n < 1:
        raise SignalProcessingError("irfft output length must be >= 1")
    expected_bins = n // 2 + 1
    if half.size != expected_bins:
        # zero-pad or truncate the half spectrum, mirroring numpy's behaviour
        padded = np.zeros(expected_bins, dtype=np.complex128)
        m = min(expected_bins, half.size)
        padded[:m] = half[:m]
        half = padded
    full = np.empty(n, dtype=np.complex128)
    full[:expected_bins] = half
    if n % 2 == 0:
        full[expected_bins:] = np.conj(half[1:-1][::-1])
    else:
        full[expected_bins:] = np.conj(half[1:][::-1])
    return ifft(full).real

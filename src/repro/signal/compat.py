"""Librosa-style STFT signature compatibility (paper §IV-A).

The paper devotes §IV-A to PyTorch issue #9308 — "changing STFT to have a
consistent signature with Librosa" — because "the STFT signature for
PyTorch versions prior to v0.4.1 can cause errors or return incorrect
results."  This module provides the librosa-shaped entry point over this
library's convention-explicit kernel, and a signature-consistency checker
that flags adapters drifting from the reference signature — the
executable form of the paper's signature-intricacy warning.

The ``center`` flag maps exactly onto the Eq. 5/6 convention split:
``center=True`` is the centered (frequency-invariant) transform,
``center=False`` is the causal *simplified* transform of Eq. 6 — with the
delay and phase skew that entails.
"""

from __future__ import annotations

import inspect
from typing import Callable, List

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.stft import STFTResult, stft
from repro.signal.windows import get_window

__all__ = ["librosa_style_stft", "LIBROSA_STFT_SIGNATURE", "check_signature_consistency"]

#: the reference parameter order of librosa.stft (0.10-era core subset)
LIBROSA_STFT_SIGNATURE: List[str] = [
    "y", "n_fft", "hop_length", "win_length", "window", "center",
]


def librosa_style_stft(
    y: np.ndarray,
    n_fft: int = 2048,
    hop_length: int | None = None,
    win_length: int | None = None,
    window: str = "hann",
    center: bool = True,
) -> np.ndarray:
    """STFT with the librosa signature, returning the nonredundant
    ``(n_fft//2 + 1, n_frames)`` complex matrix for real input.

    * ``center=True`` -> the centered frequency-invariant convention;
    * ``center=False`` -> the causal simplified convention (Eq. 6), which
      "imbues a delay as well as a phase skew" relative to the centered
      transform — by design, matching what toolkits actually do.
    """
    y = np.asarray(y)
    if y.ndim != 1:
        raise SignalProcessingError("librosa_style_stft expects a 1-D signal")
    win_length = win_length if win_length is not None else n_fft
    hop_length = hop_length if hop_length is not None else win_length // 4
    g = get_window(window, win_length)
    convention = "frequency_invariant" if center else "simplified"
    res: STFTResult = stft(y, g, hop=hop_length, n_fft=n_fft, convention=convention)
    return res.coefficients[: n_fft // 2 + 1]


def check_signature_consistency(
    fn: Callable, reference: List[str] | None = None
) -> List[str]:
    """Compare *fn*'s positional-parameter order against the reference
    signature; returns a list of human-readable discrepancies (empty ==
    consistent).

    This is the §IV-A check: a drop-in adapter whose parameters are
    renamed or reordered "can cause errors or return incorrect results"
    when called positionally, so the drift must be detected, not assumed
    away.
    """
    reference = reference if reference is not None else LIBROSA_STFT_SIGNATURE
    params = [p.name for p in inspect.signature(fn).parameters.values()
              if p.kind in (inspect.Parameter.POSITIONAL_ONLY,
                            inspect.Parameter.POSITIONAL_OR_KEYWORD)]
    issues: List[str] = []
    for i, ref_name in enumerate(reference):
        if i >= len(params):
            issues.append(f"missing parameter {ref_name!r} at position {i}")
        elif params[i] != ref_name:
            issues.append(
                f"position {i}: expected {ref_name!r}, found {params[i]!r} "
                "(positional callers get wrong semantics)"
            )
    return issues

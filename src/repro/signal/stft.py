"""Short-time Fourier transform under explicit phase conventions.

Section IV of the paper contrasts two STFT definitions:

* the **time-invariant** STFT (Eq. 5), where the window is stored with its
  peak at ``g[floor(Lg/2)]`` and each frame is referenced to the *global*
  time axis — every toolkit that windows ``s[l + n*a] * g[l]`` with a
  centered window computes this up to a known phase factor; and
* the **simplified time-invariant** STFT (Eq. 6), which sums from
  ``l = 0`` with a causal window — this "imbues a delay as well as a phase
  skew that is dependent on the (stored) window length Lg".

Additionally the *frequency-invariant* convention references every frame's
phase to the frame start instead of the global axis.  Conversion between
conventions is a pointwise multiplication by a matrix of phase factors
(:func:`repro.signal.phase.phase_correction_matrix`).

The forward transforms here share one frame/DFT kernel and differ only in
window alignment and phase referencing, so measured skews between them are
attributable purely to convention — exactly the experimental isolation the
STFTCONV benchmark needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.fft import fft, ifft
from repro.signal.windows import window_peak_index

Convention = Literal["time_invariant", "simplified", "frequency_invariant"]

__all__ = ["STFTResult", "stft", "istft", "frame_signal", "num_frames"]


@dataclass(frozen=True)
class STFTResult:
    """STFT coefficients plus the metadata required for exact inversion.

    Attributes
    ----------
    coefficients:
        Complex array of shape ``(n_bins, n_frames)``; ``n_bins`` equals
        the DFT length ``n_fft``.
    window:
        The analysis window as supplied.
    hop:
        Hop size ``a`` in samples.
    n_fft:
        DFT length ``M``.
    convention:
        Which phase convention the coefficients follow.
    signal_length:
        Original signal length (needed to trim synthesis output).
    """

    coefficients: np.ndarray
    window: np.ndarray
    hop: int
    n_fft: int
    convention: Convention
    signal_length: int

    @property
    def n_frames(self) -> int:
        return self.coefficients.shape[1]

    def magnitude(self) -> np.ndarray:
        return np.abs(self.coefficients)

    def phase(self) -> np.ndarray:
        return np.angle(self.coefficients)


def num_frames(signal_length: int, hop: int, center_offset: int = 0) -> int:
    """Number of analysis frames for hop *a*.

    Frames are indexed ``n in [0, ceil((L + center_offset)/a))``: the
    ``center_offset`` term guarantees the trailing ``floor(Lg/2)``
    samples of a *centered* framing are still covered by some frame
    (relevant when the hop approaches the window length).
    """
    if hop < 1:
        raise SignalProcessingError("hop must be >= 1")
    if signal_length < 1:
        raise SignalProcessingError("signal must be non-empty")
    return int(np.ceil((signal_length + center_offset) / hop))


def frame_signal(
    s: np.ndarray, window_length: int, hop: int, center_offset: int,
    n_frames_override: int | None = None,
) -> np.ndarray:
    """Extract frames ``s[n*hop - center_offset + l]`` for
    ``l in [0, window_length)``, zero-padding outside the signal.

    ``center_offset = floor(Lg/2)`` yields centered (Eq. 5-style) frames;
    ``center_offset = 0`` yields the causal (Eq. 6) frames.
    ``n_frames_override`` forces a frame count (used so every phase
    convention produces identically-shaped coefficient arrays).
    """
    s = np.asarray(s, dtype=np.complex128).ravel()
    n_fr = (
        n_frames_override
        if n_frames_override is not None
        else num_frames(s.size, hop, center_offset)
    )
    frames = np.zeros((n_fr, window_length), dtype=np.complex128)
    for n in range(n_fr):
        start = n * hop - center_offset
        lo = max(start, 0)
        hi = min(start + window_length, s.size)
        if hi > lo:
            frames[n, lo - start : hi - start] = s[lo:hi]
    return frames


def _validate(window: np.ndarray, hop: int, n_fft: int) -> np.ndarray:
    g = np.asarray(window, dtype=np.float64).ravel()
    if g.size < 1:
        raise SignalProcessingError("window must be non-empty")
    if hop < 1:
        raise SignalProcessingError("hop must be >= 1")
    if n_fft < g.size:
        raise SignalProcessingError(
            f"n_fft ({n_fft}) must be >= window length ({g.size})"
        )
    return g


def stft(
    s: np.ndarray,
    window: np.ndarray,
    hop: int,
    n_fft: int | None = None,
    convention: Convention = "time_invariant",
) -> STFTResult:
    """Compute the STFT of *s* under the chosen phase convention.

    Parameters
    ----------
    s:
        1-D real or complex signal.
    window:
        Analysis window ``g`` of length ``Lg`` (``Lg <= n_fft``).  For the
        ``time_invariant`` convention it is interpreted as *centered*
        storage (peak near ``g[floor(Lg/2)]``, per the paper's
        "unconventional" layout); for ``simplified`` it is used as stored,
        causal from ``l = 0``.
    hop:
        Time shift ``a`` between frames.
    n_fft:
        DFT length ``M``; defaults to the window length.
    convention:
        ``"time_invariant"`` (Eq. 5), ``"simplified"`` (Eq. 6), or
        ``"frequency_invariant"``.
    """
    s = np.asarray(s)
    sig_len = s.ravel().size
    g = _validate(window, hop, n_fft or len(np.ravel(window)))
    m = n_fft or g.size
    lg = g.size
    if convention not in ("time_invariant", "simplified", "frequency_invariant"):
        raise SignalProcessingError(f"unknown STFT convention {convention!r}")

    # one common frame count for all conventions: covers the trailing
    # half-window of centered framings and keeps coefficient shapes
    # comparable across conventions
    n_fr_common = num_frames(sig_len, hop, lg // 2)

    if convention == "simplified":
        # Eq. 6: sum_{l=0}^{Lg-1} s[l + n a] g[l] e^{-2 pi i m l / M}
        frames = frame_signal(s, lg, hop, center_offset=0, n_frames_override=n_fr_common)
        windowed = frames * g[None, :]
        padded = np.zeros((frames.shape[0], m), dtype=np.complex128)
        padded[:, :lg] = windowed
        coeffs = np.stack([fft(row) for row in padded], axis=1)
    else:
        # Eq. 5: sum_{l=-floor(Lg/2)}^{ceil(Lg/2)-1} s[l + n a] g[l] ...
        # with the window's peak stored at g[floor(Lg/2)].  We gather the
        # centered frame, then rotate so that the sample at the frame
        # center lands at DFT index 0: this global-time phase reference is
        # what makes the transform time-invariant.
        half = lg // 2
        frames = frame_signal(s, lg, hop, center_offset=half, n_frames_override=n_fr_common)
        windowed = frames * g[None, :]
        padded = np.zeros((frames.shape[0], m), dtype=np.complex128)
        padded[:, :lg] = windowed
        # circularly shift so index 'half' (frame center == time n*a) is at 0
        padded = np.roll(padded, -half, axis=1)
        coeffs = np.stack([fft(row) for row in padded], axis=1)
        if convention == "time_invariant":
            # reference the phase to absolute time: multiply by
            # e^{-2 pi i m (n a) / M} applied implicitly by *not*
            # removing the frame-origin phase.  The centered/rotated DFT
            # already references phase to the frame center at global time
            # n*a, so the time-invariant coefficients additionally carry
            # the demodulation term e^{-2 pi i m n a / M}:
            mm = np.arange(m)[:, None]
            nn = np.arange(coeffs.shape[1])[None, :]
            coeffs = coeffs * np.exp(-2.0j * np.pi * mm * (nn * hop % m) / m)  # numlint: disable=NL002 -- _validate enforces m = n_fft >= window length >= 1
        # frequency_invariant: phase referenced to the frame center; no
        # extra factor needed.
    return STFTResult(
        coefficients=coeffs,
        window=g.copy(),
        hop=hop,
        n_fft=m,
        convention=convention,
        signal_length=sig_len,
    )


def istft(result: STFTResult, length: int | None = None) -> np.ndarray:
    """Least-squares inverse STFT (weighted overlap-add).

    Inverts any of the three conventions by undoing the convention's phase
    referencing, inverse-DFT-ing each frame, multiplying by the synthesis
    window (equal to the analysis window), overlap-adding, and dividing by
    the accumulated squared window.  Exact reconstruction requires the
    window/hop pair to cover every sample (``sum_n g^2[l - n a] > 0``).
    """
    coeffs = np.asarray(result.coefficients, dtype=np.complex128)
    g = np.asarray(result.window, dtype=np.float64)
    hop, m, lg = result.hop, result.n_fft, g.size
    n_fr = coeffs.shape[1]
    length = length if length is not None else result.signal_length

    work = coeffs.copy()
    if result.convention == "time_invariant":
        mm = np.arange(m)[:, None]
        nn = np.arange(n_fr)[None, :]
        work = work * np.exp(2.0j * np.pi * mm * (nn * hop % m) / m)  # numlint: disable=NL002 -- m = result.n_fft was validated >= 1 when the STFT was built

    out = np.zeros(length + lg + m, dtype=np.complex128)
    norm = np.zeros(length + lg + m, dtype=np.float64)
    half = lg // 2 if result.convention != "simplified" else 0
    for n in range(n_fr):
        frame = ifft(work[:, n])
        if result.convention != "simplified":
            frame = np.roll(frame, half)
        seg = frame[:lg] * g
        start = n * hop - half
        lo = max(start, 0)
        hi = min(start + lg, out.size)
        if hi <= lo:
            continue
        out[lo:hi] += seg[lo - start : hi - start]
        norm[lo:hi] += g[lo - start : hi - start] ** 2
    norm = np.where(norm > 1e-12, norm, 1.0)
    rec = out[:length] / norm[:length]
    return rec.real if np.max(np.abs(rec.imag)) < 1e-8 * max(np.max(np.abs(rec.real)), 1e-300) else rec

"""Analysis windows for the STFT/Gabor machinery.

The paper's Eqs. 5-6 hinge on *where the window peak is stored*: the
"unconventional" storage places the peak at ``g[floor(Lg/2)]`` instead of
``g[0]``, which imbues the delay/phase skew analysed in Section IV-B.
Both storage conventions are provided here.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SignalProcessingError

__all__ = [
    "rectangular",
    "hann",
    "hamming",
    "blackman",
    "gaussian",
    "get_window",
    "centered_to_causal",
    "causal_to_centered",
    "window_peak_index",
    "cola_check",
]

_PERIODIC_DOC = """Windows are *periodic* (DFT-even): computed on ``length+1``
points with the last dropped, which is the correct form for spectral
analysis with overlapping frames."""


def _raised_cosine(length: int, coeffs: tuple[float, ...]) -> np.ndarray:
    if length < 1:
        raise SignalProcessingError("window length must be >= 1")
    n = np.arange(length)
    w = np.zeros(length, dtype=np.float64)
    for k, a in enumerate(coeffs):
        w += ((-1.0) ** k) * a * np.cos(2.0 * np.pi * k * n / length)
    return w


def rectangular(length: int) -> np.ndarray:
    """Boxcar window."""
    if length < 1:
        raise SignalProcessingError("window length must be >= 1")
    return np.ones(length, dtype=np.float64)


def hann(length: int) -> np.ndarray:
    """Periodic Hann window."""
    return _raised_cosine(length, (0.5, 0.5))


def hamming(length: int) -> np.ndarray:
    """Periodic Hamming window."""
    return _raised_cosine(length, (0.54, 0.46))


def blackman(length: int) -> np.ndarray:
    """Periodic Blackman window."""
    return _raised_cosine(length, (0.42, 0.5, 0.08))


def gaussian(length: int, sigma_ratio: float = 0.125) -> np.ndarray:
    """Gaussian window; the canonical Gabor-transform window.

    ``sigma_ratio`` is the standard deviation as a fraction of the length.
    """
    if length < 1:
        raise SignalProcessingError("window length must be >= 1")
    if sigma_ratio <= 0:
        raise SignalProcessingError("sigma_ratio must be positive")
    n = np.arange(length) - (length - 1) / 2.0
    sigma = sigma_ratio * length
    return np.exp(-0.5 * (n / sigma) ** 2)  # numlint: disable=NL002 -- sigma = sigma_ratio * length > 0, both validated above


_WINDOWS = {
    "rectangular": rectangular,
    "boxcar": rectangular,
    "hann": hann,
    "hamming": hamming,
    "blackman": blackman,
    "gaussian": gaussian,
}


def get_window(name: str, length: int, **kwargs) -> np.ndarray:
    """Look up a window by name."""
    try:
        factory = _WINDOWS[name.lower()]
    except KeyError:
        raise SignalProcessingError(
            f"unknown window {name!r}; choose from {sorted(_WINDOWS)}"
        ) from None
    return factory(length, **kwargs)


def window_peak_index(g: np.ndarray) -> int:
    """Index of the window maximum — used by the phase-skew detectors to
    discover which storage convention a window follows."""
    g = np.asarray(g, dtype=np.float64)
    if g.size == 0:
        raise SignalProcessingError("empty window")
    return int(np.argmax(np.abs(g)))


def centered_to_causal(g: np.ndarray) -> np.ndarray:
    """Convert peak-at-center storage (``g[floor(Lg/2)]``, the
    "unconventional" layout of Eq. 5/6 discussion) to peak-at-zero storage
    by a circular shift of ``-floor(Lg/2)``."""
    g = np.asarray(g, dtype=np.float64)
    return np.roll(g, -(g.size // 2))


def causal_to_centered(g: np.ndarray) -> np.ndarray:
    """Inverse of :func:`centered_to_causal`."""
    g = np.asarray(g, dtype=np.float64)
    return np.roll(g, g.size // 2)


def cola_check(g: np.ndarray, hop: int, tol: float = 1e-8) -> bool:
    """Constant-overlap-add check: does ``sum_k g[n - k*hop]`` equal a
    constant?  Required for perfect ISTFT reconstruction with the
    overlap-add synthesis used in :mod:`repro.signal.stft`."""
    g = np.asarray(g, dtype=np.float64)
    if hop < 1:
        raise SignalProcessingError("hop must be >= 1")
    if hop > g.size:
        return False
    acc = np.zeros(hop, dtype=np.float64)
    for start in range(0, g.size, hop):
        chunk = g[start : start + hop]
        acc[: chunk.size] += chunk
    return bool(np.max(np.abs(acc - acc[0])) <= tol * max(abs(acc[0]), 1e-12))

"""Kaiser windowed-sinc FIR design with first-class artifact gates.

The signal-recorder postmortem catalogued in SNIPPETS.md §2 traced its
"spectral incursions" not to catastrophic aliasing but to *quiet*
filter-design artifacts: passband ripple, ±4 Hz spectral leakage bumps,
a ~10 dB elevated noise floor, and startup transients.  None of those
show up as exceptions — they show up as slightly wrong spectrograms
months later.  This module therefore treats the artifact budget as a
**checked property of the designed filter**, not a comment: every
designed lowpass carries a measured :class:`FilterReport`, and
:class:`ArtifactGates` turns the budget into hard pass/fail checks that
:func:`design_lowpass` (and the decimator factories built on it) can
enforce at construction time.

Frequencies throughout are *normalized* cycles/sample: Nyquist is 0.5.
All design math is plain numpy (``np.kaiser`` / ``np.sinc``); scipy is
deliberately not imported so the module follows the repo's
numpy-only-in-``src`` discipline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import SignalProcessingError

__all__ = [
    "ArtifactGates",
    "FilterReport",
    "design_lowpass",
    "frequency_response",
    "kaiser_beta",
    "kaiser_numtaps",
    "measure_lowpass",
]


@dataclass(frozen=True)
class ArtifactGates:
    """Artifact budget for a designed filter or decimation chain.

    The defaults encode the SNIPPETS §2 resolution targets: passband
    ripple under 0.1 dB, stopband/alias rejection beyond 60 dB, noise
    floor at or below -60 dB, and a bounded startup transient.  A gate
    set to ``None`` is not checked (e.g. the noise floor only makes
    sense for an end-to-end measurement, not a tap vector).
    """

    passband_ripple_db: float | None = 0.1
    stopband_atten_db: float | None = 60.0
    noise_floor_db: float | None = -60.0
    max_startup_transient_samples: int | None = None

    def __post_init__(self):
        if (self.passband_ripple_db is not None
                and self.passband_ripple_db <= 0):
            raise SignalProcessingError("passband_ripple_db must be positive")
        if (self.stopband_atten_db is not None
                and self.stopband_atten_db <= 0):
            raise SignalProcessingError("stopband_atten_db must be positive")
        if (self.max_startup_transient_samples is not None
                and self.max_startup_transient_samples < 0):
            raise SignalProcessingError(
                "max_startup_transient_samples must be >= 0")


@dataclass(frozen=True)
class FilterReport:
    """Measured properties of one FIR lowpass (all frequencies normalized).

    ``passband_ripple_db`` is the max deviation of ``|H|`` from unity on
    ``[0, pass_edge]``; ``stopband_atten_db`` the *minimum* rejection on
    ``[stop_edge, 0.5]``; ``startup_transient_samples`` the exact FIR
    warmup ``n_taps - 1`` (the filter's state is all zeros until that
    many samples have entered, so earlier outputs are ramp-in).
    """

    n_taps: int
    pass_edge: float
    stop_edge: float
    passband_ripple_db: float
    stopband_atten_db: float
    startup_transient_samples: int

    def violations(self, gates: ArtifactGates) -> List[str]:
        """Every gate this filter breaks, as human-readable strings."""
        out: List[str] = []
        if (gates.passband_ripple_db is not None
                and self.passband_ripple_db > gates.passband_ripple_db):
            out.append(
                f"passband ripple {self.passband_ripple_db:.4f} dB exceeds "
                f"gate {gates.passband_ripple_db:.4f} dB")
        if (gates.stopband_atten_db is not None
                and self.stopband_atten_db < gates.stopband_atten_db):
            out.append(
                f"stopband attenuation {self.stopband_atten_db:.1f} dB below "
                f"gate {gates.stopband_atten_db:.1f} dB")
        if (gates.max_startup_transient_samples is not None
                and self.startup_transient_samples
                > gates.max_startup_transient_samples):
            out.append(
                f"startup transient {self.startup_transient_samples} samples "
                f"exceeds gate {gates.max_startup_transient_samples}")
        return out

    def require(self, gates: ArtifactGates) -> "FilterReport":
        """Raise :class:`SignalProcessingError` on any gate violation."""
        problems = self.violations(gates)
        if problems:
            raise SignalProcessingError(
                "filter fails artifact gates: " + "; ".join(problems))
        return self


def kaiser_beta(atten_db: float) -> float:
    """Kaiser window shape parameter for a target stopband attenuation.

    The standard empirical fit (Oppenheim & Schafer eq. 7.75): zero for
    soft (<21 dB) specs, piecewise polynomial/linear above.
    """
    a = float(atten_db)
    if a > 50.0:
        return 0.1102 * (a - 8.7)
    if a >= 21.0:
        return 0.5842 * (a - 21.0) ** 0.4 + 0.07886 * (a - 21.0)
    return 0.0


def kaiser_numtaps(atten_db: float, transition: float) -> int:
    """Estimated FIR length meeting ``atten_db`` over a normalized
    transition band of width ``transition`` (cycles/sample).

    Kaiser's formula ``N ~= (A - 7.95) / (2.285 * delta_omega)``; the
    result is rounded up and forced odd so the filter has a well-defined
    integer group delay ``(N - 1) / 2``.
    """
    if transition <= 0:
        raise SignalProcessingError("transition width must be positive")
    if transition >= 0.5:
        raise SignalProcessingError(
            "transition width must be below Nyquist (0.5)")
    n = (float(atten_db) - 7.95) / (2.285 * 2.0 * math.pi * transition)
    n = max(int(math.ceil(n)) + 1, 3)
    if n % 2 == 0:
        n += 1
    return n


def frequency_response(
    taps: np.ndarray, n_points: int = 8192
) -> Tuple[np.ndarray, np.ndarray]:
    """``(freqs, H)`` of an FIR filter on ``n_points`` bins in [0, 0.5].

    Zero-padded real DFT; frequencies are normalized cycles/sample.
    """
    h = np.asarray(taps, dtype=np.float64).ravel()
    if h.size < 1:
        raise SignalProcessingError("taps must be non-empty")
    n_fft = 2 * int(n_points)
    if n_fft < h.size:
        raise SignalProcessingError("n_points too small for the tap count")
    spectrum = np.fft.rfft(h, n_fft)
    freqs = np.fft.rfftfreq(n_fft, d=1.0)
    return freqs, spectrum


def measure_lowpass(
    taps: np.ndarray, pass_edge: float, stop_edge: float,
    n_points: int = 8192,
) -> FilterReport:
    """Measure a lowpass against its band edges (normalized frequencies)."""
    if not 0.0 < pass_edge < stop_edge <= 0.5:
        raise SignalProcessingError(
            "need 0 < pass_edge < stop_edge <= 0.5")
    h = np.asarray(taps, dtype=np.float64).ravel()
    freqs, spectrum = frequency_response(h, n_points=n_points)
    mag = np.abs(spectrum)
    passband = mag[freqs <= pass_edge]
    stopband = mag[freqs >= stop_edge]
    if passband.size == 0 or stopband.size == 0:
        raise SignalProcessingError("band edges leave an empty band")
    ripple_db = float(np.max(np.abs(
        20.0 * np.log10(np.maximum(passband, 1e-300)))))
    atten_db = float(-np.max(
        20.0 * np.log10(np.maximum(stopband, 1e-300))))
    return FilterReport(
        n_taps=int(h.size),
        pass_edge=float(pass_edge),
        stop_edge=float(stop_edge),
        passband_ripple_db=ripple_db,
        stopband_atten_db=atten_db,
        startup_transient_samples=int(h.size - 1),
    )


def design_lowpass(
    pass_edge: float,
    stop_edge: float,
    atten_db: float = 80.0,
    numtaps: int | None = None,
    gates: ArtifactGates | None = None,
) -> Tuple[np.ndarray, FilterReport]:
    """Design a unity-DC-gain Kaiser windowed-sinc lowpass.

    Parameters are normalized frequencies (Nyquist = 0.5).  The cutoff
    sits mid-transition; ``numtaps`` overrides the Kaiser length
    estimate when given (it is forced odd).  Returns ``(taps, report)``
    where the report has already been measured against the band edges —
    and checked against ``gates`` when provided, so a spec the design
    cannot meet fails **here**, at design time, not in a spectrogram
    three months later.
    """
    if not 0.0 < pass_edge < stop_edge <= 0.5:
        raise SignalProcessingError("need 0 < pass_edge < stop_edge <= 0.5")
    if atten_db <= 0:
        raise SignalProcessingError("atten_db must be positive")
    transition = stop_edge - pass_edge
    n = int(numtaps) if numtaps is not None else kaiser_numtaps(
        atten_db, transition)
    if n < 3:
        raise SignalProcessingError("numtaps must be >= 3")
    if n % 2 == 0:
        n += 1
    cutoff = 0.5 * (pass_edge + stop_edge)
    mid = (n - 1) / 2.0
    m = np.arange(n, dtype=np.float64)
    ideal = 2.0 * cutoff * np.sinc(2.0 * cutoff * (m - mid))
    taps = ideal * np.kaiser(n, kaiser_beta(atten_db))
    taps = taps / math.fsum(taps)  # numlint: disable=NL002 -- a windowed sinc's DC gain is ~2*cutoff > 0 by construction
    report = measure_lowpass(taps, pass_edge, stop_edge)
    if gates is not None:
        report.require(gates)
    return taps, report

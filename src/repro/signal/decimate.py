"""Streaming polyphase multi-stage decimation with artifact gates.

The SNIPPETS §2 postmortem's lesson was that a decimator can pass its
"does it reject the out-of-band tone" smoke test and still poison every
downstream spectrogram with passband ripple, ±4 Hz spectral incursions,
an elevated noise floor, and startup transients.  This module makes the
whole artifact catalog a *construction-time contract*:

* each stage's anti-alias lowpass is designed by
  :func:`repro.signal.filters.design_lowpass` and measured into a
  :class:`~repro.signal.filters.FilterReport`;
* :func:`design_decimator` checks the composed chain against an
  :class:`~repro.signal.filters.ArtifactGates` budget (cascaded ripple,
  per-stage alias rejection, total input-domain startup transient) and
  refuses to build a decimator that cannot meet it;
* the tier-1 artifact tests re-measure the same catalog *empirically*
  on synthetic multi-tone signals, so the analytic gates stay honest.

Streaming semantics: a stage computes exactly the outputs of
``np.convolve(x, taps)[: len(x)][:: factor]`` — causal filtering, then
keeping input indices ``0, M, 2M, ...`` — and the polyphase evaluation
only ever computes the retained outputs (``n_taps`` multiplies per
*output* sample, not per input sample).  Chunk boundaries, including
single-sample feeds, never change the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.filters import (
    ArtifactGates,
    FilterReport,
    design_lowpass,
)

__all__ = [
    "DecimatorReport",
    "MultiStageDecimator",
    "PolyphaseStage",
    "decimate_reference",
    "design_decimator",
    "factor_stages",
]


class PolyphaseStage:
    """One streaming decimation stage: causal FIR + keep-every-M.

    State is the trailing ``n_taps - 1`` input samples plus the global
    input-sample counter (which fixes the downsampling phase across
    chunk boundaries).  Outputs are the filtered values at input indices
    ``0, M, 2M, ...`` only — the polyphase identity: evaluating the FIR
    at the retained instants costs ``n_taps`` multiplies per output,
    identical to summing the ``M`` polyphase subfilter contributions.
    """

    def __init__(self, factor: int, taps: np.ndarray):
        if factor < 1:
            raise SignalProcessingError("decimation factor must be >= 1")
        h = np.asarray(taps, dtype=np.float64).ravel()
        if h.size < 1:
            raise SignalProcessingError("taps must be non-empty")
        self.factor = int(factor)
        self.taps = h
        self._h_rev = h[::-1].copy()
        self._tail = np.zeros(h.size - 1, dtype=np.float64)
        self._n_in = 0  # global input samples consumed

    @property
    def n_taps(self) -> int:
        return int(self.taps.size)

    def process(self, chunk: np.ndarray) -> np.ndarray:
        """Feed input samples; return the decimated outputs they complete."""
        x = np.asarray(chunk, dtype=np.float64).ravel()
        if x.size == 0:
            return np.zeros(0, dtype=np.float64)
        lh = self.taps.size
        extended = np.concatenate([self._tail, x])
        # output instants are global indices g with g % factor == 0;
        # the first candidate at or after _n_in:
        first = self._n_in + (-self._n_in) % self.factor
        locals_ = np.arange(first - self._n_in, x.size, self.factor)
        if locals_.size:
            windows = np.lib.stride_tricks.sliding_window_view(extended, lh)
            out = windows[locals_] @ self._h_rev
        else:
            out = np.zeros(0, dtype=np.float64)
        if lh > 1:
            self._tail = extended[-(lh - 1):].copy()
        self._n_in += x.size
        return out


@dataclass(frozen=True)
class DecimatorReport:
    """Measured/derived properties of a whole decimation chain.

    ``passband_ripple_db`` is the *cascaded* worst case (sum of stage
    ripples — ripples multiply as linear gains, i.e. add in dB);
    ``stopband_atten_db`` the weakest per-stage alias rejection;
    ``startup_transient_samples`` the total warmup expressed in
    **input-domain** samples (each stage's ``n_taps - 1`` scaled by the
    decimation already applied ahead of it); ``group_delay_samples``
    likewise, for aligning decimated streams with their source.
    """

    factor: int
    stage_factors: Tuple[int, ...]
    stage_reports: Tuple[FilterReport, ...]
    passband_ripple_db: float
    stopband_atten_db: float
    startup_transient_samples: int
    group_delay_samples: float

    def violations(self, gates: ArtifactGates) -> List[str]:
        out: List[str] = []
        if (gates.passband_ripple_db is not None
                and self.passband_ripple_db > gates.passband_ripple_db):
            out.append(
                f"cascaded passband ripple {self.passband_ripple_db:.4f} dB "
                f"exceeds gate {gates.passband_ripple_db:.4f} dB")
        if (gates.stopband_atten_db is not None
                and self.stopband_atten_db < gates.stopband_atten_db):
            out.append(
                f"weakest alias rejection {self.stopband_atten_db:.1f} dB "
                f"below gate {gates.stopband_atten_db:.1f} dB")
        if (gates.max_startup_transient_samples is not None
                and self.startup_transient_samples
                > gates.max_startup_transient_samples):
            out.append(
                f"startup transient {self.startup_transient_samples} input "
                f"samples exceeds gate {gates.max_startup_transient_samples}")
        return out

    def require(self, gates: ArtifactGates) -> "DecimatorReport":
        problems = self.violations(gates)
        if problems:
            raise SignalProcessingError(
                "decimator fails artifact gates: " + "; ".join(problems))
        return self


class MultiStageDecimator:
    """A chain of :class:`PolyphaseStage` objects run as one stream.

    ``process`` pushes a chunk through every stage in order;
    ``report`` carries the artifact measurements the chain was built
    with.  Total decimation is the product of the stage factors.
    """

    def __init__(self, stages: Sequence[PolyphaseStage],
                 report: DecimatorReport | None = None):
        if not stages:
            raise SignalProcessingError("need at least one stage")
        self.stages = list(stages)
        self.report = report
        self.samples_in = 0
        self.samples_out = 0

    @property
    def factor(self) -> int:
        out = 1
        for s in self.stages:
            out *= s.factor
        return out

    @property
    def startup_transient_samples(self) -> int:
        """Total FIR warmup in input-domain samples: stage ``i``'s
        ``n_taps - 1`` warmup happens at a rate already decimated by the
        factors ahead of it, so it spans that many *input* samples."""
        total = 0
        ahead = 1
        for s in self.stages:
            total += (s.n_taps - 1) * ahead
            ahead *= s.factor
        return total

    @property
    def group_delay_samples(self) -> float:
        """Linear-phase group delay of the cascade, in input samples."""
        terms = []
        ahead = 1
        for s in self.stages:
            terms.append(((s.n_taps - 1) / 2.0) * ahead)
            ahead *= s.factor
        return math.fsum(terms)

    def process(self, chunk: np.ndarray) -> np.ndarray:
        x = np.asarray(chunk, dtype=np.float64).ravel()
        self.samples_in += x.size
        for stage in self.stages:
            x = stage.process(x)
        self.samples_out += x.size
        return x

    def fresh(self) -> "MultiStageDecimator":
        """A new zero-state chain sharing this one's taps and report —
        one designed decimator can serve many independent streams."""
        return MultiStageDecimator(
            [PolyphaseStage(s.factor, s.taps) for s in self.stages],
            report=self.report)


def factor_stages(factor: int, max_stage_factor: int = 8) -> List[int]:
    """Factor a total decimation ratio into stage factors.

    Greedy largest-first: big cheap stages run at the high input rate
    (where their wide transition bands keep the filters short) and the
    tight final filter runs at the lowest rate — the standard
    multi-stage economy.  Raises when ``factor`` has a prime factor
    above ``max_stage_factor``.
    """
    if factor < 1:
        raise SignalProcessingError("factor must be >= 1")
    if max_stage_factor < 2:
        raise SignalProcessingError("max_stage_factor must be >= 2")
    remaining = int(factor)
    stages: List[int] = []
    while remaining > 1:
        for candidate in range(min(max_stage_factor, remaining), 1, -1):
            if remaining % candidate == 0:
                stages.append(candidate)
                remaining //= candidate
                break
        else:
            raise SignalProcessingError(
                f"{factor} has a prime factor above {max_stage_factor}; "
                "raise max_stage_factor")
    return stages or [1]


def design_decimator(
    factor: int,
    atten_db: float = 80.0,
    passband: float = 0.8,
    max_stage_factor: int = 8,
    gates: ArtifactGates | None = None,
) -> MultiStageDecimator:
    """Design a gated multi-stage decimator for an integer ``factor``.

    ``passband`` is the protected fraction of the *final* output Nyquist
    (0.8 protects ``[0, 0.4 * f_out]``).  Stage ``i`` (input rate
    normalized to 1) gets a lowpass with

    * pass edge  ``passband / (2 * R_i)`` — the final passband seen at
      this stage's input rate (``R_i`` = product of this and later
      factors), and
    * stop edge  ``1 / M_i - pass`` — the lowest frequency whose image
      folds onto the protected band after this stage's ``M_i`` fold.

    Each stage's measured :class:`FilterReport` and the cascaded
    :class:`DecimatorReport` are checked against ``gates`` (default: the
    SNIPPETS §2 budget — ripple < 0.1 dB, rejection > 60 dB) so an
    unbuildable spec fails loudly at design time.
    """
    if not 0.0 < passband < 1.0:
        raise SignalProcessingError("passband must be in (0, 1)")
    gates = gates if gates is not None else ArtifactGates()
    factors = factor_stages(factor, max_stage_factor)
    if factors == [1]:
        # identity decimator: a single pass-through stage
        stage = PolyphaseStage(1, np.array([1.0]))
        report = DecimatorReport(
            factor=1, stage_factors=(1,), stage_reports=(),
            passband_ripple_db=0.0, stopband_atten_db=float("inf"),
            startup_transient_samples=0, group_delay_samples=0.0)
        return MultiStageDecimator([stage], report)

    stages: List[PolyphaseStage] = []
    reports: List[FilterReport] = []
    remaining = list(factors)
    while remaining:
        m = remaining[0]
        r_i = 1
        for f in remaining:
            r_i *= f
        pass_edge = passband / (2.0 * r_i)
        stop_edge = 1.0 / m - pass_edge  # numlint: disable=NL002 -- factor_stages only emits stage factors >= 2 on this path
        if stop_edge <= pass_edge:
            raise SignalProcessingError(
                f"stage factor {m} leaves no transition band for "
                f"passband {passband}")
        taps, rep = design_lowpass(pass_edge, min(stop_edge, 0.5),
                                   atten_db=atten_db)
        # per-stage gates: ripple is budgeted across the cascade below,
        # so only the rejection gate applies stage-locally
        stage_gates = ArtifactGates(
            passband_ripple_db=None,
            stopband_atten_db=gates.stopband_atten_db,
            noise_floor_db=None,
            max_startup_transient_samples=None)
        rep.require(stage_gates)
        stages.append(PolyphaseStage(m, taps))
        reports.append(rep)
        remaining.pop(0)

    chain = MultiStageDecimator(stages)
    report = DecimatorReport(
        factor=chain.factor,
        stage_factors=tuple(factors),
        stage_reports=tuple(reports),
        passband_ripple_db=math.fsum(r.passband_ripple_db for r in reports),
        stopband_atten_db=min(r.stopband_atten_db for r in reports),
        startup_transient_samples=chain.startup_transient_samples,
        group_delay_samples=chain.group_delay_samples,
    )
    report.require(gates)
    chain.report = report
    return chain


def decimate_reference(x: np.ndarray,
                       decimator: MultiStageDecimator) -> np.ndarray:
    """Block-mode oracle for a streaming decimator chain.

    Applies each stage as ``np.convolve(x, taps)[: len(x)][:: factor]``
    — causal filtering then phase-0 downsampling — which is exactly the
    stream :class:`PolyphaseStage` computes.  Used by the equivalence
    property suite and the benchmark as the trusted reference.
    """
    y = np.asarray(x, dtype=np.float64).ravel()
    for stage in decimator.stages:
        if y.size == 0:
            return np.zeros(0, dtype=np.float64)
        y = np.convolve(y, stage.taps)[: y.size][:: stage.factor]
    return y

"""Numerical-issue detectors for FFT/STFT implementations (paper Fig. 3).

Figure 3 of the paper is "a sampling of the issues/bugs encountered in
various libraries/toolkits" across FFT, IFFT, RFFT, IRFFT, STFT, and
ISTFT.  We turn that static catalog into executable detectors: each
detector probes an implementation with crafted inputs and emits
:class:`NumericalIssue` records.  The FIG3 benchmark runs the full
battery against this library's own kernels (under each phase convention)
and against `numpy.fft` as a comparator, printing a catalog of the same
shape as the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, List

import numpy as np

from repro.signal.fft import fft as _fft_forward
from repro.signal.fft import ifft as _fft_inverse
from repro.signal.fft import irfft as _irfft_default
from repro.signal.fft import rfft as _rfft_default
from repro.signal.compat import check_signature_consistency, librosa_style_stft
from repro.signal.phase import delay_of_simplified_convention, phase_skew
from repro.signal.stft import istft, stft
from repro.signal.windows import cola_check, get_window, window_peak_index

__all__ = [
    "IssueSeverity",
    "IssueCategory",
    "NumericalIssue",
    "IssueDetector",
    "run_detectors",
    "default_detectors",
    "detect_fft_roundtrip_error",
    "detect_irfft_symmetry_handling",
    "detect_parseval_violation",
    "detect_linearity_violation",
    "detect_stft_phase_skew",
    "detect_istft_reconstruction",
    "detect_cola_violation",
    "detect_dtype_degradation",
    "detect_window_peak_convention",
    "detect_signature_drift",
]


class IssueSeverity(Enum):
    """Severity grading used in the Fig. 3 catalog rows."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


class IssueCategory(Enum):
    """Which function/method family the issue affects."""

    FFT = "FFT"
    IFFT = "IFFT"
    RFFT = "RFFT"
    IRFFT = "IRFFT"
    STFT = "STFT"
    ISTFT = "ISTFT"
    WINDOW = "WINDOW"


@dataclass(frozen=True)
class NumericalIssue:
    """One detected issue: a row of the Fig. 3-style catalog."""

    category: IssueCategory
    severity: IssueSeverity
    library: str
    description: str
    metric: float

    def as_row(self) -> str:
        return (
            f"{self.category.value:6s} | {self.severity.value:7s} | "
            f"{self.library:24s} | {self.metric:12.4e} | {self.description}"
        )


@dataclass
class IssueDetector:
    """A named probe producing zero or more issues."""

    name: str
    probe: Callable[[], List[NumericalIssue]]

    def run(self) -> List[NumericalIssue]:
        return self.probe()


def _rel(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=np.complex128).ravel()
    b = np.asarray(b, dtype=np.complex128).ravel()
    denom = max(float(np.linalg.norm(b)), 1e-300)
    return float(np.linalg.norm(a - b) / denom)


def _test_signal(n: int = 240, rng_seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(rng_seed)
    t = np.arange(n)
    return (
        np.cos(2 * np.pi * 0.07 * t)
        + 0.5 * np.cos(2 * np.pi * 0.19 * t + 0.3)
        + 0.1 * rng.standard_normal(n)
    )


def detect_fft_roundtrip_error(
    fft_fn=_fft_forward, ifft_fn=_fft_inverse, library: str = "repro", threshold: float = 1e-10
) -> List[NumericalIssue]:
    """IFFT(FFT(x)) must return x to near machine precision, including for
    non-power-of-two lengths (the Bluestein path)."""
    issues: List[NumericalIssue] = []
    for n in (64, 100, 127, 240):
        x = _test_signal(n).astype(np.complex128)
        err = _rel(ifft_fn(fft_fn(x)), x)
        if err > threshold:
            issues.append(
                NumericalIssue(
                    IssueCategory.IFFT,
                    IssueSeverity.ERROR,
                    library,
                    f"round-trip error {err:.2e} at length {n}",
                    err,
                )
            )
    return issues


def detect_irfft_symmetry_handling(
    rfft_fn=_rfft_default, irfft_fn=_irfft_default, library: str = "repro", threshold: float = 1e-10
) -> List[NumericalIssue]:
    """IRFFT must reconstruct real signals for both even and odd lengths —
    the odd-length Nyquist handling is a classic silent-wrong-result bug."""
    issues: List[NumericalIssue] = []
    for n in (64, 65, 100, 101):
        x = _test_signal(n)
        rec = irfft_fn(rfft_fn(x), n=n)
        err = _rel(rec, x)
        if err > threshold:
            issues.append(
                NumericalIssue(
                    IssueCategory.IRFFT,
                    IssueSeverity.ERROR,
                    library,
                    f"real round-trip error {err:.2e} at length {n} "
                    f"({'odd' if n % 2 else 'even'})",
                    err,
                )
            )
    return issues


def detect_parseval_violation(
    fft_fn=_fft_forward, library: str = "repro", threshold: float = 1e-9
) -> List[NumericalIssue]:
    """Energy must be conserved: ``sum|x|^2 == sum|X|^2 / N``."""
    x = _test_signal(256).astype(np.complex128)
    spec = np.asarray(fft_fn(x))
    time_energy = float(np.sum(np.abs(x) ** 2))
    freq_energy = float(np.sum(np.abs(spec) ** 2)) / x.size
    err = abs(time_energy - freq_energy) / max(time_energy, 1e-300)
    if err > threshold:
        return [
            NumericalIssue(
                IssueCategory.FFT,
                IssueSeverity.ERROR,
                library,
                f"Parseval violation {err:.2e} (wrong normalization convention?)",
                err,
            )
        ]
    return []


def detect_linearity_violation(
    fft_fn=_fft_forward, library: str = "repro", threshold: float = 1e-9
) -> List[NumericalIssue]:
    """FFT(a x + b y) must equal a FFT(x) + b FFT(y)."""
    rng = np.random.default_rng(3)
    x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
    y = rng.standard_normal(128) + 1j * rng.standard_normal(128)
    a, b = 2.5, -1.25
    err = _rel(fft_fn(a * x + b * y), a * np.asarray(fft_fn(x)) + b * np.asarray(fft_fn(y)))
    if err > threshold:
        return [
            NumericalIssue(
                IssueCategory.FFT,
                IssueSeverity.ERROR,
                library,
                f"linearity violation {err:.2e}",
                err,
            )
        ]
    return []


def detect_stft_phase_skew(
    window_length: int = 32, n_fft: int = 64, hop: int = 8, library: str = "repro"
) -> List[NumericalIssue]:
    """Reproduce the §IV-B finding: the simplified convention (Eq. 6)
    carries a window-length-dependent phase skew relative to the
    time-invariant convention (Eq. 5)."""
    s = _test_signal(256)
    g = get_window("hann", window_length)
    ti = stft(s, g, hop=hop, n_fft=n_fft, convention="time_invariant")
    simp = stft(s, g, hop=hop, n_fft=n_fft, convention="simplified")
    skew = phase_skew(ti.coefficients, simp.coefficients)
    issues: List[NumericalIssue] = []
    if skew > 1e-6:
        delay = delay_of_simplified_convention(window_length)
        issues.append(
            NumericalIssue(
                IssueCategory.STFT,
                IssueSeverity.WARNING,
                library,
                f"phase skew {skew:.3f} rad between time-invariant and "
                f"simplified conventions (window-dependent delay "
                f"{delay} samples)",
                skew,
            )
        )
    return issues


def detect_istft_reconstruction(
    window_name: str = "hann",
    window_length: int = 32,
    hop: int = 8,
    library: str = "repro",
    threshold: float = 1e-8,
) -> List[NumericalIssue]:
    """ISTFT(STFT(x)) must reconstruct x under every convention."""
    s = _test_signal(256)
    g = get_window(window_name, window_length)
    issues: List[NumericalIssue] = []
    for conv in ("time_invariant", "simplified", "frequency_invariant"):
        res = stft(s, g, hop=hop, n_fft=2 * window_length, convention=conv)
        rec = istft(res)
        err = _rel(rec, s)
        if err > threshold:
            issues.append(
                NumericalIssue(
                    IssueCategory.ISTFT,
                    IssueSeverity.ERROR,
                    library,
                    f"reconstruction error {err:.2e} under convention {conv}",
                    err,
                )
            )
    return issues


def detect_cola_violation(
    window_name: str = "hann", window_length: int = 32, hop: int = 24, library: str = "repro"
) -> List[NumericalIssue]:
    """Flag window/hop pairs that break constant overlap-add (hop too
    large), which silently degrades naive overlap-add synthesis."""
    g = get_window(window_name, window_length)
    if not cola_check(g, hop):
        return [
            NumericalIssue(
                IssueCategory.WINDOW,
                IssueSeverity.WARNING,
                library,
                f"{window_name}({window_length}) with hop {hop} violates COLA; "
                "naive overlap-add synthesis will not be exact",
                float(hop) / window_length,  # numlint: disable=NL002 -- get_window above rejects window_length < 1
            )
        ]
    return []


def detect_dtype_degradation(
    fft_fn=_fft_forward, library: str = "repro", ratio_threshold: float = 1e4
) -> List[NumericalIssue]:
    """Compare float32 vs float64 round-trip error; a ratio far above the
    eps ratio (~1e8 would be expected degradation, << that is fine) flags
    precision-dependent code paths."""
    x64 = _test_signal(128).astype(np.float64)
    x32 = x64.astype(np.float32)
    spec64 = np.asarray(fft_fn(x64.astype(np.complex128)))
    spec32 = np.asarray(fft_fn(x32.astype(np.complex64).astype(np.complex128)))
    err = _rel(spec32, spec64)
    if err > np.finfo(np.float32).eps * ratio_threshold:
        return [
            NumericalIssue(
                IssueCategory.FFT,
                IssueSeverity.WARNING,
                library,
                f"float32 pipeline error {err:.2e} exceeds expected "
                "single-precision budget",
                err,
            )
        ]
    return []


def detect_window_peak_convention(
    window_name: str = "gaussian", window_length: int = 33, library: str = "repro"
) -> List[NumericalIssue]:
    """Report which storage convention a window follows.  The paper calls
    the peak-at-``g[floor(Lg/2)]`` storage "unconventional" and notes the
    expected peak is at ``g[0]`` for LTFAT-style transforms."""
    g = get_window(window_name, window_length)
    peak = window_peak_index(g)
    if peak != 0:
        return [
            NumericalIssue(
                IssueCategory.WINDOW,
                IssueSeverity.INFO,
                library,
                f"{window_name}({window_length}) stored with peak at index "
                f"{peak} (centered storage), not g[0]; transforms assuming "
                "causal storage acquire a phase skew",
                float(peak),
            )
        ]
    return []


def detect_signature_drift(fn=librosa_style_stft, library: str = "repro") -> List[NumericalIssue]:
    """§IV-A: an STFT adapter whose parameter order drifts from the
    librosa reference "can cause errors or return incorrect results" for
    positional callers.  Reports one issue per discrepancy."""
    issues: List[NumericalIssue] = []
    for problem in check_signature_consistency(fn):
        issues.append(
            NumericalIssue(
                IssueCategory.STFT,
                IssueSeverity.ERROR,
                library,
                f"signature drift vs librosa reference: {problem}",
                1.0,
            )
        )
    return issues


def default_detectors() -> List[IssueDetector]:
    """The standard battery run by the FIG3 benchmark."""
    return [
        IssueDetector("fft_roundtrip", lambda: detect_fft_roundtrip_error()),
        IssueDetector("irfft_symmetry", lambda: detect_irfft_symmetry_handling()),
        IssueDetector("parseval", lambda: detect_parseval_violation()),
        IssueDetector("linearity", lambda: detect_linearity_violation()),
        IssueDetector("stft_phase_skew", lambda: detect_stft_phase_skew()),
        IssueDetector("istft_reconstruction", lambda: detect_istft_reconstruction()),
        IssueDetector("cola", lambda: detect_cola_violation()),
        IssueDetector("dtype", lambda: detect_dtype_degradation()),
        IssueDetector("window_peak", lambda: detect_window_peak_convention()),
        IssueDetector("signature", lambda: detect_signature_drift()),
    ]


def run_detectors(detectors: Iterable[IssueDetector] | None = None) -> List[NumericalIssue]:
    """Run a battery of detectors and collect all issues."""
    issues: List[NumericalIssue] = []
    for det in detectors if detectors is not None else default_detectors():
        issues.extend(det.run())
    return issues

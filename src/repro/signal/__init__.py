"""Signal-processing substrate: FFT family, STFT phase conventions
(paper Eqs. 5-6), Gabor transform, spectrograms, and the Fig. 3
numerical-issue detectors."""

from repro.signal.compat import (
    LIBROSA_STFT_SIGNATURE,
    check_signature_consistency,
    librosa_style_stft,
)
from repro.signal.detection import (
    DetectionScores,
    auc,
    energy_detector,
    matched_filter,
    roc_curve,
)
from repro.signal.fft import dft_naive, fft, fftfreq, ifft, irfft, next_pow2, rfft
from repro.signal.gabor import GaborFrame, gabor_transform, gabphasederiv
from repro.signal.griffin_lim import GriffinLimResult, griffin_lim
from repro.signal.issues import (
    IssueCategory,
    IssueDetector,
    IssueSeverity,
    NumericalIssue,
    default_detectors,
    run_detectors,
)
from repro.signal.phase import (
    convert_convention,
    delay_of_simplified_convention,
    magnitude_mismatch,
    phase_correction_matrix,
    phase_skew,
    unwrap_phase,
)
from repro.signal.spectrogram import (
    linear_chirp,
    log_spectrogram,
    multitone,
    noisy,
    ofdm_burst,
    spectrogram,
)
from repro.signal.stft import STFTResult, frame_signal, istft, num_frames, stft
from repro.signal.windows import (
    blackman,
    causal_to_centered,
    centered_to_causal,
    cola_check,
    gaussian,
    get_window,
    hamming,
    hann,
    rectangular,
    window_peak_index,
)

__all__ = [
    "DetectionScores",
    "LIBROSA_STFT_SIGNATURE",
    "GaborFrame",
    "GriffinLimResult",
    "IssueCategory",
    "IssueDetector",
    "IssueSeverity",
    "NumericalIssue",
    "STFTResult",
    "auc",
    "blackman",
    "causal_to_centered",
    "check_signature_consistency",
    "centered_to_causal",
    "cola_check",
    "convert_convention",
    "default_detectors",
    "delay_of_simplified_convention",
    "dft_naive",
    "energy_detector",
    "fft",
    "fftfreq",
    "frame_signal",
    "gabor_transform",
    "gabphasederiv",
    "griffin_lim",
    "gaussian",
    "get_window",
    "hamming",
    "hann",
    "ifft",
    "irfft",
    "istft",
    "librosa_style_stft",
    "linear_chirp",
    "matched_filter",
    "log_spectrogram",
    "magnitude_mismatch",
    "multitone",
    "next_pow2",
    "noisy",
    "num_frames",
    "ofdm_burst",
    "phase_correction_matrix",
    "phase_skew",
    "rectangular",
    "rfft",
    "roc_curve",
    "run_detectors",
    "spectrogram",
    "stft",
    "unwrap_phase",
    "window_peak_index",
]

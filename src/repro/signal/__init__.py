"""Signal-processing substrate: FFT family, STFT phase conventions
(paper Eqs. 5-6), Gabor transform, spectrograms, the Fig. 3
numerical-issue detectors, and the streaming front-end (overlap-save
convolution, streaming STFT, artifact-gated polyphase decimation)."""

from repro.signal.compat import (
    LIBROSA_STFT_SIGNATURE,
    check_signature_consistency,
    librosa_style_stft,
)
from repro.signal.detection import (
    DetectionScores,
    auc,
    energy_detector,
    matched_filter,
    roc_curve,
)
from repro.signal.decimate import (
    DecimatorReport,
    MultiStageDecimator,
    PolyphaseStage,
    decimate_reference,
    design_decimator,
    factor_stages,
)
from repro.signal.fft import dft_naive, fft, fftfreq, ifft, irfft, next_pow2, rfft
from repro.signal.filters import (
    ArtifactGates,
    FilterReport,
    design_lowpass,
    frequency_response,
    kaiser_beta,
    kaiser_numtaps,
    measure_lowpass,
)
from repro.signal.gabor import GaborFrame, gabor_transform, gabphasederiv
from repro.signal.griffin_lim import GriffinLimResult, griffin_lim
from repro.signal.issues import (
    IssueCategory,
    IssueDetector,
    IssueSeverity,
    NumericalIssue,
    default_detectors,
    run_detectors,
)
from repro.signal.phase import (
    convert_convention,
    delay_of_simplified_convention,
    magnitude_mismatch,
    phase_correction_matrix,
    phase_skew,
    unwrap_phase,
)
from repro.signal.spectrogram import (
    linear_chirp,
    log_spectrogram,
    multitone,
    noisy,
    ofdm_burst,
    spectrogram,
)
from repro.signal.stft import STFTResult, frame_signal, istft, num_frames, stft
from repro.signal.streaming import (
    OverlapSaveConvolver,
    StreamingSTFT,
    streaming_convolve,
)
from repro.signal.windows import (
    blackman,
    causal_to_centered,
    centered_to_causal,
    cola_check,
    gaussian,
    get_window,
    hamming,
    hann,
    rectangular,
    window_peak_index,
)

__all__ = [
    "ArtifactGates",
    "DecimatorReport",
    "DetectionScores",
    "FilterReport",
    "LIBROSA_STFT_SIGNATURE",
    "GaborFrame",
    "GriffinLimResult",
    "IssueCategory",
    "IssueDetector",
    "IssueSeverity",
    "MultiStageDecimator",
    "NumericalIssue",
    "OverlapSaveConvolver",
    "PolyphaseStage",
    "STFTResult",
    "StreamingSTFT",
    "auc",
    "blackman",
    "causal_to_centered",
    "check_signature_consistency",
    "centered_to_causal",
    "cola_check",
    "convert_convention",
    "decimate_reference",
    "default_detectors",
    "delay_of_simplified_convention",
    "design_decimator",
    "design_lowpass",
    "dft_naive",
    "energy_detector",
    "factor_stages",
    "fft",
    "fftfreq",
    "frame_signal",
    "frequency_response",
    "gabor_transform",
    "gabphasederiv",
    "griffin_lim",
    "gaussian",
    "get_window",
    "hamming",
    "hann",
    "ifft",
    "irfft",
    "istft",
    "kaiser_beta",
    "kaiser_numtaps",
    "librosa_style_stft",
    "linear_chirp",
    "matched_filter",
    "log_spectrogram",
    "magnitude_mismatch",
    "measure_lowpass",
    "multitone",
    "next_pow2",
    "noisy",
    "num_frames",
    "ofdm_burst",
    "phase_correction_matrix",
    "phase_skew",
    "rectangular",
    "rfft",
    "roc_curve",
    "run_detectors",
    "spectrogram",
    "stft",
    "streaming_convolve",
    "unwrap_phase",
    "window_peak_index",
]

"""Classical signal detection baselines: energy detector and matched filter.

The paper positions the STFT as "the basis for signal detection and
classification in 5G and beyond"; the MSY3I detector of :mod:`repro.nn`
is the learned approach.  These classical detectors provide the
measuring stick: an energy detector over spectrogram cells (no knowledge
of the waveform) and a matched filter (full waveform knowledge — the
optimal linear detector in white noise), with ROC utilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError

__all__ = [
    "energy_detector",
    "matched_filter",
    "roc_curve",
    "auc",
    "DetectionScores",
]


@dataclass(frozen=True)
class DetectionScores:
    """Scores plus ground truth for ROC analysis."""

    scores: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        s = np.asarray(self.scores, dtype=np.float64).ravel()
        l = np.asarray(self.labels).ravel().astype(bool)
        if s.size != l.size:
            raise DimensionError("scores and labels must align")
        object.__setattr__(self, "scores", s)
        object.__setattr__(self, "labels", l)


def energy_detector(spectrogram_cells: np.ndarray) -> np.ndarray:
    """Per-cell energy statistic: mean power within each cell.

    ``spectrogram_cells`` is (n_cells, ...) — anything after the first
    axis is averaged.  The statistic is compared against a threshold by
    the caller (or fed to :func:`roc_curve`).
    """
    cells = np.asarray(spectrogram_cells, dtype=np.float64)
    if cells.ndim < 2:
        raise DimensionError("expected (n_cells, ...) cell array")
    return cells.reshape(cells.shape[0], -1).mean(axis=1)


def matched_filter(received: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Normalized matched-filter statistic over all alignments.

    Returns the correlation magnitude sequence; its max is the detection
    statistic.  Optimal for a known waveform in white Gaussian noise.
    """
    received = np.asarray(received, dtype=np.float64).ravel()
    template = np.asarray(template, dtype=np.float64).ravel()
    if template.size == 0 or received.size < template.size:
        raise ConfigurationError("template must be non-empty and fit the signal")
    t = template / max(np.linalg.norm(template), 1e-300)
    out = np.correlate(received, t, mode="valid")
    return np.abs(out)


def roc_curve(scores: DetectionScores, n_thresholds: int = 101) -> Tuple[np.ndarray, np.ndarray]:
    """(false-positive rates, true-positive rates) over a threshold sweep."""
    s, labels = scores.scores, scores.labels
    if not labels.any() or labels.all():
        raise ConfigurationError("ROC needs both positive and negative examples")
    thresholds = np.quantile(s, np.linspace(1.0, 0.0, n_thresholds))
    fpr: List[float] = []
    tpr: List[float] = []
    n_pos = labels.sum()
    n_neg = (~labels).sum()
    for th in thresholds:
        detected = s >= th
        tpr.append(float((detected & labels).sum() / n_pos))  # numlint: disable=NL002 -- both classes guaranteed non-empty by the guard above
        fpr.append(float((detected & ~labels).sum() / n_neg))  # numlint: disable=NL002 -- both classes guaranteed non-empty by the guard above
    return np.asarray(fpr), np.asarray(tpr)


def auc(scores: DetectionScores) -> float:
    """Area under the ROC curve via the rank statistic (exact)."""
    s, labels = scores.scores, scores.labels
    if not labels.any() or labels.all():
        raise ConfigurationError("AUC needs both positive and negative examples")
    order = np.argsort(s)
    ranks = np.empty(s.size)
    ranks[order] = np.arange(1, s.size + 1)
    # midranks for ties
    sorted_s = s[order]
    i = 0
    while i < s.size:
        j = i
        while j + 1 < s.size and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    n_pos = labels.sum()
    n_neg = s.size - n_pos
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))  # numlint: disable=NL002 -- both classes guaranteed non-empty by the guard above

"""Spectrogram and synthetic RF-style test signals.

The NN workloads in this reproduction operate on spectrogram "images"
(the paper's MSY3I #2 targets STFT-based 5G functions such as signal
detection/classification), so this module also generates the synthetic
signals used across examples, tests, and benchmarks: chirps, multitones,
and OFDM-like bursts.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.stft import Convention, stft
from repro.signal.windows import get_window

__all__ = [
    "spectrogram",
    "log_spectrogram",
    "linear_chirp",
    "multitone",
    "ofdm_burst",
    "noisy",
]


def spectrogram(
    s: np.ndarray,
    window: str | np.ndarray = "hann",
    window_length: int = 64,
    hop: int = 16,
    n_fft: int | None = None,
    convention: Convention = "frequency_invariant",
) -> np.ndarray:
    """Magnitude-squared STFT, shape ``(n_bins, n_frames)`` with only the
    nonredundant ``n_fft//2 + 1`` bins retained for real input."""
    g = get_window(window, window_length) if isinstance(window, str) else np.asarray(window)
    res = stft(s, g, hop=hop, n_fft=n_fft or g.size, convention=convention)
    power = np.abs(res.coefficients) ** 2
    if not np.iscomplexobj(np.asarray(s)):
        power = power[: res.n_fft // 2 + 1]
    return power


def log_spectrogram(s: np.ndarray, floor_db: float = -80.0, **kwargs) -> np.ndarray:
    """Log-power spectrogram in dB, floored to ``floor_db`` below the peak."""
    p = spectrogram(s, **kwargs)
    peak = max(float(p.max()), 1e-300)
    db = 10.0 * np.log10(np.maximum(p / peak, 10.0 ** (floor_db / 10.0)))
    return db


def linear_chirp(
    n: int, f0: float = 0.01, f1: float = 0.4, amplitude: float = 1.0
) -> np.ndarray:
    """Real linear chirp sweeping normalized frequency f0 -> f1 over n samples."""
    if n < 1:
        raise SignalProcessingError("n must be >= 1")
    if not (0 <= f0 <= 0.5 and 0 <= f1 <= 0.5):
        raise SignalProcessingError("normalized frequencies must lie in [0, 0.5]")
    t = np.arange(n, dtype=np.float64)
    inst_phase = 2.0 * np.pi * (f0 * t + 0.5 * (f1 - f0) * t * t / n)
    return amplitude * np.cos(inst_phase)


def multitone(
    n: int, freqs: list[float], amplitudes: list[float] | None = None
) -> np.ndarray:
    """Sum of real sinusoids at the given normalized frequencies."""
    if n < 1:
        raise SignalProcessingError("n must be >= 1")
    amplitudes = amplitudes or [1.0] * len(freqs)
    if len(amplitudes) != len(freqs):
        raise SignalProcessingError("freqs and amplitudes must have equal length")
    t = np.arange(n, dtype=np.float64)
    out = np.zeros(n, dtype=np.float64)
    for f, a in zip(freqs, amplitudes):
        out += a * np.cos(2.0 * np.pi * f * t)
    return out


def ofdm_burst(
    n_subcarriers: int = 16,
    n_symbols: int = 8,
    cp_length: int = 4,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Baseband OFDM burst with QPSK subcarriers and a cyclic prefix.

    Exercises the same IFFT code path the paper's 5G functions rely on.
    """
    rng = rng or np.random.default_rng(0)
    if n_subcarriers < 2 or n_symbols < 1 or cp_length < 0:
        raise SignalProcessingError("invalid OFDM burst parameters")
    qpsk = (rng.integers(0, 2, (n_symbols, n_subcarriers)) * 2 - 1) + 1j * (
        rng.integers(0, 2, (n_symbols, n_subcarriers)) * 2 - 1
    )
    qpsk = qpsk / np.sqrt(2.0)
    symbols = np.fft.ifft(qpsk, axis=1) * np.sqrt(n_subcarriers)
    if cp_length:
        symbols = np.concatenate([symbols[:, -cp_length:], symbols], axis=1)
    return symbols.ravel()


def noisy(s: np.ndarray, snr_db: float, rng: np.random.Generator | None = None) -> np.ndarray:
    """Add white Gaussian noise at the requested SNR (dB)."""
    rng = rng or np.random.default_rng(0)
    s = np.asarray(s)
    power = float(np.mean(np.abs(s) ** 2))
    if power == 0.0:
        return s.copy()
    noise_power = power / (10.0 ** (snr_db / 10.0))
    if np.iscomplexobj(s):
        noise = rng.standard_normal(s.shape) + 1j * rng.standard_normal(s.shape)
        noise *= np.sqrt(noise_power / 2.0)
    else:
        noise = rng.standard_normal(s.shape) * np.sqrt(noise_power)
    return s + noise

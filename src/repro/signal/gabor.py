"""Gabor transform and phase derivatives.

The Gabor transform is "a special case of STFT" (paper §IV-B) with a
Gaussian window on a regular time-frequency lattice.  The paper quotes the
LTFAT ``gabphasederiv`` documentation: distances are measured in samples,
and "the computation of phased is inaccurate when the absolute value of
the Gabor coefficients is low ... the phase of complex numbers close to
the machine precision is almost random".  :func:`gabphasederiv` reproduces
that behaviour and exposes the magnitude mask used to flag unreliable
bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.stft import STFTResult, stft
from repro.signal.windows import gaussian

__all__ = ["GaborFrame", "gabor_transform", "gabphasederiv"]


@dataclass(frozen=True)
class GaborFrame:
    """A Gabor lattice: Gaussian window, time step *a*, *M* channels."""

    window_length: int
    hop: int
    n_channels: int
    sigma_ratio: float = 0.125

    def __post_init__(self):
        if self.window_length < 1 or self.hop < 1 or self.n_channels < 1:
            raise SignalProcessingError(
                "window_length, hop and n_channels must all be >= 1"
            )

    def window(self) -> np.ndarray:
        return gaussian(self.window_length, sigma_ratio=self.sigma_ratio)

    def redundancy(self) -> float:
        """Lattice redundancy ``M / a``; > 1 required for a frame."""
        return self.n_channels / self.hop


def gabor_transform(s: np.ndarray, frame: GaborFrame) -> STFTResult:
    """Gabor coefficients of *s* on the given lattice (frequency-invariant
    convention, which is LTFAT's native phase convention for ``dgt``)."""
    if frame.n_channels < frame.window_length:
        raise SignalProcessingError(
            "number of channels must be >= window length for a painless frame"
        )
    return stft(
        s,
        window=frame.window(),
        hop=frame.hop,
        n_fft=frame.n_channels,
        convention="frequency_invariant",
    )


def _centered_diff(arr: np.ndarray, axis: int) -> np.ndarray:
    """Central differences with one-sided differences at the boundaries."""
    out = np.empty_like(arr)
    sl = [slice(None)] * arr.ndim

    def take(idx):
        s2 = list(sl)
        s2[axis] = idx
        return arr[tuple(s2)]

    n = arr.shape[axis]
    if n == 1:
        return np.zeros_like(arr)
    inner = (np.take(arr, range(2, n), axis=axis) - np.take(arr, range(0, n - 2), axis=axis)) / 2.0
    first = (np.take(arr, [1], axis=axis) - np.take(arr, [0], axis=axis))
    last = (np.take(arr, [n - 1], axis=axis) - np.take(arr, [n - 2], axis=axis))
    return np.concatenate([first, inner, last], axis=axis)


def gabphasederiv(
    result: STFTResult,
    dflag: Literal["t", "f"] = "t",
    method: Literal["dgt", "phase"] = "phase",
    magnitude_floor: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray]:
    """Phase derivative of Gabor/STFT coefficients, scaled in samples.

    Parameters
    ----------
    result:
        Coefficients from :func:`gabor_transform` or :func:`~repro.signal.stft.stft`.
    dflag:
        ``"t"`` for the derivative along time (local instantaneous
        frequency), ``"f"`` along frequency (local group delay).
    method:
        ``"phase"`` differentiates the unwrapped phase numerically (the
        method whose inaccuracy at low magnitude the paper highlights);
        ``"dgt"`` uses the analytic ratio-of-transforms identity
        ``d/dt arg C = Im(C_dg / C)`` which fails the same way — both
        divide by near-zero coefficients.

    Returns
    -------
    (phased, reliable):
        ``phased`` is the phase-derivative array (same shape as the
        coefficients); ``reliable`` is a boolean mask, False where the
        coefficient magnitude is below ``magnitude_floor`` times the peak
        magnitude, i.e. where "the phase ... is almost random".
    """
    if dflag not in ("t", "f"):
        raise SignalProcessingError("dflag must be 't' or 'f'")
    if method not in ("dgt", "phase"):
        raise SignalProcessingError("method must be 'dgt' or 'phase'")
    c = np.asarray(result.coefficients, dtype=np.complex128)
    mag = np.abs(c)
    peak = max(float(mag.max()), 1e-300)
    reliable = mag > magnitude_floor * peak

    phase = np.angle(c)
    axis = 1 if dflag == "t" else 0
    # unwrap along the differentiation axis before differencing
    unwrapped = np.unwrap(phase, axis=axis)
    if method == "phase":
        deriv = _centered_diff(unwrapped, axis=axis)
    else:
        # ratio method: d(arg C) = Im(dC / C); dC from centered differences
        dc = _centered_diff(c, axis=axis)
        with np.errstate(divide="ignore", invalid="ignore"):
            deriv = np.imag(dc / np.where(np.abs(c) > 0, c, 1.0))
        deriv = np.where(np.abs(c) > 0, deriv, 0.0)
    # scale to samples: time axis steps are `hop` samples; frequency axis
    # steps are 1/n_fft cycles/sample -> measure distances in samples.
    if dflag == "t":
        deriv = deriv / result.hop
    else:
        deriv = deriv * result.n_fft / (2.0 * np.pi)
    return deriv, reliable

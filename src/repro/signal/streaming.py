"""Streaming DSP front-end: overlap-save convolution and streaming STFT.

The block transforms in :mod:`repro.signal` assume the whole signal is
in memory; a long-running service (:mod:`repro.serve`) sees samples in
chunks of whatever size the transport delivers — including pathological
chunkings like one sample at a time.  The two primitives here process
arbitrary chunk sequences while staying **provably equivalent** to
their block counterparts:

* :class:`OverlapSaveConvolver` — FFT-accelerated causal FIR filtering.
  Concatenating ``process(...)`` outputs plus ``flush()`` reproduces
  ``np.convolve(x, taps)[:len(x)]`` to ~1e-12 regardless of chunking.
* :class:`StreamingSTFT` — emits STFT frames as soon as their samples
  have arrived; ``finalize()`` yields an :class:`~repro.signal.stft.STFTResult`
  **bit-identical** to :func:`repro.signal.stft.stft` because both paths
  share the same frame/DFT kernel and phase-referencing ops.

Neither class reads a clock or owns an RNG: streaming state is a pure
fold over the input chunks, which is what makes the equivalence
properties testable and keeps the numlint flow tier (DT001/DT002)
trivially satisfied.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import SignalProcessingError
from repro.signal.fft import fft, next_pow2
from repro.signal.stft import Convention, STFTResult, num_frames, stft

__all__ = [
    "OverlapSaveConvolver",
    "StreamingSTFT",
    "streaming_convolve",
]


class OverlapSaveConvolver:
    """Causal streaming FIR filter via the overlap-save method.

    The filter accumulates input into blocks of ``block_size`` samples,
    convolves each block with one zero-padded FFT multiply, and keeps
    the trailing ``n_taps - 1`` input samples as carry-over state — the
    textbook overlap-save recurrence.  Output timing is *blocky* (a
    ``process`` call emits only whole blocks; ``flush`` emits the
    remainder), but the concatenated output stream is exactly the causal
    convolution ``y[n] = sum_k h[k] x[n-k]`` with zero initial state.

    ``startup_transient_samples`` (``n_taps - 1``) is the exact warmup
    length: outputs before it are computed from a partially-filled
    delay line — the SNIPPETS §2 "startup transient" artifact — and
    callers that need a settled stream should discard that many samples.
    """

    def __init__(self, taps: np.ndarray, block_size: int | None = None):
        h = np.asarray(taps, dtype=np.float64).ravel()
        if h.size < 1:
            raise SignalProcessingError("taps must be non-empty")
        self._h = h
        self._n_taps = int(h.size)
        if block_size is None:
            # amortize the tap overlap: blocks of ~8x the filter length
            block_size = max(8 * self._n_taps, 256)
        if block_size < 1:
            raise SignalProcessingError("block_size must be >= 1")
        self._n_fft = next_pow2(block_size + self._n_taps - 1)
        self._block = self._n_fft - (self._n_taps - 1)
        self._spectrum = np.fft.rfft(h, self._n_fft)
        self._tail = np.zeros(self._n_taps - 1, dtype=np.float64)
        self._pending: List[np.ndarray] = []
        self._pending_n = 0
        self._closed = False
        self.samples_in = 0
        self.samples_out = 0

    @property
    def n_taps(self) -> int:
        return self._n_taps

    @property
    def block_size(self) -> int:
        """Samples per internal FFT block (outputs are emitted in these)."""
        return self._block

    @property
    def startup_transient_samples(self) -> int:
        """Exact FIR warmup: outputs before this index are ramp-in."""
        return self._n_taps - 1

    def _run_block(self, block: np.ndarray) -> np.ndarray:
        """One overlap-save step: filter ``block`` against the carried tail."""
        extended = np.concatenate([self._tail, block])
        spectrum = np.fft.rfft(extended, self._n_fft)
        filtered = np.fft.irfft(spectrum * self._spectrum, self._n_fft)
        out = filtered[self._n_taps - 1 : self._n_taps - 1 + block.size]
        if self._n_taps > 1:
            self._tail = extended[-(self._n_taps - 1):].copy()
        return out

    def process(self, chunk: np.ndarray) -> np.ndarray:
        """Feed a chunk (any length, including 0 or 1 samples).

        Returns the output samples that became computable as whole
        blocks; may be empty while input accumulates.
        """
        if self._closed:
            raise SignalProcessingError("convolver already flushed")
        x = np.asarray(chunk, dtype=np.float64).ravel()
        self.samples_in += x.size
        if x.size:
            self._pending.append(x)
            self._pending_n += x.size
        if self._pending_n < self._block:
            return np.zeros(0, dtype=np.float64)
        buf = np.concatenate(self._pending)
        n_blocks = buf.size // self._block
        used = n_blocks * self._block
        outputs = [
            self._run_block(buf[i * self._block : (i + 1) * self._block])
            for i in range(n_blocks)
        ]
        rest = buf[used:]
        self._pending = [rest] if rest.size else []
        self._pending_n = rest.size
        out = np.concatenate(outputs)
        self.samples_out += out.size
        return out

    def flush(self) -> np.ndarray:
        """Emit outputs for the buffered partial block and close the stream.

        After ``flush`` the total output count equals the total input
        count: the convolver computes the causal "same"-length filtering;
        the pure ring-out tail (inputs fully past) is never emitted.
        """
        if self._closed:
            raise SignalProcessingError("convolver already flushed")
        self._closed = True
        if self._pending_n == 0:
            return np.zeros(0, dtype=np.float64)
        buf = np.concatenate(self._pending)
        self._pending = []
        n = buf.size
        self._pending_n = 0
        padded = np.concatenate(
            [buf, np.zeros(self._block - n, dtype=np.float64)])
        out = self._run_block(padded)[:n]
        self.samples_out += out.size
        return out


def streaming_convolve(
    x: np.ndarray, taps: np.ndarray, chunk_size: int = 4096,
    block_size: int | None = None,
) -> np.ndarray:
    """Convenience wrapper: run ``x`` through an :class:`OverlapSaveConvolver`
    in ``chunk_size`` pieces and return the concatenated causal output
    (equals ``np.convolve(x, taps)[:len(x)]``)."""
    if chunk_size < 1:
        raise SignalProcessingError("chunk_size must be >= 1")
    conv = OverlapSaveConvolver(taps, block_size=block_size)
    x = np.asarray(x, dtype=np.float64).ravel()
    parts = [
        conv.process(x[i : i + chunk_size])
        for i in range(0, x.size, chunk_size)
    ]
    parts.append(conv.flush())
    return np.concatenate(parts) if parts else np.zeros(0)


class StreamingSTFT:
    """Incremental STFT equal to the block :func:`repro.signal.stft.stft`.

    Frames are emitted by :meth:`process` as soon as every sample they
    touch has arrived; :meth:`finalize` pads the signal's end (exactly
    as the block transform's zero-padded framing does), emits the
    remaining frames, and assembles a :class:`STFTResult`.

    Equivalence is *structural*, not approximate: each frame is gathered,
    windowed, rotated, DFT'd, and phase-referenced with the same
    operations in the same order as the block path, so
    ``finalize().coefficients`` matches ``stft(...).coefficients``
    bit-for-bit (the property suite still asserts the documented 1e-9
    bound rather than bit equality, to leave kernel-level refactors
    room).  Supported edge chunkings include single-sample feeds and one
    chunk longer than the whole signal.
    """

    def __init__(self, window: np.ndarray, hop: int,
                 n_fft: int | None = None,
                 convention: Convention = "time_invariant"):
        g = np.asarray(window, dtype=np.float64).ravel()
        if g.size < 1:
            raise SignalProcessingError("window must be non-empty")
        if hop < 1:
            raise SignalProcessingError("hop must be >= 1")
        m = int(n_fft) if n_fft is not None else int(g.size)
        if m < g.size:
            raise SignalProcessingError(
                f"n_fft ({m}) must be >= window length ({g.size})")
        if convention not in ("time_invariant", "simplified",
                              "frequency_invariant"):
            raise SignalProcessingError(
                f"unknown STFT convention {convention!r}")
        self._g = g
        self._hop = int(hop)
        self._m = m
        self._lg = int(g.size)
        self._half = self._lg // 2
        self._convention: Convention = convention
        # causal (Eq. 6) frames start at n*hop; centered frames at
        # n*hop - floor(Lg/2) — the same offsets the block path uses
        self._offset = 0 if convention == "simplified" else self._half
        self._buf = np.zeros(0, dtype=np.complex128)
        self._base = 0  # global index of _buf[0]
        self._received = 0
        self._next_frame = 0
        self._frames: List[np.ndarray] = []
        self._finalized: Optional[STFTResult] = None

    @property
    def frames_emitted(self) -> int:
        return self._next_frame

    @property
    def samples_in(self) -> int:
        return self._received

    def _gather(self, n: int) -> np.ndarray:
        """Frame ``n`` of the buffered signal, zero-padded outside it —
        mirrors :func:`repro.signal.stft.frame_signal` one row at a time."""
        start = n * self._hop - self._offset
        frame = np.zeros(self._lg, dtype=np.complex128)
        lo = max(start, 0)
        hi = min(start + self._lg, self._received)
        if hi > lo:
            frame[lo - start : hi - start] = \
                self._buf[lo - self._base : hi - self._base]
        return frame

    def _emit(self, n: int) -> np.ndarray:
        """Window, rotate, DFT, and phase-reference frame ``n`` with the
        same operation sequence as the block transform."""
        windowed = self._gather(n) * self._g
        padded = np.zeros(self._m, dtype=np.complex128)
        padded[: self._lg] = windowed
        if self._convention != "simplified":
            padded = np.roll(padded, -self._half)
        coeff = fft(padded)
        if self._convention == "time_invariant":
            mm = np.arange(self._m)
            coeff = coeff * np.exp(
                -2.0j * np.pi * mm * (n * self._hop % self._m) / self._m)  # numlint: disable=NL002 -- __init__ enforces n_fft >= window length >= 1
        return coeff

    def _compact(self) -> None:
        """Drop buffered samples no future frame can touch.

        Clamped to ``_received``: with ``hop`` larger than the window the
        next frame's start can lie beyond the samples seen so far, and
        ``_base`` must never outrun the append position or the buffer
        desynchronizes from global sample indices.
        """
        needed_from = min(
            max(self._next_frame * self._hop - self._offset, 0),
            self._received)
        if needed_from > self._base:
            self._buf = self._buf[needed_from - self._base:]
            self._base = needed_from
        if self._buf.size == 0:
            self._base = max(self._base, needed_from)

    def process(self, chunk: np.ndarray) -> np.ndarray:
        """Feed samples; returns newly complete frames, shape ``(n_fft, k)``.

        A frame is complete once the last sample it touches has arrived
        (leading zero-padding for centered frames near the signal start
        is applied exactly as in the block path).
        """
        if self._finalized is not None:
            raise SignalProcessingError("streaming STFT already finalized")
        x = np.asarray(chunk).ravel().astype(np.complex128)
        if x.size:
            self._buf = np.concatenate([self._buf, x])
            self._received += x.size
        emitted: List[np.ndarray] = []
        while (self._next_frame * self._hop - self._offset + self._lg
               <= self._received):
            emitted.append(self._emit(self._next_frame))
            self._next_frame += 1
        self._compact()
        if emitted:
            self._frames.extend(emitted)
            return np.stack(emitted, axis=1)
        return np.zeros((self._m, 0), dtype=np.complex128)

    def finalize(self) -> STFTResult:
        """Flush end-of-signal frames and assemble the block-equivalent
        :class:`STFTResult` (idempotent: repeated calls return the same
        result object)."""
        if self._finalized is not None:
            return self._finalized
        if self._received < 1:
            raise SignalProcessingError("signal must be non-empty")
        # the block transform's common frame count for all conventions
        n_fr = num_frames(self._received, self._hop, self._half)
        while self._next_frame < n_fr:
            self._frames.append(self._emit(self._next_frame))
            self._next_frame += 1
        coeffs = (np.stack(self._frames, axis=1) if self._frames
                  else np.zeros((self._m, 0), dtype=np.complex128))
        self._finalized = STFTResult(
            coefficients=coeffs,
            window=self._g.copy(),
            hop=self._hop,
            n_fft=self._m,
            convention=self._convention,
            signal_length=self._received,
        )
        self._buf = np.zeros(0, dtype=np.complex128)
        self._frames = []
        return self._finalized

    # -- reference shortcut -----------------------------------------------
    @staticmethod
    def block_reference(s: np.ndarray, window: np.ndarray, hop: int,
                        n_fft: int | None = None,
                        convention: Convention = "time_invariant",
                        ) -> STFTResult:
        """The block transform this class is equivalent to (thin alias of
        :func:`repro.signal.stft.stft`, kept here so equivalence tests
        and benchmarks name their oracle explicitly)."""
        return stft(s, window, hop, n_fft=n_fft, convention=convention)

"""repro — Robust Convex Relaxations for diverse QoS in next-generation
wireless systems.

A from-scratch reproduction of Chan, Krunz & Griffin (ICDCS 2021):
the RCR framework (:mod:`repro.core`) and every substrate it depends on —
numerics (:mod:`repro.numerics`), linear algebra (:mod:`repro.linalg`),
signal processing with explicit STFT phase conventions
(:mod:`repro.signal`), convex optimization (:mod:`repro.convex`), MINLP
(:mod:`repro.minlp`), particle swarms (:mod:`repro.pso`), neural networks
(:mod:`repro.nn`), robustness verification (:mod:`repro.verify`), and 5G
QoS workloads (:mod:`repro.qos`).

Quickstart::

    from repro.core import run_rcr_stack
    report = run_rcr_stack()
    for stage in report.stages:
        print(stage.name, stage.metrics)
"""

__version__ = "1.0.0"

from repro import exceptions

__all__ = ["exceptions", "__version__"]

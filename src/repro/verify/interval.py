"""Interval bound propagation (IBP) — the loosest, cheapest relaxation.

IBP is grade ``INTERVAL`` on the paper's relaxation ladder: sound (never
a false positive for robustness) but loose, so its "effectiveness (i.e.,
false negative rate) degrades quickly" as eps grows — exactly the §II-B-2
trade-off the VERIF benchmark measures.  Bounds propagate through affine
layers via the center/radius form and through monotone activations
endpoint-wise.  The per-layer bounds are also the pre-activation boxes
the LP and exact verifiers consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import VerificationError
from repro.nn.layers import BatchNorm, Dense, Layer, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.network import Sequential
from repro.numerics.stable_ops import stable_sigmoid

__all__ = ["LayerBounds", "propagate_intervals", "ibp_output_bounds", "ibp_margin_lower_bound"]


@dataclass(frozen=True)
class LayerBounds:
    """Elementwise lower/upper bounds at one point in the network."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self):
        lo = np.asarray(self.lower, dtype=np.float64).ravel()
        hi = np.asarray(self.upper, dtype=np.float64).ravel()
        if lo.shape != hi.shape:
            raise VerificationError("bound shape mismatch")
        if np.any(lo > hi + 1e-12):
            raise VerificationError("lower bound exceeds upper bound")
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", hi)

    @property
    def width(self) -> np.ndarray:
        return self.upper - self.lower

    def mean_width(self) -> float:
        return float(np.mean(self.width)) if self.width.size else 0.0


def _affine_bounds(w: np.ndarray, b: np.ndarray, bounds: LayerBounds) -> LayerBounds:
    """Bounds of ``x W + b`` via the center/radius (Lipschitz) form."""
    center = 0.5 * (bounds.lower + bounds.upper)
    radius = 0.5 * (bounds.upper - bounds.lower)
    out_center = center @ w + b
    out_radius = radius @ np.abs(w)
    return LayerBounds(out_center - out_radius, out_center + out_radius)


def _monotone_bounds(fn, bounds: LayerBounds) -> LayerBounds:
    return LayerBounds(fn(bounds.lower), fn(bounds.upper))


def propagate_intervals(net: Sequential, input_bounds: LayerBounds) -> List[LayerBounds]:
    """Propagate bounds through a Sequential of Dense + monotone layers.

    Returns bounds *after every layer*, with ``result[0]`` the input
    bounds, so ``result[i+1]`` corresponds to ``net.layers[i]``.
    """
    out: List[LayerBounds] = [input_bounds]
    cur = input_bounds
    for layer in net.layers:
        if isinstance(layer, Dense):
            cur = _affine_bounds(layer.w, layer.b, cur)
        elif isinstance(layer, ReLU):
            cur = _monotone_bounds(lambda v: np.maximum(v, 0.0), cur)
        elif isinstance(layer, LeakyReLU):
            slope = layer.slope
            cur = _monotone_bounds(lambda v: np.where(v > 0, v, slope * v), cur)
        elif isinstance(layer, Tanh):
            cur = _monotone_bounds(np.tanh, cur)
        elif isinstance(layer, Sigmoid):
            cur = _monotone_bounds(stable_sigmoid, cur)
        elif isinstance(layer, BatchNorm):
            # eval-mode batchnorm is affine with a diagonal matrix
            scale = layer.gamma / np.sqrt(layer.running_var + layer.eps)
            shift = layer.beta - layer.running_mean * scale
            w = np.diag(scale)
            cur = _affine_bounds(w, shift, cur)
        else:
            raise VerificationError(
                f"IBP does not support layer type {type(layer).__name__}"
            )
        out.append(cur)
    return out


def ibp_output_bounds(net: Sequential, x0: np.ndarray, eps: float) -> LayerBounds:
    """Output bounds over the L-inf eps-ball around ``x0``."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    bounds = LayerBounds(x0 - eps, x0 + eps)
    return propagate_intervals(net, bounds)[-1]


def ibp_margin_lower_bound(net: Sequential, x0: np.ndarray, eps: float,
                           c: np.ndarray, d: float = 0.0) -> float:
    """Sound lower bound on ``min over ball of c^T f(x) + d``."""
    out = ibp_output_bounds(net, x0, eps)
    c = np.asarray(c, dtype=np.float64).ravel()
    pos = np.maximum(c, 0.0)
    neg = np.minimum(c, 0.0)
    return float(pos @ out.lower + neg @ out.upper + d)

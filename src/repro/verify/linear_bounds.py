"""CROWN-style backward linear bound propagation.

Grade ``LINEAR`` on the relaxation ladder, strictly tighter than IBP: the
output property is bounded by an *affine function of the input*, obtained
by propagating a linear form backwards through the network and replacing
each unstable ReLU with the triangle relaxation of
:func:`repro.convex.envelopes.relu_envelope` (choosing the lower or upper
face per the sign of the incoming coefficient).

Two modes:

* ``method='crown-ibp'`` — pre-activation boxes from IBP (fast);
* ``method='crown'`` — pre-activation boxes computed recursively with
  backward bounding per layer (tighter; the "bound tightening for each
  successive neural network layer" of the paper's abstract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import VerificationError
from repro.kernels.backend import resolve_backend
from repro.kernels.propagation import crown_preactivation_fast
from repro.nn.layers import Dense, LeakyReLU, ReLU
from repro.nn.network import Sequential
from repro.verify.interval import LayerBounds, propagate_intervals

__all__ = [
    "crown_margin_lower_bound",
    "crown_preactivation_bounds",
    "crown_input_linear_form",
    "extract_affine_relu_stack",
]


@dataclass(frozen=True)
class _AffineStage:
    """One (Dense, activation) pair; activation may be None at the end."""

    w: np.ndarray
    b: np.ndarray
    act_slope: float | None  # None = no activation; 0.0 = ReLU; s = LeakyReLU(s)


def extract_affine_relu_stack(net: Sequential) -> List[_AffineStage]:
    """Validate the network is an alternating Dense/(Leaky)ReLU stack and
    return it in stage form.  Raises for unsupported layouts."""
    stages: List[_AffineStage] = []
    layers = list(net.layers)
    i = 0
    while i < len(layers):
        layer = layers[i]
        if not isinstance(layer, Dense):
            raise VerificationError(
                f"CROWN expects Dense layers (got {type(layer).__name__} at {i})"
            )
        slope: float | None = None
        if i + 1 < len(layers):
            nxt = layers[i + 1]
            if isinstance(nxt, ReLU):
                slope = 0.0
                i += 1
            elif isinstance(nxt, LeakyReLU):
                slope = nxt.slope
                i += 1
            elif isinstance(nxt, Dense):
                slope = None
            else:
                raise VerificationError(
                    f"CROWN supports ReLU/LeakyReLU activations, got {type(nxt).__name__}"
                )
        stages.append(_AffineStage(layer.w, layer.b, slope))
        i += 1
    return stages


def _relu_relaxation(lo: np.ndarray, hi: np.ndarray, leaky: float) -> tuple:
    """Per-neuron linear relaxation of (leaky-)ReLU on [lo, hi].

    Returns ``(lower_slope, lower_intercept, upper_slope, upper_intercept)``.
    """
    n = lo.size
    ls = np.empty(n)
    li = np.zeros(n)
    us = np.empty(n)
    ui = np.zeros(n)
    active = lo >= 0.0
    inactive = hi <= 0.0
    unstable = ~(active | inactive)
    ls[active] = us[active] = 1.0
    ls[inactive] = us[inactive] = leaky
    if np.any(unstable):
        l_u = lo[unstable]
        h_u = hi[unstable]
        # upper face: chord from (l, leaky*l) to (h, h)
        slope = (h_u - leaky * l_u) / (h_u - l_u)  # numlint: disable=NL002 -- unstable neurons satisfy l < 0 < h, so h - l > 0
        us[unstable] = slope
        ui[unstable] = leaky * l_u - slope * l_u
        # lower face: the adaptive CROWN choice between slope `leaky` and 1
        pick_one = h_u >= -l_u
        low_slope = np.where(pick_one, 1.0, leaky)
        ls[unstable] = low_slope
        li[unstable] = 0.0
    return ls, li, us, ui


def _backward_form(
    stages: List[_AffineStage],
    pre_bounds: List[Tuple[np.ndarray, np.ndarray]],
    upto: int,
    c: np.ndarray,
    d: float,
) -> Tuple[np.ndarray, float]:
    """Affine under-estimator of ``c^T z_upto + d`` as a function of the
    input: returns ``(a, offset)`` with ``c^T z_upto + d >= a^T x + offset``
    over the region the pre-activation bounds describe."""
    a = c.copy()
    offset = d
    # backward through stages upto..0; at stage k the linear form applies
    # to the *pre-activation* z_k = h_{k-1} W_k + b_k where h is the
    # post-activation of the previous stage.
    for k in range(upto, -1, -1):
        stage = stages[k]
        # absorb the affine layer: form becomes a^T (h W + b)
        offset += float(a @ stage.b)
        a = stage.w @ a  # now acts on h_{k-1} (post-activation of k-1)
        if k == 0:
            break
        prev = stages[k - 1]
        if prev.act_slope is None:
            # previous stage output is its pre-activation; continue
            continue
        lo, hi = pre_bounds[k - 1]
        ls, li, us, ui = _relu_relaxation(lo, hi, prev.act_slope)
        pos = a >= 0
        slope = np.where(pos, ls, us)
        intercept = np.where(pos, li, ui)
        offset += float(a @ intercept)
        a = a * slope
    return a, offset


def _backward_bound(
    stages: List[_AffineStage],
    pre_bounds: List[Tuple[np.ndarray, np.ndarray]],
    upto: int,
    c: np.ndarray,
    d: float,
    x_lo: np.ndarray,
    x_hi: np.ndarray,
) -> float:
    """Concretized lower bound of ``c^T z_upto + d`` over the input box."""
    a, offset = _backward_form(stages, pre_bounds, upto, c, d)
    pos = np.maximum(a, 0.0)
    neg = np.minimum(a, 0.0)
    return float(pos @ x_lo + neg @ x_hi + offset)


def crown_input_linear_form(
    net: Sequential, x0: np.ndarray, eps: float, c: np.ndarray, d: float = 0.0,
    method: str = "crown",
) -> Tuple[np.ndarray, float]:
    """Affine under-estimator ``a^T x + offset <= c^T f(x) + d`` valid on
    the eps-ball.  Its exact minimizer over the ball,
    ``x0 - eps * sign(a)``, is the relaxation-guided adversarial example
    used by convex-relaxation adversarial training."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    stages = extract_affine_relu_stack(net)
    if stages[-1].act_slope is not None:
        raise VerificationError("CROWN property bounding expects a linear output layer")
    pre = crown_preactivation_bounds(net, x0, eps, method=method)
    c = np.asarray(c, dtype=np.float64).ravel()
    return _backward_form(stages, pre, len(stages) - 1, c, d)


def crown_preactivation_bounds(
    net: Sequential, x0: np.ndarray, eps: float, method: str = "crown",
    backend: Optional[str] = None,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Pre-activation bounds for every stage.

    ``method='crown-ibp'`` reads them off interval propagation;
    ``method='crown'`` recomputes each layer's box with backward linear
    bounding (tighter, quadratically more expensive).  For the latter,
    the default ``backend="vectorized"`` bounds all neurons of a layer
    in one ``[I; -I]`` matrix backward pass
    (:func:`repro.kernels.propagation.crown_preactivation_fast`);
    ``backend="reference"`` keeps the original per-neuron recursion.
    """
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    x_lo, x_hi = x0 - eps, x0 + eps
    stages = extract_affine_relu_stack(net)
    if method not in ("crown", "crown-ibp"):
        raise VerificationError(f"unknown CROWN method {method!r}")

    if method == "crown" and resolve_backend(backend) == "vectorized":
        return crown_preactivation_fast(net, x_lo, x_hi)

    if method == "crown-ibp":
        all_bounds = propagate_intervals(net, LayerBounds(x_lo, x_hi))
        # map: pre-activation of stage k is the output of its Dense layer
        pre: List[Tuple[np.ndarray, np.ndarray]] = []
        idx = 0
        for layer_bounds, layer in zip(all_bounds[1:], net.layers):
            if isinstance(layer, Dense):
                pre.append((layer_bounds.lower, layer_bounds.upper))
        return pre

    pre = []
    for k, stage in enumerate(stages):
        n_out = stage.b.size
        lo = np.empty(n_out)
        hi = np.empty(n_out)
        for j in range(n_out):
            e = np.zeros(n_out)
            e[j] = 1.0
            lo[j] = _backward_bound(stages, pre, k, e, 0.0, x_lo, x_hi)
            hi[j] = -_backward_bound(stages, pre, k, -e, 0.0, x_lo, x_hi)
        pre.append((lo, hi))
    return pre


def crown_margin_lower_bound(
    net: Sequential, x0: np.ndarray, eps: float, c: np.ndarray, d: float = 0.0,
    method: str = "crown",
) -> float:
    """Sound lower bound on ``min over ball of c^T f(x) + d`` by backward
    linear relaxation."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    x_lo, x_hi = x0 - eps, x0 + eps
    stages = extract_affine_relu_stack(net)
    if stages[-1].act_slope is not None:
        raise VerificationError("CROWN property bounding expects a linear output layer")
    pre = crown_preactivation_bounds(net, x0, eps, method=method)
    c = np.asarray(c, dtype=np.float64).ravel()
    return _backward_bound(stages, pre, len(stages) - 1, c, d, x_lo, x_hi)

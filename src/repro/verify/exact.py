"""Exact (complete) robustness verification by big-M MILP.

The exact-verifier class of §II-B-2: "predicated upon Mixed Integer
Programming ... by definition, these exact verifiers are not beset by
false positives or false negatives, but they must contend with resolving
NP-hard optimization problems, which in turn obviates their scalability."

Each *unstable* ReLU gets a binary activation indicator with big-M
constraints derived from its pre-activation box; stable neurons stay
linear.  The MILP is minimized with this library's branch-and-bound, so
the exponential blow-up the paper warns about is directly measurable
(VERIF benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import VerificationError
from repro.minlp.milp import solve_milp
from repro.minlp.model import MILPModel
from repro.convex.problem import LPProblem
from repro.nn.network import Sequential
from repro.verify.linear_bounds import crown_preactivation_bounds, extract_affine_relu_stack

__all__ = ["ExactResult", "exact_margin_bound"]


@dataclass(frozen=True)
class ExactResult:
    """Exact verification outcome."""

    margin: float
    x_worst: np.ndarray | None
    nodes_explored: int
    converged: bool
    n_binaries: int


def exact_margin_bound(
    net: Sequential,
    x0: np.ndarray,
    eps: float,
    c: np.ndarray,
    d: float = 0.0,
    max_nodes: int = 20000,
    time_limit: float = float("inf"),
) -> ExactResult:
    """Exactly minimize ``c^T f(x) + d`` over the eps-ball (pure-ReLU
    stacks with a linear output layer only)."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    stages = extract_affine_relu_stack(net)
    if stages[-1].act_slope is not None:
        raise VerificationError("exact verifier expects a linear output layer")
    for s in stages[:-1]:
        if s.act_slope not in (0.0, None):
            raise VerificationError("exact verifier supports pure-ReLU stacks only")
    pre = crown_preactivation_bounds(net, x0, eps, method="crown")

    # variables: [x, (z_k, h_k, a_k unstable binaries)..., z_last]
    n_in = x0.size
    offsets = {"x": 0}
    total = n_in
    binaries: list[int] = []
    unstable_info: list[tuple[int, int, float, float]] = []  # (stage, neuron, l, u)
    for k, stage in enumerate(stages):
        m = stage.b.size
        offsets[f"z{k}"] = total
        total += m
        if stage.act_slope is not None:
            offsets[f"h{k}"] = total
            total += m
    # binaries appended at the end
    for k, stage in enumerate(stages):
        if stage.act_slope is None:
            continue
        lo_k, hi_k = pre[k]
        for j in range(stage.b.size):
            l, u = float(lo_k[j]), float(hi_k[j])
            if l < 0.0 < u:
                offsets.setdefault(f"a{k}", total)
                unstable_info.append((k, j, l, u))
                binaries.append(total)
                total += 1

    lo = np.full(total, -np.inf)
    hi = np.full(total, np.inf)
    lo[:n_in] = x0 - eps
    hi[:n_in] = x0 + eps
    for k, stage in enumerate(stages):
        z_off = offsets[f"z{k}"]
        m = stage.b.size
        lo[z_off : z_off + m] = pre[k][0]
        hi[z_off : z_off + m] = pre[k][1]
        if stage.act_slope is not None:
            h_off = offsets[f"h{k}"]
            lo[h_off : h_off + m] = 0.0
            hi[h_off : h_off + m] = np.maximum(pre[k][1], 0.0)
    for b_idx in binaries:
        lo[b_idx] = 0.0
        hi[b_idx] = 1.0

    eq_rows, eq_rhs, ineq_rows, ineq_rhs = [], [], [], []
    prev_off, prev_dim = offsets["x"], n_in
    bin_cursor = 0
    for k, stage in enumerate(stages):
        z_off = offsets[f"z{k}"]
        m = stage.b.size
        for j in range(m):
            row = np.zeros(total)
            row[prev_off : prev_off + prev_dim] = stage.w[:, j]
            row[z_off + j] = -1.0
            eq_rows.append(row)
            eq_rhs.append(-float(stage.b[j]))
        if stage.act_slope is None:
            prev_off, prev_dim = z_off, m
            continue
        h_off = offsets[f"h{k}"]
        lo_k, hi_k = pre[k]
        for j in range(m):
            l, u = float(lo_k[j]), float(hi_k[j])
            if l >= 0.0:
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -1.0
                eq_rows.append(row)
                eq_rhs.append(0.0)
            elif u <= 0.0:
                row = np.zeros(total)
                row[h_off + j] = 1.0
                eq_rows.append(row)
                eq_rhs.append(0.0)
            else:
                a_idx = binaries[bin_cursor]
                bin_cursor += 1
                # h >= z            -> z - h <= 0
                row = np.zeros(total)
                row[z_off + j] = 1.0
                row[h_off + j] = -1.0
                ineq_rows.append(row)
                ineq_rhs.append(0.0)
                # h <= z - l (1-a)  -> h - z - l a <= -l
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -1.0
                row[a_idx] = -l
                ineq_rows.append(row)
                ineq_rhs.append(-l)
                # h <= u a          -> h - u a <= 0
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[a_idx] = -u
                ineq_rows.append(row)
                ineq_rhs.append(0.0)
        prev_off, prev_dim = h_off, m

    c = np.asarray(c, dtype=np.float64).ravel()
    obj = np.zeros(total)
    z_last = offsets[f"z{len(stages) - 1}"]
    obj[z_last : z_last + stages[-1].b.size] = c

    lp = LPProblem(
        c=obj,
        g=np.asarray(ineq_rows) if ineq_rows else None,
        h=np.asarray(ineq_rhs) if ineq_rhs else None,
        a=np.asarray(eq_rows),
        b=np.asarray(eq_rhs),
        lo=lo,
        hi=hi,
    )
    model = MILPModel(lp, frozenset(binaries))
    res = solve_milp(model, max_nodes=max_nodes, time_limit=time_limit)
    x_worst = res.x[:n_in] if res.x is not None else None
    margin = res.objective + d if res.x is not None else res.lower_bound + d
    return ExactResult(
        margin=float(margin),
        x_worst=x_worst,
        nodes_explored=res.nodes_explored,
        converged=res.converged,
        n_binaries=len(binaries),
    )

"""Adversarial attacks and convex-relaxation adversarial training.

The paper's RCR paradigm trains the MSY3I with "convex relaxation
adversarial training ... to improve the bound tightening for each
successive neural network layer" (Abstract).  We implement:

* gradient attacks — FGSM and PGD — the empirical (incomplete-attack)
  side of robustness;
* relaxation-guided attacks — the exact minimizer of the CROWN affine
  under-estimator of the margin, obtained in closed form;
* :class:`RobustTrainer` — trains a Dense/ReLU classifier with standard,
  PGD, or relaxation-guided adversarial examples, so the TIGHT benchmark
  can compare certified bounds across training regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Literal

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Adam, Sequential, softmax_cross_entropy
from repro.verify.linear_bounds import crown_input_linear_form, crown_margin_lower_bound

TrainMode = Literal["standard", "pgd", "relaxation"]

__all__ = [
    "margin_input_gradient",
    "fgsm_attack",
    "pgd_attack",
    "relaxation_guided_attack",
    "RobustTrainer",
    "make_two_moons",
    "certified_radius",
]


def margin_input_gradient(net: Sequential, x: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Gradient of ``c^T f(x)`` with respect to the input ``x`` (1-D)."""
    x = np.asarray(x, dtype=np.float64).reshape(1, -1)
    net.forward(x, training=True)
    grad = net.backward(np.asarray(c, dtype=np.float64).reshape(1, -1))
    return grad.ravel()


def fgsm_attack(net: Sequential, x0: np.ndarray, eps: float, c: np.ndarray) -> np.ndarray:
    """One-step sign attack minimizing the margin ``c^T f(x)``."""
    g = margin_input_gradient(net, x0, c)
    return np.asarray(x0, dtype=np.float64).ravel() - eps * np.sign(g)


def pgd_attack(net: Sequential, x0: np.ndarray, eps: float, c: np.ndarray,
               steps: int = 20, step_size: float | None = None) -> np.ndarray:
    """Projected gradient descent on the margin within the eps-ball."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    step_size = step_size if step_size is not None else 2.5 * eps / max(steps, 1)
    x = x0.copy()
    for _ in range(steps):
        g = margin_input_gradient(net, x, c)
        x = x - step_size * np.sign(g)
        x = np.clip(x, x0 - eps, x0 + eps)
    return x


def relaxation_guided_attack(net: Sequential, x0: np.ndarray, eps: float,
                             c: np.ndarray, method: str = "crown-ibp") -> np.ndarray:
    """Closed-form minimizer of the CROWN affine under-estimator of the
    margin — the convex-relaxation adversarial example."""
    a, _offset = crown_input_linear_form(net, x0, eps, c, method=method)
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    return np.where(a > 0, x0 - eps, np.where(a < 0, x0 + eps, x0))


def make_two_moons(n: int, noise: float = 0.1, rng: np.random.Generator | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-circles — the classification workload for
    robust-training experiments."""
    rng = rng or np.random.default_rng(0)
    n1 = n // 2
    n2 = n - n1
    t1 = np.pi * rng.random(n1)
    t2 = np.pi * rng.random(n2)
    x1 = np.stack([np.cos(t1), np.sin(t1)], axis=1)
    x2 = np.stack([1.0 - np.cos(t2), 0.5 - np.sin(t2)], axis=1)
    x = np.concatenate([x1, x2], axis=0) + noise * rng.standard_normal((n, 2))
    y = np.concatenate([np.zeros(n1, dtype=int), np.ones(n2, dtype=int)])
    perm = rng.permutation(n)
    return x[perm], y[perm]


def certified_radius(net: Sequential, x0: np.ndarray, true_label: int, n_classes: int,
                     bound_fn: Callable[[Sequential, np.ndarray, float, np.ndarray], float],
                     eps_hi: float = 1.0, iters: int = 20) -> float:
    """Largest eps (by bisection) at which ``bound_fn`` certifies every
    pairwise margin of ``true_label`` positive."""
    others = [k for k in range(n_classes) if k != true_label]

    def certified(eps: float) -> bool:
        for other in others:
            c = np.zeros(n_classes)
            c[true_label] = 1.0
            c[other] = -1.0
            if bound_fn(net, x0, eps, c) <= 0.0:
                return False
        return True

    if not certified(0.0):
        return 0.0
    lo, hi = 0.0, eps_hi
    if certified(hi):
        return hi
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if certified(mid):
            lo = mid
        else:
            hi = mid
    return lo


@dataclass
class RobustTrainer:
    """Trains a small Dense/ReLU classifier under a chosen regime.

    ``mode='relaxation'`` replaces each training input by its
    relaxation-guided adversarial example (convex relaxation adversarial
    training); ``'pgd'`` uses iterative gradient attacks; ``'standard'``
    trains on clean data.
    """

    hidden: int = 16
    depth: int = 2
    n_classes: int = 2
    mode: TrainMode = "standard"
    eps_train: float = 0.1
    lr: float = 1e-2
    seed: int = 0
    net: Sequential = field(init=False)
    losses: List[float] = field(default_factory=list)

    def __post_init__(self):
        if self.mode not in ("standard", "pgd", "relaxation"):
            raise ConfigurationError(f"unknown training mode {self.mode!r}")
        rng = np.random.default_rng(self.seed)
        layers: list = []
        d_in = 2
        for _ in range(self.depth):
            layers.append(Dense(d_in, self.hidden, rng=rng))
            layers.append(ReLU())
            d_in = self.hidden
        layers.append(Dense(d_in, self.n_classes, rng=rng))
        self.net = Sequential(layers)
        self._opt = Adam(self.net, lr=self.lr, beta1=0.9)

    def _adversarialize(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.mode == "standard":
            return x
        out = x.copy()
        for i in range(x.shape[0]):
            true = int(y[i])
            other = (true + 1) % self.n_classes
            c = np.zeros(self.n_classes)
            c[true] = 1.0
            c[other] = -1.0
            if self.mode == "pgd":
                out[i] = pgd_attack(self.net, x[i], self.eps_train, c, steps=7)
            else:
                out[i] = relaxation_guided_attack(self.net, x[i], self.eps_train, c)
        return out

    def train(self, x: np.ndarray, y: np.ndarray, epochs: int = 50,
              batch_size: int = 32) -> List[float]:
        rng = np.random.default_rng(self.seed + 1)
        n = x.shape[0]
        for _ in range(epochs):
            perm = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = perm[start : start + batch_size]
                xb = self._adversarialize(x[idx], y[idx])
                logits = self.net.forward(xb, training=True)
                loss, grad = softmax_cross_entropy(logits, y[idx])
                self.net.backward(grad)
                self._opt.step()
                self.losses.append(loss)
        return self.losses

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        logits = self.net.forward(np.asarray(x, dtype=np.float64), training=False)
        return float(np.mean(np.argmax(logits, axis=1) == y))

    def mean_certified_radius(self, x: np.ndarray, y: np.ndarray,
                              n_points: int = 20, eps_hi: float = 0.5) -> float:
        """Average CROWN-certified radius over (a subset of) the data —
        the TIGHT benchmark's headline metric."""
        bound = lambda net, x0, eps, c: crown_margin_lower_bound(net, x0, eps, c, method="crown-ibp")
        radii = []
        for i in range(min(n_points, x.shape[0])):
            radii.append(certified_radius(self.net, x[i], int(y[i]), self.n_classes,
                                          bound, eps_hi=eps_hi, iters=12))
        return float(np.mean(radii))

"""Robustness specifications for neural-network verification.

A specification is an eps-ball around an input plus a linear property of
the output that must hold everywhere in the ball — the standard local
robustness query both the exact and relaxed verifiers of §II-B-2 answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError

__all__ = ["RobustnessSpec", "classification_spec"]


@dataclass(frozen=True)
class RobustnessSpec:
    """Verify ``c^T f(x) + d > 0`` for all ``x`` in the L-inf eps-ball.

    Attributes
    ----------
    x0:
        Center input (1-D feature vector).
    eps:
        L-infinity perturbation radius.
    c, d:
        The linear output property; for classification margins ``c``
        selects ``logit[true] - logit[other]``.
    """

    x0: np.ndarray
    eps: float
    c: np.ndarray
    d: float = 0.0

    def __post_init__(self):
        x0 = np.asarray(self.x0, dtype=np.float64).ravel()
        c = np.asarray(self.c, dtype=np.float64).ravel()
        if self.eps < 0:
            raise ConfigurationError("eps must be nonnegative")
        object.__setattr__(self, "x0", x0)
        object.__setattr__(self, "c", c)
        object.__setattr__(self, "d", float(self.d))

    @property
    def input_dim(self) -> int:
        return self.x0.size

    def input_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.x0 - self.eps, self.x0 + self.eps

    def margin(self, output: np.ndarray) -> float:
        """Property value at a concrete output; > 0 means satisfied."""
        output = np.asarray(output, dtype=np.float64).ravel()
        if output.size != self.c.size:
            raise DimensionError(f"output dim {output.size} != property dim {self.c.size}")
        return float(self.c @ output + self.d)


def classification_spec(x0: np.ndarray, eps: float, true_label: int,
                        other_label: int, n_classes: int) -> RobustnessSpec:
    """Margin spec: ``logit[true] - logit[other] > 0`` over the ball."""
    if not (0 <= true_label < n_classes and 0 <= other_label < n_classes):
        raise ConfigurationError("labels out of range")
    if true_label == other_label:
        raise ConfigurationError("true and other labels must differ")
    c = np.zeros(n_classes)
    c[true_label] = 1.0
    c[other_label] = -1.0
    return RobustnessSpec(x0=x0, eps=eps, c=c)

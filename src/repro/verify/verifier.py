"""Unified verification harness: the paper's hybrid exact/relaxed vector.

§II-B-2 verifies the MSY3I with "a hybridized approach vector ...
(1) exact (complete), and (2) relaxed (incomplete)" and frames the
trade-off through false-negative rates.  :func:`verify` dispatches one
spec to one method; :func:`compare_verifiers` runs the whole ladder and
computes the agreement/false-negative statistics the VERIF benchmark
prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Literal

import numpy as np

from repro.exceptions import VerificationError
from repro.convex.relaxation import RelaxationGrade
from repro.nn.network import Sequential
from repro.verify.exact import exact_margin_bound
from repro.verify.interval import ibp_margin_lower_bound
from repro.verify.linear_bounds import crown_margin_lower_bound
from repro.verify.lp_relax import lp_margin_lower_bound
from repro.verify.specs import RobustnessSpec

Method = Literal["ibp", "crown-ibp", "crown", "lp", "exact"]

METHOD_GRADES: Dict[str, RelaxationGrade] = {
    "ibp": RelaxationGrade.INTERVAL,
    "crown-ibp": RelaxationGrade.LINEAR,
    "crown": RelaxationGrade.LINEAR,
    "lp": RelaxationGrade.LINEAR,
    "exact": RelaxationGrade.EXACT,
}

__all__ = ["VerificationResult", "verify", "compare_verifiers", "false_negative_rate", "METHOD_GRADES"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one (spec, method) verification query.

    ``verified`` means the method *proved* the property; for relaxed
    methods ``verified=False`` may be a false negative (property true but
    bound too loose), never a false positive.
    """

    method: str
    verified: bool
    margin_lower_bound: float
    wall_time: float
    complete: bool

    @property
    def grade(self) -> RelaxationGrade:
        return METHOD_GRADES[self.method]


def verify(net: Sequential, spec: RobustnessSpec, method: Method = "crown",
           max_nodes: int = 20000, time_limit: float = float("inf")) -> VerificationResult:
    """Verify one robustness spec with one method of the ladder."""
    if method not in METHOD_GRADES:
        raise VerificationError(f"unknown method {method!r}; choose from {sorted(METHOD_GRADES)}")
    start = time.perf_counter()
    complete = method == "exact"
    if method == "ibp":
        bound = ibp_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d)
    elif method == "crown-ibp":
        bound = crown_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d, method="crown-ibp")
    elif method == "crown":
        bound = crown_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d, method="crown")
    elif method == "lp":
        bound = lp_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d)
    else:
        res = exact_margin_bound(net, spec.x0, spec.eps, spec.c, spec.d,
                                 max_nodes=max_nodes, time_limit=time_limit)
        bound = res.margin
        complete = res.converged
    return VerificationResult(
        method=method,
        verified=bound > 0.0,
        margin_lower_bound=float(bound),
        wall_time=time.perf_counter() - start,
        complete=complete,
    )


def compare_verifiers(net: Sequential, specs: List[RobustnessSpec],
                      methods: tuple = ("ibp", "crown-ibp", "crown", "lp", "exact"),
                      max_nodes: int = 20000) -> Dict[str, List[VerificationResult]]:
    """Run every method on every spec.  Returns method -> results."""
    out: Dict[str, List[VerificationResult]] = {m: [] for m in methods}
    for spec in specs:
        for m in methods:
            out[m].append(verify(net, spec, method=m, max_nodes=max_nodes))
    return out


def false_negative_rate(relaxed: List[VerificationResult],
                        exact: List[VerificationResult]) -> float:
    """Fraction of specs the exact verifier proves but the relaxed method
    misses — the §II-B-2 "effectiveness degrades" metric.

    Returns 0.0 when the exact verifier proves nothing (no denominators).
    """
    if len(relaxed) != len(exact):
        raise VerificationError("result lists must align")
    proven = [e.verified for e in exact]
    n_proven = sum(proven)
    if n_proven == 0:
        return 0.0
    missed = sum(1 for r, e in zip(relaxed, exact) if e.verified and not r.verified)
    return missed / n_proven

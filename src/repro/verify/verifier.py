"""Unified verification harness: the paper's hybrid exact/relaxed vector.

§II-B-2 verifies the MSY3I with "a hybridized approach vector ...
(1) exact (complete), and (2) relaxed (incomplete)" and frames the
trade-off through false-negative rates.  :func:`verify` dispatches one
spec to one method; :func:`compare_verifiers` runs the whole ladder and
computes the agreement/false-negative statistics the VERIF benchmark
prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NumericalInstabilityError, VerificationError
from repro.convex.relaxation import RelaxationGrade
from repro.nn.network import Sequential
from repro.obs import MARGIN_BUCKETS, get_metrics, get_tracer
from repro.resilience import (
    Budget,
    BudgetReport,
    CircuitBreaker,
    LadderResult,
    RetryPolicy,
    Rung,
    run_ladder,
)
from repro.verify.exact import exact_margin_bound
from repro.verify.interval import ibp_margin_lower_bound
from repro.verify.linear_bounds import crown_margin_lower_bound
from repro.verify.lp_relax import lp_margin_lower_bound
from repro.verify.specs import RobustnessSpec

Method = Literal["ibp", "crown-ibp", "crown", "lp", "exact"]

METHOD_GRADES: Dict[str, RelaxationGrade] = {
    "ibp": RelaxationGrade.INTERVAL,
    "crown-ibp": RelaxationGrade.LINEAR,
    "crown": RelaxationGrade.LINEAR,
    "lp": RelaxationGrade.LINEAR,
    "exact": RelaxationGrade.EXACT,
}

#: default degradation order: tightest/most certain first (§II-B-2)
VERIFICATION_FALLBACK: Tuple[str, ...] = ("exact", "lp", "crown", "ibp")

__all__ = ["VerificationResult", "ResilientVerificationResult", "verify",
           "verify_resilient", "compare_verifiers", "false_negative_rate",
           "METHOD_GRADES", "VERIFICATION_FALLBACK"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one (spec, method) verification query.

    ``verified`` means the method *proved* the property; for relaxed
    methods ``verified=False`` may be a false negative (property true but
    bound too loose), never a false positive.
    """

    method: str
    verified: bool
    margin_lower_bound: float
    wall_time: float
    complete: bool

    @property
    def grade(self) -> RelaxationGrade:
        return METHOD_GRADES[self.method]


def verify(net: Sequential, spec: RobustnessSpec, method: Method = "crown",
           max_nodes: int = 20000, time_limit: float = float("inf")) -> VerificationResult:
    """Verify one robustness spec with one method of the ladder."""
    if method not in METHOD_GRADES:
        raise VerificationError(f"unknown method {method!r}; choose from {sorted(METHOD_GRADES)}")
    start = time.perf_counter()
    complete = method == "exact"
    with get_tracer().span("verify.query", method=method) as span:
        if method == "ibp":
            bound = ibp_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d)
        elif method == "crown-ibp":
            bound = crown_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d, method="crown-ibp")
        elif method == "crown":
            bound = crown_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d, method="crown")
        elif method == "lp":
            bound = lp_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d)
        else:
            res = exact_margin_bound(net, spec.x0, spec.eps, spec.c, spec.d,
                                     max_nodes=max_nodes, time_limit=time_limit)
            bound = res.margin
            complete = res.converged
        verified = bound > 0.0
        span.set(verified=verified, margin=float(bound))
    metrics = get_metrics()
    metrics.counter("verifier.queries", method=method).inc()
    if verified:
        metrics.counter("verifier.verified", method=method).inc()
    if np.isfinite(bound):
        metrics.histogram("verifier.margin", buckets=MARGIN_BUCKETS,
                          method=method).observe(float(bound))
    return VerificationResult(
        method=method,
        verified=verified,
        margin_lower_bound=float(bound),
        wall_time=time.perf_counter() - start,
        complete=complete,
    )


@dataclass(frozen=True)
class ResilientVerificationResult:
    """A verification verdict with full degradation provenance.

    ``result`` is the answering rung's :class:`VerificationResult`;
    ``rung``/``grade`` say *which* ladder step produced it (so a caller
    knows whether it holds an exact verdict or a widened relaxation);
    ``attempts`` counts every underlying verifier call including retries;
    ``failures`` lists the rungs that failed on the way down.
    """

    result: VerificationResult
    rung: str
    rung_index: int
    grade: RelaxationGrade
    attempts: int
    failures: Tuple[Tuple[str, str], ...]
    budget: Optional[BudgetReport] = None
    rung_times: Tuple[Tuple[str, float], ...] = ()

    @property
    def verified(self) -> bool:
        return self.result.verified

    @property
    def degraded(self) -> bool:
        return self.rung_index > 0

    @property
    def complete(self) -> bool:
        """True only when the *exact* rung answered and converged — a
        degraded verdict is never complete."""
        return self.result.complete and self.rung == "exact"


def _validate_verification(value: object) -> None:
    """Reject corrupted verifier output: a non-finite margin must never
    become a silently wrong ``verified`` claim (NaN/Inf comparisons lie)."""
    assert isinstance(value, VerificationResult)
    bound = value.margin_lower_bound
    if not np.isfinite(bound) and bound != float("-inf"):
        raise NumericalInstabilityError(
            f"verifier {value.method!r} produced non-finite margin {bound!r}"
        )


def verify_resilient(
    net: Sequential,
    spec: RobustnessSpec,
    ladder: Sequence[str] = VERIFICATION_FALLBACK,
    budget: Optional[Budget] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    max_nodes: int = 20000,
    verify_fn: Optional[Callable[..., VerificationResult]] = None,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ResilientVerificationResult:
    """Verify through the *degradation* ladder: exact first, widening the
    relaxation on failure.

    Complements :meth:`repro.core.rcr.RobustConvexRelaxation.certify`
    (which escalates cheap -> exact for tightness): this runs when the
    system must *stay up* — a rung that raises, exceeds the budget, or
    returns a corrupted bound is recorded and the next (looser but
    cheaper) rung answers instead.  The loosest rung is guaranteed: it
    runs even on an exhausted budget, because IBP costs microseconds and
    a loose-but-sound answer beats none.  ``verify_fn`` is injectable so
    the chaos harness can wrap the underlying verifier.
    """
    if not ladder:
        raise VerificationError("ladder must name at least one method")
    for m in ladder:
        if m not in METHOD_GRADES:
            raise VerificationError(
                f"unknown method {m!r}; choose from {sorted(METHOD_GRADES)}")
    call = verify_fn or verify
    retry = retry or RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

    def make_solver(method: str, guaranteed: bool) -> Callable[[], VerificationResult]:
        def solve() -> VerificationResult:
            time_limit = float("inf")
            if budget is not None:
                if guaranteed:
                    budget.charge(1)  # account, but never refuse the last resort
                else:
                    budget.spend(1, context=f"verify[{method}]")
                    time_limit = budget.remaining_time
            return call(net, spec, method=method, max_nodes=max_nodes,
                        time_limit=time_limit)
        return solve

    rungs = [
        Rung(
            name=method,
            solve=make_solver(method, i == len(ladder) - 1),
            grade=METHOD_GRADES[method].name.lower(),
            retry=retry,
            guaranteed=(i == len(ladder) - 1),
        )
        for i, method in enumerate(ladder)
    ]
    res: LadderResult = run_ladder(rungs, budget=budget, breaker=breaker,
                                   validator=_validate_verification,
                                   rng=rng, sleep=sleep, name="verify")
    result = res.value
    assert isinstance(result, VerificationResult)
    return ResilientVerificationResult(
        result=result,
        rung=res.rung,
        rung_index=res.rung_index,
        grade=METHOD_GRADES[res.rung],
        attempts=res.attempts,
        failures=res.failures,
        budget=res.budget,
        rung_times=res.rung_times,
    )


def compare_verifiers(net: Sequential, specs: List[RobustnessSpec],
                      methods: tuple = ("ibp", "crown-ibp", "crown", "lp", "exact"),
                      max_nodes: int = 20000) -> Dict[str, List[VerificationResult]]:
    """Run every method on every spec.  Returns method -> results."""
    out: Dict[str, List[VerificationResult]] = {m: [] for m in methods}
    for spec in specs:
        for m in methods:
            out[m].append(verify(net, spec, method=m, max_nodes=max_nodes))
    # bound-gap quality metric: exact margin minus each relaxed margin
    # (>= 0 when the relaxation is sound; large = loose relaxation)
    if "exact" in out:
        metrics = get_metrics()
        for m in methods:
            if m == "exact":
                continue
            for relaxed_res, exact_res in zip(out[m], out["exact"]):
                gap = (exact_res.margin_lower_bound
                       - relaxed_res.margin_lower_bound)
                if np.isfinite(gap):
                    metrics.histogram("verifier.bound_gap",
                                      buckets=MARGIN_BUCKETS,
                                      method=m).observe(gap)
    return out


def false_negative_rate(relaxed: List[VerificationResult],
                        exact: List[VerificationResult]) -> float:
    """Fraction of specs the exact verifier proves but the relaxed method
    misses — the §II-B-2 "effectiveness degrades" metric.

    Returns 0.0 when the exact verifier proves nothing (no denominators).
    """
    if len(relaxed) != len(exact):
        raise VerificationError("result lists must align")
    proven = [e.verified for e in exact]
    n_proven = sum(proven)
    if n_proven == 0:
        return 0.0
    missed = sum(1 for r, e in zip(relaxed, exact) if e.verified and not r.verified)
    return missed / n_proven

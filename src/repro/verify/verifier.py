"""Unified verification harness: the paper's hybrid exact/relaxed vector.

§II-B-2 verifies the MSY3I with "a hybridized approach vector ...
(1) exact (complete), and (2) relaxed (incomplete)" and frames the
trade-off through false-negative rates.  :func:`verify` dispatches one
spec to one method; :func:`compare_verifiers` runs the whole ladder and
computes the agreement/false-negative statistics the VERIF benchmark
prints.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NumericalInstabilityError, VerificationError
from repro.convex.relaxation import RelaxationGrade
from repro.kernels.backend import resolve_backend
from repro.kernels.propagation import (
    crown_ibp_margin_batch,
    crown_margin_batch,
    ibp_margin_batch,
)
from repro.nn.network import Sequential
from repro.obs import MARGIN_BUCKETS, get_metrics, get_tracer
from repro.parallel import Executor, RelaxationCache, fingerprint, map_solve
from repro.resilience import (
    Budget,
    BudgetReport,
    CircuitBreaker,
    LadderResult,
    RetryPolicy,
    Rung,
    run_ladder,
)
from repro.verify.exact import exact_margin_bound
from repro.verify.firstorder_lp import firstorder_margin_lower_bound
from repro.verify.interval import ibp_margin_lower_bound
from repro.verify.linear_bounds import crown_margin_lower_bound
from repro.verify.lp_relax import lp_margin_lower_bound
from repro.verify.specs import RobustnessSpec

Method = Literal["ibp", "crown-ibp", "crown", "lp", "firstorder", "exact"]

METHOD_GRADES: Dict[str, RelaxationGrade] = {
    "ibp": RelaxationGrade.INTERVAL,
    "crown-ibp": RelaxationGrade.LINEAR,
    "crown": RelaxationGrade.LINEAR,
    "lp": RelaxationGrade.LINEAR,
    "firstorder": RelaxationGrade.LINEAR,
    "exact": RelaxationGrade.EXACT,
}

#: default degradation order: tightest/most certain first (§II-B-2).
#: ``firstorder`` bounds the same triangle polytope as ``lp`` via dual
#: supergradient ascent — cheaper than the simplex, certify-or-reject —
#: so it sits between the simplex LP and single-pass CROWN.
VERIFICATION_FALLBACK: Tuple[str, ...] = ("exact", "lp", "firstorder", "crown", "ibp")

#: methods with a batched kernel fast path in :func:`verify_batch`
FAST_BATCH_METHODS: Tuple[str, ...] = ("ibp", "crown-ibp", "crown")

__all__ = ["VerificationResult", "ResilientVerificationResult", "verify",
           "verify_batch", "verification_fingerprint", "verify_resilient",
           "compare_verifiers", "false_negative_rate",
           "METHOD_GRADES", "VERIFICATION_FALLBACK", "FAST_BATCH_METHODS"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one (spec, method) verification query.

    ``verified`` means the method *proved* the property; for relaxed
    methods ``verified=False`` may be a false negative (property true but
    bound too loose), never a false positive.
    """

    method: str
    verified: bool
    margin_lower_bound: float
    wall_time: float
    complete: bool

    @property
    def grade(self) -> RelaxationGrade:
        return METHOD_GRADES[self.method]


def verify(net: Sequential, spec: RobustnessSpec, method: Method = "crown",
           max_nodes: int = 20000, time_limit: float = float("inf"),
           clock: Callable[[], float] = time.perf_counter) -> VerificationResult:
    """Verify one robustness spec with one method of the ladder.

    ``clock`` is the monotonic time source for ``wall_time`` — injectable
    (e.g. :attr:`repro.resilience.Budget.clock`) so one fake clock can
    drive deterministic timing in tests; it must never be a wall-clock
    like ``time.time``, which jumps under NTP adjustment.
    """
    if method not in METHOD_GRADES:
        raise VerificationError(f"unknown method {method!r}; choose from {sorted(METHOD_GRADES)}")
    start = clock()
    complete = method == "exact"
    with get_tracer().span("verify.query", method=method) as span:
        if method == "ibp":
            bound = ibp_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d)
        elif method == "crown-ibp":
            bound = crown_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d, method="crown-ibp")
        elif method == "crown":
            bound = crown_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d, method="crown")
        elif method == "lp":
            bound = lp_margin_lower_bound(net, spec.x0, spec.eps, spec.c, spec.d)
        elif method == "firstorder":
            # certify-or-reject: an uncertified dual bound raises
            # CertificationError, failing this rung so the ladder descends
            bound = firstorder_margin_lower_bound(net, spec.x0, spec.eps,
                                                  spec.c, spec.d)
        else:
            res = exact_margin_bound(net, spec.x0, spec.eps, spec.c, spec.d,
                                     max_nodes=max_nodes, time_limit=time_limit)
            bound = res.margin
            complete = res.converged
        verified = bound > 0.0
        span.set(verified=verified, margin=float(bound))
    metrics = get_metrics()
    metrics.counter("verifier.queries", method=method).inc()
    if verified:
        metrics.counter("verifier.verified", method=method).inc()
    if np.isfinite(bound):
        metrics.histogram("verifier.margin", buckets=MARGIN_BUCKETS,
                          method=method).observe(float(bound))
    return VerificationResult(
        method=method,
        verified=verified,
        margin_lower_bound=float(bound),
        wall_time=clock() - start,
        complete=complete,
    )


@dataclass(frozen=True)
class ResilientVerificationResult:
    """A verification verdict with full degradation provenance.

    ``result`` is the answering rung's :class:`VerificationResult`;
    ``rung``/``grade`` say *which* ladder step produced it (so a caller
    knows whether it holds an exact verdict or a widened relaxation);
    ``attempts`` counts every underlying verifier call including retries;
    ``failures`` lists the rungs that failed on the way down.
    """

    result: VerificationResult
    rung: str
    rung_index: int
    grade: RelaxationGrade
    attempts: int
    failures: Tuple[Tuple[str, str], ...]
    budget: Optional[BudgetReport] = None
    rung_times: Tuple[Tuple[str, float], ...] = ()

    @property
    def verified(self) -> bool:
        return self.result.verified

    @property
    def degraded(self) -> bool:
        return self.rung_index > 0

    @property
    def complete(self) -> bool:
        """True only when the *exact* rung answered and converged — a
        degraded verdict is never complete."""
        return self.result.complete and self.rung == "exact"


def _validate_verification(value: object) -> None:
    """Reject corrupted verifier output: a non-finite margin must never
    become a silently wrong ``verified`` claim (NaN/Inf comparisons lie)."""
    assert isinstance(value, VerificationResult)
    bound = value.margin_lower_bound
    if not np.isfinite(bound) and bound != float("-inf"):
        raise NumericalInstabilityError(
            f"verifier {value.method!r} produced non-finite margin {bound!r}"
        )


def verify_resilient(
    net: Sequential,
    spec: RobustnessSpec,
    ladder: Sequence[str] = VERIFICATION_FALLBACK,
    budget: Optional[Budget] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    max_nodes: int = 20000,
    verify_fn: Optional[Callable[..., VerificationResult]] = None,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ResilientVerificationResult:
    """Verify through the *degradation* ladder: exact first, widening the
    relaxation on failure.

    Complements :meth:`repro.core.rcr.RobustConvexRelaxation.certify`
    (which escalates cheap -> exact for tightness): this runs when the
    system must *stay up* — a rung that raises, exceeds the budget, or
    returns a corrupted bound is recorded and the next (looser but
    cheaper) rung answers instead.  The loosest rung is guaranteed: it
    runs even on an exhausted budget, because IBP costs microseconds and
    a loose-but-sound answer beats none.  ``verify_fn`` is injectable so
    the chaos harness can wrap the underlying verifier.
    """
    if not ladder:
        raise VerificationError("ladder must name at least one method")
    for m in ladder:
        if m not in METHOD_GRADES:
            raise VerificationError(
                f"unknown method {m!r}; choose from {sorted(METHOD_GRADES)}")
    if verify_fn is not None:
        call = verify_fn
    elif budget is not None:
        # share the budget's injectable monotonic clock so one fake clock
        # drives both the deadline and the per-query wall times
        def call(*args, **kwargs):
            return verify(*args, clock=budget.clock, **kwargs)
    else:
        call = verify
    retry = retry or RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

    def make_solver(method: str, guaranteed: bool) -> Callable[[], VerificationResult]:
        def solve() -> VerificationResult:
            time_limit = float("inf")
            if budget is not None:
                if guaranteed:
                    budget.charge(1)  # account, but never refuse the last resort
                else:
                    budget.spend(1, context=f"verify[{method}]")
                    time_limit = budget.remaining_time
            return call(net, spec, method=method, max_nodes=max_nodes,
                        time_limit=time_limit)
        return solve

    rungs = [
        Rung(
            name=method,
            solve=make_solver(method, i == len(ladder) - 1),
            grade=METHOD_GRADES[method].name.lower(),
            retry=retry,
            guaranteed=(i == len(ladder) - 1),
        )
        for i, method in enumerate(ladder)
    ]
    res: LadderResult = run_ladder(rungs, budget=budget, breaker=breaker,
                                   validator=_validate_verification,
                                   rng=rng, sleep=sleep, name="verify")
    result = res.value
    assert isinstance(result, VerificationResult)
    return ResilientVerificationResult(
        result=result,
        rung=res.rung,
        rung_index=res.rung_index,
        grade=METHOD_GRADES[res.rung],
        attempts=res.attempts,
        failures=res.failures,
        budget=res.budget,
        rung_times=res.rung_times,
    )


def verification_fingerprint(net: Sequential, spec: RobustnessSpec,
                             method: str, max_nodes: int = 20000,
                             backend: Optional[str] = None) -> str:
    """Content-addressed key of one verification query.

    Hashes the exact bytes of every network parameter plus the spec,
    method, and the *resolved kernels backend*, so two queries share a
    key only when the relaxation they induce is bit-identical — a single
    perturbed weight misses, and a cached ``vectorized`` margin is never
    served to a ``reference`` run (their float accumulation orders, and
    hence exact bit patterns, differ).
    """
    return fingerprint(net.params(), spec, method, int(max_nodes),
                       resolve_backend(backend))


def _verify_task(task) -> VerificationResult:
    """Module-level worker for :func:`verify_batch` (process-picklable)."""
    net, spec, method, max_nodes = task
    return verify(net, spec, method=method, max_nodes=max_nodes)


def _verify_chunk(task) -> List[VerificationResult]:
    """Module-level worker: one batched-kernel sweep over a spec chunk.

    The whole chunk is flattened to ``(B, n)`` arrays and answered by a
    single :mod:`repro.kernels.propagation` call; the measured batch time
    is amortized uniformly over the chunk's ``wall_time`` fields.
    """
    net, specs, method = task
    start = time.perf_counter()
    x0 = np.stack([s.x0 for s in specs])
    eps = np.array([s.eps for s in specs])
    c = np.stack([s.c for s in specs])
    d = np.array([s.d for s in specs])
    with get_tracer().span("verify.batch.kernel", method=method,
                           n_specs=len(specs)) as span:
        if method == "ibp":
            margins = ibp_margin_batch(net, x0, eps, c, d)
        elif method == "crown-ibp":
            margins = crown_ibp_margin_batch(net, x0, eps, c, d)
        else:
            margins = crown_margin_batch(net, x0, eps, c, d)
        span.set(verified=int(np.sum(margins > 0.0)))
    per_spec = (time.perf_counter() - start) / max(len(specs), 1)
    metrics = get_metrics()
    out: List[VerificationResult] = []
    for m in margins:
        bound = float(m)
        verified = bound > 0.0
        metrics.counter("verifier.queries", method=method).inc()
        if verified:
            metrics.counter("verifier.verified", method=method).inc()
        if np.isfinite(bound):
            metrics.histogram("verifier.margin", buckets=MARGIN_BUCKETS,
                              method=method).observe(bound)
        out.append(VerificationResult(
            method=method, verified=verified, margin_lower_bound=bound,
            wall_time=per_spec, complete=False))
    return out


def verify_batch(
    net: Sequential,
    specs: Sequence[RobustnessSpec],
    method: Method = "crown",
    max_nodes: int = 20000,
    executor: Optional[Executor] = None,
    cache: Optional[RelaxationCache] = None,
    budget=None,
    chunk_size: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[VerificationResult]:
    """Verify a whole spec list with one method, fanned out and memoized.

    Results are returned in spec order, with sound verdicts equal (and
    margins equal to floating-point round-off) to calling :func:`verify`
    in a loop, on every backend.  For the relaxed propagation methods in
    :data:`FAST_BATCH_METHODS` the default ``backend="vectorized"``
    answers whole chunks with one batched
    :mod:`repro.kernels.propagation` sweep — chunk boundaries depend only
    on ``chunk_size`` (default: one chunk), never on the executor, so
    results are bit-identical across serial/thread/process backends;
    ``backend="reference"`` restores the per-spec workers.  With a
    :class:`~repro.parallel.RelaxationCache`, queries whose fingerprint
    was already solved — earlier in this batch or in a previous one — are
    answered from the cache; only the unique misses are dispatched.  The
    coordinator owns the cache, so memoization works unchanged with the
    process backend.
    """
    specs = list(specs)
    fast = (resolve_backend(backend) == "vectorized"
            and method in FAST_BATCH_METHODS)

    def dispatch(todo: List[RobustnessSpec]) -> List[VerificationResult]:
        if not todo:
            return []
        if fast:
            size = len(todo) if chunk_size is None else max(1, chunk_size)
            chunks = [todo[i:i + size] for i in range(0, len(todo), size)]
            grouped = map_solve(
                _verify_chunk, [(net, ch, method) for ch in chunks],
                executor=executor, budget=budget, label="verify.batch")
            return [r for group in grouped for r in group]
        return list(map_solve(
            _verify_task, [(net, s, method, max_nodes) for s in todo],
            executor=executor, budget=budget, chunk_size=chunk_size,
            label="verify.batch"))

    if cache is None:
        return dispatch(specs)
    # fingerprint once per unique query; dispatch only the misses
    results: List[Optional[VerificationResult]] = [None] * len(specs)
    keys = [verification_fingerprint(net, s, method, max_nodes, backend=backend)
            for s in specs]
    pending: "OrderedDict[str, List[int]]" = OrderedDict()
    for i, key in enumerate(keys):
        hit = cache.get(key)
        if hit is not None:
            results[i] = hit
        else:
            pending.setdefault(key, []).append(i)
    computed = dispatch([specs[idxs[0]] for idxs in pending.values()])
    for (key, idxs), res in zip(pending.items(), computed):
        cache.put(key, res)
        results[idxs[0]] = res
        for i in idxs[1:]:
            # in-batch duplicates are served (and counted) as cache hits
            results[i] = cache.get(key)
    return results  # type: ignore[return-value]


def compare_verifiers(net: Sequential, specs: List[RobustnessSpec],
                      methods: tuple = ("ibp", "crown-ibp", "crown", "lp", "exact"),
                      max_nodes: int = 20000,
                      executor: Optional[Executor] = None,
                      cache: Optional[RelaxationCache] = None) -> Dict[str, List[VerificationResult]]:
    """Run every method on every spec.  Returns method -> results.

    With an ``executor`` the per-spec queries of each method fan out
    through :func:`verify_batch` (and memoize through ``cache``); the
    returned verdicts and margins are identical to the serial loop.
    """
    out: Dict[str, List[VerificationResult]] = {
        m: verify_batch(net, specs, method=m, max_nodes=max_nodes,
                        executor=executor, cache=cache)
        for m in methods
    }
    # bound-gap quality metric: exact margin minus each relaxed margin
    # (>= 0 when the relaxation is sound; large = loose relaxation)
    if "exact" in out:
        metrics = get_metrics()
        for m in methods:
            if m == "exact":
                continue
            for relaxed_res, exact_res in zip(out[m], out["exact"]):
                gap = (exact_res.margin_lower_bound
                       - relaxed_res.margin_lower_bound)
                if np.isfinite(gap):
                    metrics.histogram("verifier.bound_gap",
                                      buckets=MARGIN_BUCKETS,
                                      method=m).observe(gap)
    return out


def false_negative_rate(relaxed: List[VerificationResult],
                        exact: List[VerificationResult]) -> float:
    """Fraction of specs the exact verifier proves but the relaxed method
    misses — the §II-B-2 "effectiveness degrades" metric.

    Returns 0.0 when the exact verifier proves nothing (no denominators).
    """
    if len(relaxed) != len(exact):
        raise VerificationError("result lists must align")
    proven = [e.verified for e in exact]
    n_proven = sum(proven)
    if n_proven == 0:
        return 0.0
    missed = sum(1 for r, e in zip(relaxed, exact) if e.verified and not r.verified)
    return missed / n_proven

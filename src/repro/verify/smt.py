"""SMT-style exact verification by ReLU case splitting.

§II-B-2 lists "Satisfiability Modulo Theories (SMT)" alongside MIP and
BnB as the exact-verifier class.  This is the Reluplex-flavoured variant:
instead of big-M binaries, it performs DPLL-style *case splits* on the
phases of unstable ReLUs.  Each leaf of the split tree is a pure LP
(every ReLU fixed active or inactive); bound propagation prunes branches
whose LP relaxation already exceeds the incumbent, and fixing a phase
tightens the triangle relaxation of the remaining unstable neurons.

Functionally equivalent to :func:`repro.verify.exact.exact_margin_bound`
(both are complete); structurally it is a different search — depth-first
over phase assignments rather than best-first over fractional branches —
so the two exact engines can cross-check each other, which the test
suite does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import InfeasibleError, VerificationError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.nn.network import Sequential
from repro.verify.linear_bounds import crown_preactivation_bounds, extract_affine_relu_stack

__all__ = ["SMTResult", "smt_margin_bound"]

Phase = Dict[Tuple[int, int], bool]  # (stage, neuron) -> active?


@dataclass(frozen=True)
class SMTResult:
    """Case-splitting verification outcome."""

    margin: float
    x_worst: Optional[np.ndarray]
    splits: int
    leaves_solved: int
    converged: bool


def _leaf_lp(stages, pre, phase: Phase, x0, eps, c):
    """Build the LP for a (possibly partial) phase assignment.

    Fixed-active neurons contribute ``h = z`` (with ``z >= 0``);
    fixed-inactive contribute ``h = 0`` (with ``z <= 0``); still-unstable
    neurons keep the triangle relaxation.  Returns the LP and the list of
    remaining unstable neurons.
    """
    n_in = x0.size
    offsets = {"x": 0}
    total = n_in
    for k, stage in enumerate(stages):
        m = stage.b.size
        offsets[f"z{k}"] = total
        total += m
        if stage.act_slope is not None:
            offsets[f"h{k}"] = total
            total += m

    lo = np.full(total, -np.inf)
    hi = np.full(total, np.inf)
    lo[:n_in] = x0 - eps
    hi[:n_in] = x0 + eps
    eq_rows, eq_rhs, ineq_rows, ineq_rhs = [], [], [], []
    remaining: List[Tuple[int, int]] = []

    prev_off, prev_dim = offsets["x"], n_in
    for k, stage in enumerate(stages):
        z_off = offsets[f"z{k}"]
        m = stage.b.size
        lo[z_off : z_off + m] = pre[k][0]
        hi[z_off : z_off + m] = pre[k][1]
        for j in range(m):
            row = np.zeros(total)
            row[prev_off : prev_off + prev_dim] = stage.w[:, j]
            row[z_off + j] = -1.0
            eq_rows.append(row)
            eq_rhs.append(-float(stage.b[j]))
        if stage.act_slope is None:
            prev_off, prev_dim = z_off, m
            continue
        h_off = offsets[f"h{k}"]
        for j in range(m):
            l, u = float(pre[k][0][j]), float(pre[k][1][j])
            key = (k, j)
            decided = phase.get(key)
            if l >= 0.0 or decided is True:
                # active: h = z, z >= max(l, 0)
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -1.0
                eq_rows.append(row)
                eq_rhs.append(0.0)
                lo[z_off + j] = max(l, 0.0)
                lo[h_off + j] = max(l, 0.0)
                hi[h_off + j] = max(u, 0.0)
            elif u <= 0.0 or decided is False:
                # inactive: h = 0, z <= min(u, 0)
                row = np.zeros(total)
                row[h_off + j] = 1.0
                eq_rows.append(row)
                eq_rhs.append(0.0)
                hi[z_off + j] = min(u, 0.0)
                lo[h_off + j] = hi[h_off + j] = 0.0
            else:
                remaining.append(key)
                # triangle relaxation
                row = np.zeros(total)
                row[z_off + j] = 1.0
                row[h_off + j] = -1.0
                ineq_rows.append(row)
                ineq_rhs.append(0.0)
                chord = u / (u - l)  # numlint: disable=NL002 -- unstable neurons satisfy l < 0 < u, so u - l > 0
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -chord
                ineq_rows.append(row)
                ineq_rhs.append(-chord * l)
                lo[h_off + j] = 0.0
                hi[h_off + j] = max(u, 0.0)
        prev_off, prev_dim = h_off, m

    obj = np.zeros(total)
    z_last = offsets[f"z{len(stages) - 1}"]
    obj[z_last : z_last + stages[-1].b.size] = np.asarray(c, dtype=np.float64)
    lp = LPProblem(
        c=obj,
        g=np.asarray(ineq_rows) if ineq_rows else None,
        h=np.asarray(ineq_rhs) if ineq_rhs else None,
        a=np.asarray(eq_rows),
        b=np.asarray(eq_rhs),
        lo=lo,
        hi=hi,
    )
    return lp, remaining, offsets


def smt_margin_bound(
    net: Sequential,
    x0: np.ndarray,
    eps: float,
    c: np.ndarray,
    d: float = 0.0,
    max_splits: int = 10000,
    time_limit: float = float("inf"),
    clock: Callable[[], float] = time.perf_counter,
) -> SMTResult:
    """Exactly minimize ``c^T f(x) + d`` over the eps-ball by DPLL-style
    case splits on ReLU phases (pure-ReLU stacks only)."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    c = np.asarray(c, dtype=np.float64).ravel()
    stages = extract_affine_relu_stack(net)
    if stages[-1].act_slope is not None:
        raise VerificationError("SMT verifier expects a linear output layer")
    for s in stages[:-1]:
        if s.act_slope not in (0.0, None):
            raise VerificationError("SMT verifier supports pure-ReLU stacks only")
    pre = crown_preactivation_bounds(net, x0, eps, method="crown")

    start = clock()
    best = np.inf
    best_x: Optional[np.ndarray] = None
    splits = 0
    leaves = 0

    def network_margin(x: np.ndarray) -> float:
        return float(c @ net.forward(x.reshape(1, -1), training=False).ravel() + d)

    stack: List[Phase] = [{}]
    exhausted = True
    while stack:
        if splits >= max_splits or clock() - start > time_limit:
            exhausted = False
            break
        phase = stack.pop()
        try:
            lp, remaining, _ = _leaf_lp(stages, pre, phase, x0, eps, c)
            sol = solve_lp(lp)
        except InfeasibleError:
            continue
        bound = sol.objective + d
        if bound >= best - 1e-9:
            continue  # prune: this subtree cannot improve
        x_cand = sol.x[: x0.size]
        cand_margin = network_margin(x_cand)
        if cand_margin < best:
            best = cand_margin
            best_x = x_cand.copy()
        if not remaining:
            leaves += 1
            # leaf LP is exact for the fixed phases
            if bound < best:
                best = bound
                best_x = x_cand.copy()
            continue
        # split on the unstable neuron with the widest pre-activation box
        widths = [pre[k][1][j] - pre[k][0][j] for (k, j) in remaining]
        key = remaining[int(np.argmax(widths))]
        splits += 1
        for value in (True, False):
            child = dict(phase)
            child[key] = value
            stack.append(child)

    return SMTResult(
        margin=float(best),
        x_worst=best_x,
        splits=splits,
        leaves_solved=leaves,
        converged=exhausted,
    )

"""First-order fast path for the LP verifier: projected dual ascent.

Grade ``LINEAR``, bounding the *same* triangle-relaxation polytope as
:func:`repro.verify.lp_relax.lp_margin_lower_bound` (both build their LP
with :func:`repro.verify.lp_relax.build_margin_lp`) but without a
simplex: for any multipliers ``(y, z >= 0)`` the Lagrangian box
minimization is closed-form, so every iterate of projected supergradient
ascent is a *sound* lower bound by weak duality.  The method can
therefore stop any time and still answer honestly — it only sharpens.

Certification gate: the returned bound must be finite and no looser than
the interval (IBP) bound minus a slack — a first-order answer that lost
to the cheapest rung in the ladder is rejected with
:class:`~repro.exceptions.CertificationError` so the ladder descends to
a tighter method instead of serving a gratuitously weak bound.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import CertificationError
from repro.kernels.backend import resolve_backend
from repro.nn.network import Sequential
from repro.obs import current_span, profiled, record_solver_outcome
from repro.resilience.budget import Budget
from repro.verify.interval import ibp_margin_lower_bound
from repro.verify.lp_relax import build_margin_lp

__all__ = ["firstorder_margin_lower_bound"]


def _matvec(backend: Optional[str]) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Dense mat-vec on the active kernels backend.

    ``vectorized`` uses BLAS ``@``; ``reference`` pins a fixed-order
    einsum accumulation, the backend pair the cross-backend goldens pin.
    """
    if resolve_backend(backend) == "vectorized":
        return lambda m, x: m @ x
    return lambda m, x: np.einsum("ij,j->i", m, x, optimize=False)


@profiled("verify.firstorder_lp")
def firstorder_margin_lower_bound(
    net: Sequential,
    x0: np.ndarray,
    eps: float,
    c: np.ndarray,
    d: float = 0.0,
    bounds_method: str = "crown",
    max_iter: int = 400,
    patience: int = 60,
    cert_slack: float = 1e-6,
    budget: Optional[Budget] = None,
    backend: Optional[str] = None,
) -> float:
    """Sound lower bound on ``min over ball of c^T f(x) + d`` by
    projected supergradient ascent on the triangle-LP dual.

    For the LP ``min c^T v  s.t.  A v = b, G v <= h, lo <= v <= hi``
    (every variable compact via ``tight_boxes``) the dual function

    ``g(y, z) = -y^T b - z^T h + sum_j min_{v_j in [lo_j, hi_j]} r_j v_j``

    with reduced cost ``r = c + A^T y + G^T z`` is concave and evaluable
    in one mat-vec sweep; its value lower-bounds the LP optimum — hence
    the true margin — for *every* ``(y, z >= 0)``.  Normalized
    diminishing-step ascent keeps the best value seen and stops early
    after ``patience`` iterations without improvement.  A cooperative
    ``budget`` is charged one unit per iteration.

    Raises :class:`CertificationError` when the bound is non-finite or
    loses to the IBP bound by more than ``cert_slack``.
    """
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    c = np.asarray(c, dtype=np.float64).ravel()
    lp = build_margin_lp(net, x0, eps, c, bounds_method=bounds_method,
                         tight_boxes=True)
    mv = _matvec(backend)

    a, b = lp.a, lp.b
    g = lp.g if lp.g is not None else np.zeros((0, lp.c.size))
    h = lp.h if lp.h is not None else np.zeros(0)
    lo, hi, cvec = lp.lo, lp.hi, lp.c
    at, gt = np.ascontiguousarray(a.T), np.ascontiguousarray(g.T)
    mid = 0.5 * (lo + hi)

    y = np.zeros(b.size)
    z = np.zeros(h.size)
    best = -np.inf
    stall = 0
    it = 0
    for it in range(1, max_iter + 1):
        if budget is not None:
            budget.spend(1, context="firstorder_lp")
        r = cvec + mv(at, y) + mv(gt, z)
        v = np.where(r > 0.0, lo, np.where(r < 0.0, hi, mid))
        gval = float(r @ v) - float(y @ b) - float(z @ h)
        if not np.isfinite(best) or gval > best + 1e-12 * (1.0 + abs(best)):
            best = gval
            stall = 0
        else:
            stall += 1
            if stall >= patience:
                break
        gy = mv(a, v) - b
        gz = mv(g, v) - h
        norm = float(np.sqrt(gy @ gy + gz @ gz))
        step = 1.0 / max(norm * np.sqrt(it), 1e-12)
        y = y + step * gy
        z = np.maximum(0.0, z + step * gz)

    bound = best + d
    floor = ibp_margin_lower_bound(net, x0, eps, c, d)
    certified = bool(np.isfinite(bound) and bound >= floor - cert_slack)
    current_span().set(iterations=it, converged=certified,
                       margin=float(bound), ibp_floor=float(floor))
    record_solver_outcome("firstorder_lp", it, certified)
    if not certified:
        raise CertificationError(
            "first-order LP dual bound is uncertified "
            f"(bound {bound:.6e} vs IBP floor {floor:.6e})",
            iterations=it,
            residual=float(floor - bound) if np.isfinite(bound) else np.inf,
        )
    return float(bound)

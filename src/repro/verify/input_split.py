"""Complete verification by input-domain branch-and-bound.

The third complete strategy alongside the big-M MILP and the ReLU-phase
SMT split: recursively bisect the *input* box, bounding each subdomain
with CROWN.  Because CROWN is exact in the limit of a point domain, the
procedure converges to the true minimum margin; it scales with input
dimension rather than network width, complementing the other two engines
(which scale with the number of unstable ReLUs).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.nn.network import Sequential
from repro.verify.linear_bounds import crown_margin_lower_bound

__all__ = ["InputSplitResult", "input_split_margin_bound"]


@dataclass(frozen=True)
class InputSplitResult:
    """Input-splitting verification outcome."""

    margin: float
    lower_bound: float
    x_worst: Optional[np.ndarray]
    domains: int
    converged: bool

    @property
    def gap(self) -> float:
        return self.margin - self.lower_bound


def input_split_margin_bound(
    net: Sequential,
    x0: np.ndarray,
    eps: float,
    c: np.ndarray,
    d: float = 0.0,
    gap_tol: float = 1e-4,
    max_domains: int = 20000,
    time_limit: float = float("inf"),
    clock: Callable[[], float] = time.perf_counter,
) -> InputSplitResult:
    """Minimize ``c^T f(x) + d`` over the eps-ball to within *gap_tol* by
    best-first bisection of the input box with CROWN subdomain bounds."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    c = np.asarray(c, dtype=np.float64).ravel()
    start = clock()

    def network_margin(x: np.ndarray) -> float:
        return float(c @ net.forward(x.reshape(1, -1), training=False).ravel() + d)

    def domain_bound(lo: np.ndarray, hi: np.ndarray) -> float:
        center = 0.5 * (lo + hi)
        radius = 0.5 * float(np.max(hi - lo))
        # CROWN over the enclosing ball of the (possibly anisotropic) box;
        # sound because the box is contained in the ball
        return crown_margin_lower_bound(net, center, radius, c, d, method="crown")

    lo0, hi0 = x0 - eps, x0 + eps
    best_x = x0.copy()
    best = network_margin(x0)
    counter = itertools.count()
    heap = [(domain_bound(lo0, hi0), next(counter), lo0, hi0)]
    domains = 1
    pruned_floor = np.inf  # min certified bound among discarded subdomains

    def report(converged: bool, frontier_bound: float) -> InputSplitResult:
        lower = min(frontier_bound, pruned_floor, best)
        return InputSplitResult(margin=best, lower_bound=float(lower),
                                x_worst=best_x, domains=domains, converged=converged)

    while heap:
        bound, _, lo, hi = heapq.heappop(heap)
        if best - bound <= gap_tol:
            return report(True, bound)
        if domains >= max_domains or clock() - start > time_limit:
            return report(False, bound)
        # evaluate the center as a candidate, then bisect the widest axis
        center = 0.5 * (lo + hi)
        val = network_margin(center)
        if val < best:
            best, best_x = val, center.copy()
        axis = int(np.argmax(hi - lo))
        mid = center[axis]
        for side in (0, 1):
            c_lo, c_hi = lo.copy(), hi.copy()
            if side == 0:
                c_hi[axis] = mid
            else:
                c_lo[axis] = mid
            child_bound = domain_bound(c_lo, c_hi)
            domains += 1
            if child_bound < best - gap_tol:
                heapq.heappush(heap, (child_bound, next(counter), c_lo, c_hi))
            else:
                pruned_floor = min(pruned_floor, child_bound)

    return report(True, np.inf)

"""Robustness verification: IBP / CROWN / LP relaxed verifiers, the exact
MILP verifier, gradient and relaxation-guided attacks, and convex
relaxation adversarial training (paper §II-B-2)."""

from repro.verify.adversarial import (
    RobustTrainer,
    certified_radius,
    fgsm_attack,
    make_two_moons,
    margin_input_gradient,
    pgd_attack,
    relaxation_guided_attack,
)
from repro.verify.exact import ExactResult, exact_margin_bound
from repro.verify.firstorder_lp import firstorder_margin_lower_bound
from repro.verify.interval import (
    LayerBounds,
    ibp_margin_lower_bound,
    ibp_output_bounds,
    propagate_intervals,
)
from repro.verify.linear_bounds import (
    crown_input_linear_form,
    crown_margin_lower_bound,
    crown_preactivation_bounds,
    extract_affine_relu_stack,
)
from repro.verify.input_split import InputSplitResult, input_split_margin_bound
from repro.verify.lp_relax import build_margin_lp, lp_margin_lower_bound
from repro.verify.smt import SMTResult, smt_margin_bound
from repro.verify.specs import RobustnessSpec, classification_spec
from repro.verify.verifier import (
    FAST_BATCH_METHODS,
    METHOD_GRADES,
    VerificationResult,
    compare_verifiers,
    false_negative_rate,
    verification_fingerprint,
    verify,
    verify_batch,
)

__all__ = [
    "ExactResult",
    "FAST_BATCH_METHODS",
    "InputSplitResult",
    "LayerBounds",
    "METHOD_GRADES",
    "RobustTrainer",
    "RobustnessSpec",
    "SMTResult",
    "VerificationResult",
    "build_margin_lp",
    "certified_radius",
    "classification_spec",
    "compare_verifiers",
    "crown_input_linear_form",
    "crown_margin_lower_bound",
    "crown_preactivation_bounds",
    "exact_margin_bound",
    "extract_affine_relu_stack",
    "false_negative_rate",
    "fgsm_attack",
    "firstorder_margin_lower_bound",
    "ibp_margin_lower_bound",
    "input_split_margin_bound",
    "ibp_output_bounds",
    "lp_margin_lower_bound",
    "make_two_moons",
    "margin_input_gradient",
    "pgd_attack",
    "propagate_intervals",
    "relaxation_guided_attack",
    "smt_margin_bound",
    "verification_fingerprint",
    "verify",
    "verify_batch",
]

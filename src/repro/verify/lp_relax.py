"""LP ("planet"/triangle) relaxation verifier.

Grade ``LINEAR`` but tighter than single-pass CROWN: all neurons are
constrained *jointly* in one linear program, with each unstable ReLU
replaced by its triangle relaxation (both lower faces plus the upper
chord).  This is the MILP-relaxation class of verifier from §II-B-2 —
"more quickly resolved and more scalable [than exact], but their
effectiveness ... degrades" as the boxes widen.
"""

from __future__ import annotations

import numpy as np

from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.exceptions import VerificationError
from repro.nn.network import Sequential
from repro.verify.linear_bounds import crown_preactivation_bounds, extract_affine_relu_stack

__all__ = ["build_margin_lp", "lp_margin_lower_bound"]


def build_margin_lp(
    net: Sequential,
    x0: np.ndarray,
    eps: float,
    c: np.ndarray,
    bounds_method: str = "crown",
    tight_boxes: bool = False,
) -> LPProblem:
    """Assemble the joint triangle-relaxation LP for one margin query.

    The returned :class:`LPProblem` minimizes ``c^T z_last`` over the
    relaxed network polytope; its optimum (plus the spec offset ``d``)
    is the sound margin lower bound :func:`lp_margin_lower_bound`
    reports.  Shared by the simplex rung and the first-order dual-ascent
    rung (:mod:`repro.verify.firstorder_lp`), so both bound the *same*
    polytope.

    ``tight_boxes=True`` additionally closes the variable box on
    *stable* post-activation variables (implied by their equality rows,
    hence redundant for the simplex) — the first-order dual needs every
    variable compact so the inner box minimization stays finite.
    """
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    stages = extract_affine_relu_stack(net)
    if stages[-1].act_slope is not None:
        raise VerificationError("LP verifier expects a linear output layer")
    pre = crown_preactivation_bounds(net, x0, eps, method=bounds_method)

    # variable layout: [x, z_0, h_0, z_1, h_1, ..., z_last]
    n_in = x0.size
    sizes = [n_in]
    var_names = []
    offsets = {"x": 0}
    total = n_in
    for k, stage in enumerate(stages):
        m = stage.b.size
        offsets[f"z{k}"] = total
        total += m
        if stage.act_slope is not None:
            offsets[f"h{k}"] = total
            total += m

    lo = np.full(total, -np.inf)
    hi = np.full(total, np.inf)
    lo[:n_in] = x0 - eps
    hi[:n_in] = x0 + eps
    for k, stage in enumerate(stages):
        z_off = offsets[f"z{k}"]
        m = stage.b.size
        lo[z_off : z_off + m] = pre[k][0]
        hi[z_off : z_off + m] = pre[k][1]

    eq_rows = []
    eq_rhs = []
    ineq_rows = []
    ineq_rhs = []

    def add_eq(row, rhs):
        eq_rows.append(row)
        eq_rhs.append(rhs)

    def add_ineq(row, rhs):
        ineq_rows.append(row)
        ineq_rhs.append(rhs)

    prev_off = offsets["x"]
    prev_dim = n_in
    for k, stage in enumerate(stages):
        z_off = offsets[f"z{k}"]
        m = stage.b.size
        # z_k = prev @ W + b
        for j in range(m):
            row = np.zeros(total)
            row[prev_off : prev_off + prev_dim] = stage.w[:, j]
            row[z_off + j] = -1.0
            add_eq(row, -float(stage.b[j]))
        if stage.act_slope is None:
            prev_off, prev_dim = z_off, m
            continue
        h_off = offsets[f"h{k}"]
        slope = stage.act_slope
        lo_k, hi_k = pre[k]
        for j in range(m):
            l, u = float(lo_k[j]), float(hi_k[j])
            if l >= 0.0:
                # active: h = z
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -1.0
                add_eq(row, 0.0)
                if tight_boxes:
                    lo[h_off + j] = l
                    hi[h_off + j] = u
            elif u <= 0.0:
                # inactive: h = slope * z
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -slope
                add_eq(row, 0.0)
                if tight_boxes:
                    lo[h_off + j] = min(slope * l, slope * u)
                    hi[h_off + j] = max(slope * l, slope * u)
            else:
                # triangle: h >= z ; h >= slope z ; h <= chord
                row = np.zeros(total)
                row[z_off + j] = 1.0
                row[h_off + j] = -1.0
                add_ineq(row, 0.0)  # z - h <= 0
                row = np.zeros(total)
                row[z_off + j] = slope
                row[h_off + j] = -1.0
                add_ineq(row, 0.0)  # slope z - h <= 0
                chord = (u - slope * l) / (u - l)  # numlint: disable=NL002 -- unstable neurons satisfy l < 0 < u, so u - l > 0
                inter = slope * l - chord * l
                row = np.zeros(total)
                row[h_off + j] = 1.0
                row[z_off + j] = -chord
                add_ineq(row, inter)  # h - chord z <= intercept
                lo[h_off + j] = min(0.0, slope * l)
                hi[h_off + j] = max(u, 0.0)
        prev_off, prev_dim = h_off, m

    c = np.asarray(c, dtype=np.float64).ravel()
    obj = np.zeros(total)
    z_last = offsets[f"z{len(stages) - 1}"]
    obj[z_last : z_last + stages[-1].b.size] = c

    return LPProblem(
        c=obj,
        g=np.asarray(ineq_rows) if ineq_rows else None,
        h=np.asarray(ineq_rhs) if ineq_rhs else None,
        a=np.asarray(eq_rows),
        b=np.asarray(eq_rhs),
        lo=lo,
        hi=hi,
    )


def lp_margin_lower_bound(
    net: Sequential,
    x0: np.ndarray,
    eps: float,
    c: np.ndarray,
    d: float = 0.0,
    bounds_method: str = "crown",
) -> float:
    """Sound lower bound on ``min over ball of c^T f(x) + d`` by a joint
    LP over all neurons.

    Pre-activation boxes come from :func:`crown_preactivation_bounds`
    (``bounds_method`` selects 'crown' or 'crown-ibp'); only ReLU
    (``slope == 0``) and LeakyReLU stacks with a linear output layer are
    supported.
    """
    lp = build_margin_lp(net, x0, eps, c, bounds_method=bounds_method)
    sol = solve_lp(lp)
    return float(sol.objective + d)

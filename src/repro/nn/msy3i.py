"""MSY3I — the Modified Squeezed YOLO v3 Implementation.

"Certain SFLs replace certain Conv layers, and the number of
hyperparameters as well as the number of filters of the compression
portion of the fire layers are reduced; prior research has indicated
that the number of model parameters in MSY3I will be lower than that of
just YOLO v3 with only the slightest degradation in performance."

:func:`build_msy3i` mirrors :func:`repro.nn.yolo.build_darknet_mini`
stage-for-stage, but every downsampling conv block becomes a
:class:`~repro.nn.fire.SpecialFireLayer` and every stride-1 block a
:class:`~repro.nn.fire.FireLayer`.  :class:`MSY3IConfig` exposes exactly
the hyperparameters the paper's PSO is supposed to tune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.fire import FireLayer, SpecialFireLayer
from repro.nn.layers import BatchNorm, Layer
from repro.nn.network import Sequential
from repro.nn.yolo import DarknetMiniConfig, GridDetector, build_darknet_mini

__all__ = ["MSY3IConfig", "build_msy3i", "make_detector", "parameter_reduction"]


@dataclass(frozen=True)
class MSY3IConfig:
    """Hyperparameters of the squeezed detector — the PSO search space.

    ``paradigm`` tags which RCR paradigm the instance serves (paper
    Fig. 2): 1 = numerically-stable QoS solver path, 2 = feature-rich 5G
    function path.
    """

    in_channels: int = 1
    base_channels: int = 8
    n_stages: int = 3
    blocks_per_stage: int = 1
    squeeze_ratio: float = 0.125
    n_classes: int = 2
    batchnorm: bool = False
    paradigm: int = 1

    def __post_init__(self):
        if self.base_channels < 2 or self.base_channels % 2 != 0:
            raise ConfigurationError("base_channels must be an even integer >= 2")
        if self.n_stages < 1 or self.blocks_per_stage < 1:
            raise ConfigurationError("stages and blocks must be >= 1")
        if not 0.0 < self.squeeze_ratio <= 1.0:
            raise ConfigurationError("squeeze_ratio must be in (0, 1]")
        if self.paradigm not in (1, 2):
            raise ConfigurationError("paradigm must be 1 or 2")

    @property
    def out_channels(self) -> int:
        return self.base_channels * 2 ** (self.n_stages - 1)


def build_msy3i(cfg: MSY3IConfig, rng: np.random.Generator | None = None) -> Sequential:
    """Assemble the squeezed backbone: SFL downsampling, FL refinement."""
    rng = rng or np.random.default_rng(0)
    layers: List[Layer] = []
    c_in = cfg.in_channels
    c_out = cfg.base_channels
    for _stage in range(cfg.n_stages):
        layers.append(SpecialFireLayer(c_in, c_out, squeeze_ratio=cfg.squeeze_ratio, rng=rng))
        if cfg.batchnorm:
            layers.append(BatchNorm(c_out))
        for _ in range(cfg.blocks_per_stage - 1):
            layers.append(FireLayer(c_out, c_out, squeeze_ratio=cfg.squeeze_ratio, rng=rng))
            if cfg.batchnorm:
                layers.append(BatchNorm(c_out))
        c_in, c_out = c_out, c_out * 2
    return Sequential(layers)


def make_detector(cfg: MSY3IConfig, squeezed: bool = True,
                  rng: np.random.Generator | None = None) -> GridDetector:
    """Build a grid detector with either the squeezed (MSY3I) or the
    plain Darknet-mini backbone of identical stage geometry — the
    matched pair the SQUEEZE benchmark compares."""
    rng = rng or np.random.default_rng(0)
    if squeezed:
        backbone = build_msy3i(cfg, rng=rng)
    else:
        backbone = build_darknet_mini(
            DarknetMiniConfig(
                in_channels=cfg.in_channels,
                base_channels=cfg.base_channels,
                n_stages=cfg.n_stages,
                blocks_per_stage=cfg.blocks_per_stage,
                batchnorm=cfg.batchnorm,
            ),
            rng=rng,
        )
    return GridDetector(backbone, cfg.out_channels, n_classes=cfg.n_classes, rng=rng)


def parameter_reduction(cfg: MSY3IConfig) -> dict:
    """Parameter counts of the matched squeezed/full pair and the
    reduction factor — the paper's headline MSY3I claim."""
    squeezed = make_detector(cfg, squeezed=True)
    full = make_detector(cfg, squeezed=False)
    n_squeezed = squeezed.n_params()
    n_full = full.n_params()
    return {
        "squeezed_params": n_squeezed,
        "full_params": n_full,
        "reduction_factor": n_full / max(n_squeezed, 1),
    }

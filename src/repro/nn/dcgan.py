"""Convolutional DCGAN on spectrogram patches.

The MLP GAN of :mod:`repro.nn.gan` measures mode collapse on a 2-D toy;
this module provides the genuinely *convolutional* pair the term "DCGAN"
implies, at spectrogram-patch scale: the generator upsamples latent noise
to an ``8x8`` time-frequency patch, the discriminator is a strided conv
stack.  The data distribution has countable modes — tone patches at K
distinct frequency rows — so the mode-coverage metric carries over: a
collapsed generator emits patches concentrated on few frequency rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Flatten,
    LeakyReLU,
    Reshape,
    Tanh,
    UpsampleNearest,
)
from repro.nn.network import Adam, Sequential, bce_with_logits_loss

__all__ = [
    "tone_patch_batch",
    "patch_frequency_mode",
    "patch_mode_coverage",
    "build_patch_generator",
    "build_patch_discriminator",
    "ConvGANConfig",
    "ConvGANTrainer",
]

PATCH = 8  # patch side length


def tone_patch_batch(batch_size: int, n_modes: int = 8,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample (B, 1, 8, 8) tone patches: one bright frequency row per
    patch (the mode), mild amplitude jitter, light background noise,
    scaled to [-1, 1] for the Tanh generator."""
    rng = rng or np.random.default_rng(0)
    if not 1 <= n_modes <= PATCH:
        raise ConfigurationError(f"n_modes must be in [1, {PATCH}]")
    rows = rng.integers(0, n_modes, size=batch_size)
    out = -np.ones((batch_size, 1, PATCH, PATCH))
    out += 0.05 * rng.standard_normal(out.shape)
    amps = rng.uniform(1.6, 2.0, size=batch_size)
    for b in range(batch_size):
        out[b, 0, rows[b], :] += amps[b]
    return np.clip(out, -1.0, 1.0)


def patch_frequency_mode(patches: np.ndarray) -> np.ndarray:
    """Dominant frequency row per patch — the discrete mode label."""
    p = np.asarray(patches)
    return np.argmax(p.mean(axis=3)[:, 0, :], axis=1)


def patch_mode_coverage(patches: np.ndarray, n_modes: int = 8,
                        min_share: float = 0.02) -> int:
    """How many of the first *n_modes* frequency rows receive at least
    ``min_share`` of the generated patches."""
    modes = patch_frequency_mode(patches)
    covered = 0
    for k in range(n_modes):
        if np.mean(modes == k) >= min_share:
            covered += 1
    return covered


def build_patch_generator(latent_dim: int = 16, base_channels: int = 16,
                          batchnorm: bool = True,
                          rng: np.random.Generator | None = None) -> Sequential:
    """latent -> Dense -> (C,2,2) -> upsample+conv x2 -> (1,8,8) Tanh."""
    rng = rng or np.random.default_rng(0)
    c = base_channels
    layers = [
        Dense(latent_dim, c * 2 * 2, rng=rng),
        Reshape((c, 2, 2)),
        UpsampleNearest(2),
        Conv2d(c, c, kernel_size=3, rng=rng),
    ]
    if batchnorm:
        layers.append(BatchNorm(c))
    layers += [
        LeakyReLU(0.2),
        UpsampleNearest(2),
        Conv2d(c, c // 2, kernel_size=3, rng=rng),
    ]
    if batchnorm:
        layers.append(BatchNorm(c // 2))
    layers += [
        LeakyReLU(0.2),
        Conv2d(c // 2, 1, kernel_size=3, rng=rng),
        Tanh(),
    ]
    return Sequential(layers)


def build_patch_discriminator(base_channels: int = 16,
                              rng: np.random.Generator | None = None) -> Sequential:
    """(1,8,8) -> strided conv x2 -> logits."""
    rng = rng or np.random.default_rng(1)
    c = base_channels
    return Sequential([
        Conv2d(1, c // 2, kernel_size=3, stride=2, rng=rng),   # 4x4
        LeakyReLU(0.2),
        Conv2d(c // 2, c, kernel_size=3, stride=2, rng=rng),   # 2x2
        LeakyReLU(0.2),
        Flatten(),
        Dense(c * 2 * 2, 1, rng=rng),
    ])


@dataclass(frozen=True)
class ConvGANConfig:
    latent_dim: int = 16
    base_channels: int = 16
    batch_size: int = 32
    lr: float = 2e-3
    beta1: float = 0.5
    n_modes: int = 8
    batchnorm: bool = True

    def __post_init__(self):
        if self.batch_size < 2 or self.latent_dim < 1:
            raise ConfigurationError("invalid ConvGAN configuration")


@dataclass
class ConvGANTrace:
    d_losses: List[float] = field(default_factory=list)
    g_losses: List[float] = field(default_factory=list)
    coverage: List[int] = field(default_factory=list)


class ConvGANTrainer:
    """Convolutional GAN trainer on the tone-patch distribution."""

    def __init__(self, config: ConvGANConfig | None = None, seed: int = 0):
        self.config = config or ConvGANConfig()
        self.rng = np.random.default_rng(seed)
        cfg = self.config
        self.generator = build_patch_generator(cfg.latent_dim, cfg.base_channels,
                                               batchnorm=cfg.batchnorm, rng=self.rng)
        self.discriminator = build_patch_discriminator(cfg.base_channels, rng=self.rng)
        self.g_opt = Adam(self.generator, lr=cfg.lr, beta1=cfg.beta1)
        self.d_opt = Adam(self.discriminator, lr=cfg.lr, beta1=cfg.beta1)
        self.trace = ConvGANTrace()

    def sample_latent(self, n: int) -> np.ndarray:
        return self.rng.standard_normal((n, self.config.latent_dim))

    def sample(self, n: int) -> np.ndarray:
        return self.generator.forward(self.sample_latent(n), training=False)

    def train_step(self) -> tuple[float, float]:
        cfg = self.config
        real = tone_patch_batch(cfg.batch_size, cfg.n_modes, rng=self.rng)
        fake = self.generator.forward(self.sample_latent(cfg.batch_size), training=True)

        d_real = self.discriminator.forward(real, training=True)
        loss_r, grad_r = bce_with_logits_loss(d_real, np.ones_like(d_real))
        self.discriminator.backward(grad_r)
        acc = {k: g.copy() for k, g in self.discriminator.grads().items()}
        d_fake = self.discriminator.forward(fake, training=True)
        loss_f, grad_f = bce_with_logits_loss(d_fake, np.zeros_like(d_fake))
        self.discriminator.backward(grad_f)
        for k, g in self.discriminator.grads().items():
            g += acc[k]
        self.d_opt.step()

        z = self.sample_latent(cfg.batch_size)
        fake = self.generator.forward(z, training=True)
        d_out = self.discriminator.forward(fake, training=True)
        g_loss, grad_g = bce_with_logits_loss(d_out, np.ones_like(d_out))
        grad_in = self.discriminator.backward(grad_g)
        self.generator.backward(grad_in)
        self.g_opt.step()

        d_loss = loss_r + loss_f
        self.trace.d_losses.append(d_loss)
        self.trace.g_losses.append(g_loss)
        return d_loss, g_loss

    def train(self, steps: int, metric_every: int = 200,
              n_metric_samples: int = 256) -> ConvGANTrace:
        for step in range(1, steps + 1):
            self.train_step()
            if metric_every and step % metric_every == 0:
                samples = self.sample(n_metric_samples)
                self.trace.coverage.append(
                    patch_mode_coverage(samples, self.config.n_modes))
        return self.trace

"""Neural-network layers with explicit forward/backward passes.

A deliberately small, dependency-free layer zoo sufficient for the
paper's architectures: Darknet-style conv stacks, SqueezeNet fire
layers, and DCGAN generator/discriminator pairs.  Backpropagation is
hand-written per layer (no autograd), which keeps every numerical step
inspectable — the transparency "at each neural network layer" the paper
demands of its RCR framework.

Conventions: activations are ``(batch, channels, height, width)`` for
2-D layers and ``(batch, features)`` for dense layers; every layer
caches what its backward pass needs during ``forward``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "BatchNorm",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Reshape",
    "UpsampleNearest",
    "MaxPool2d",
    "Concat",
]


class Layer:
    """Base layer: ``forward`` caches, ``backward`` returns input grads.

    Parameters and their gradients are exposed through ``params()`` and
    ``grads()`` as name->array dicts so optimizers stay generic.
    """

    trainable: bool = True

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        return {}

    def n_params(self) -> int:
        return int(sum(p.size for p in self.params().values()))

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


def _he_init(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal(shape) * np.sqrt(2.0 / max(fan_in, 1))


def _xavier_init(shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 init: str = "he", rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        if init == "he":
            self.w = _he_init((in_features, out_features), in_features, rng)
        elif init == "xavier":
            self.w = _xavier_init((in_features, out_features), in_features, out_features, rng)
        else:
            raise ConfigurationError(f"unknown init {init!r}")
        self.b = np.zeros(out_features)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.w.shape[0]:
            raise DimensionError(f"Dense expected (*, {self.w.shape[0]}), got {x.shape}")
        self._x = x if training else None
        return x @ self.w + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward called before forward(training=True)"
        self.dw = self._x.T @ grad_out
        self.db = grad_out.sum(axis=0)
        return grad_out @ self.w.T

    def params(self) -> Dict[str, np.ndarray]:
        return {"w": self.w, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"w": self.dw, "b": self.db}


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Unfold (B, C, H, W) into columns (B, C*kh*kw, out_h*out_w)."""
    b, c, h, w = x.shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    if out_h < 1 or out_w < 1:
        raise DimensionError(f"kernel {kh}x{kw} too large for input {h}x{w} with pad {pad}")
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((b, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = xp[:, :, i:i_max:stride, j:j_max:stride]
    return cols.reshape(b, c * kh * kw, out_h * out_w), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int, pad: int,
            out_h: int, out_w: int) -> np.ndarray:
    """Adjoint of :func:`_im2col` (scatter-add back to image layout)."""
    b, c, h, w = x_shape
    cols = cols.reshape(b, c, kh, kw, out_h, out_w)
    xp = np.zeros((b, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if pad:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


class Conv2d(Layer):
    """2-D convolution via im2col; supports stride and same/valid padding."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, pad: int | None = None,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        if kernel_size < 1 or stride < 1:
            raise ConfigurationError("kernel_size and stride must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.k = kernel_size
        self.stride = stride
        self.pad = (kernel_size // 2) if pad is None else pad
        fan_in = in_channels * kernel_size * kernel_size
        self.w = _he_init((out_channels, fan_in), fan_in, rng)
        self.b = np.zeros(out_channels)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise DimensionError(
                f"Conv2d expected (B, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = _im2col(x, self.k, self.k, self.stride, self.pad)
        out = np.einsum("of,bfp->bop", self.w, cols) + self.b[None, :, None]
        if training:
            self._cache = (x.shape, cols, out_h, out_w)
        return out.reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_shape, cols, out_h, out_w = self._cache
        b = grad_out.shape[0]
        g = grad_out.reshape(b, self.out_channels, out_h * out_w)
        self.dw = np.einsum("bop,bfp->of", g, cols)
        self.db = g.sum(axis=(0, 2))
        dcols = np.einsum("of,bop->bfp", self.w, g)
        return _col2im(dcols, x_shape, self.k, self.k, self.stride, self.pad, out_h, out_w)

    def params(self) -> Dict[str, np.ndarray]:
        return {"w": self.w, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"w": self.dw, "b": self.db}


class BatchNorm(Layer):
    """Batch normalization over the channel axis (2-D or dense input).

    The paper: "Simply applying batchnorm to all the layers ... can
    result in oscillation and instability.  Prior research has shown that
    this instability can be avoided by selectively applying batchnorm,
    e.g., only at the generator output layer and/or the discriminator
    input layer."  The BNORM benchmark toggles placement; this layer is
    the mechanism.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[tuple] = None

    @staticmethod
    def _axes(x: np.ndarray) -> tuple:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise DimensionError(f"BatchNorm supports 2-D or 4-D input, got {x.ndim}-D")

    def _reshape_stats(self, s: np.ndarray, ndim: int) -> np.ndarray:
        return s[None, :] if ndim == 2 else s[None, :, None, None]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        m = self._reshape_stats(mean, x.ndim)
        v = self._reshape_stats(var, x.ndim)
        x_hat = (x - m) / np.sqrt(v + self.eps)
        out = self._reshape_stats(self.gamma, x.ndim) * x_hat + self._reshape_stats(self.beta, x.ndim)
        if training:
            self._cache = (x_hat, var, axes, x.ndim)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, var, axes, ndim = self._cache
        n = np.prod([grad_out.shape[a] for a in axes])
        self.dgamma = (grad_out * x_hat).sum(axis=axes)
        self.dbeta = grad_out.sum(axis=axes)
        g = self._reshape_stats(self.gamma, ndim)
        v = self._reshape_stats(var, ndim)
        dxhat = grad_out * g
        dx = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
        ) / np.sqrt(v + self.eps)
        return dx

    def params(self) -> Dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"gamma": self.dgamma, "beta": self.dbeta}


class ReLU(Layer):
    trainable = False

    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, 0.0)


class LeakyReLU(Layer):
    """The DCGAN-standard discriminator activation."""

    trainable = False

    def __init__(self, slope: float = 0.1):
        self.slope = slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_out, self.slope * grad_out)


class Tanh(Layer):
    """The DCGAN-standard generator output activation."""

    trainable = False

    def __init__(self):
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._out**2)


class Sigmoid(Layer):
    trainable = False

    def __init__(self):
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        from repro.numerics.stable_ops import stable_sigmoid

        self._out = stable_sigmoid(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._out * (1.0 - self._out)


class Flatten(Layer):
    trainable = False

    def __init__(self):
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Reshape(Layer):
    trainable = False

    def __init__(self, shape: Tuple[int, ...]):
        self.shape = shape
        self._in_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape((x.shape[0],) + self.shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._in_shape)


class UpsampleNearest(Layer):
    """Nearest-neighbour 2x upsampling (YOLO v3's upsample path)."""

    trainable = False

    def __init__(self, factor: int = 2):
        if factor < 1:
            raise ConfigurationError("upsample factor must be >= 1")
        self.factor = factor

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        f = self.factor
        return x.repeat(f, axis=2).repeat(f, axis=3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        f = self.factor
        b, c, h, w = grad_out.shape
        return grad_out.reshape(b, c, h // f, f, w // f, f).sum(axis=(3, 5))


class MaxPool2d(Layer):
    trainable = False

    def __init__(self, size: int = 2):
        if size < 1:
            raise ConfigurationError("pool size must be >= 1")
        self.size = size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        s = self.size
        b, c, h, w = x.shape
        if h % s or w % s:
            raise DimensionError(f"MaxPool2d({s}) needs H, W divisible by {s}, got {h}x{w}")
        xr = x.reshape(b, c, h // s, s, w // s, s)
        out = xr.max(axis=(3, 5))
        if training:
            mask = xr == out[:, :, :, None, :, None]
            self._cache = (mask, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask, x_shape = self._cache
        s = self.size
        g = grad_out[:, :, :, None, :, None] * mask
        # ties split the gradient evenly
        counts = mask.sum(axis=(3, 5), keepdims=True)
        g = g / np.maximum(counts, 1)
        return g.reshape(x_shape)


class Concat:
    """Channel concatenation helper for branched blocks (fire layers).

    Not a :class:`Layer` — it has two inputs; fire layers use it
    directly with the matching :meth:`backward` split.
    """

    @staticmethod
    def forward(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.concatenate([a, b], axis=1)

    @staticmethod
    def backward(grad_out: np.ndarray, split: int) -> tuple[np.ndarray, np.ndarray]:
        return grad_out[:, :split], grad_out[:, split:]

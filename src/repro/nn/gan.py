"""DCGAN training machinery: generators, discriminators, selective
batch-norm placement, mixture-of-generators, and mode-collapse metrics.

Three paper claims live here:

* batch-norm placement — "this instability can be avoided by selectively
  applying batchnorm, e.g., only at the generator output layer and/or
  the discriminator input layer" (§II-B-2);
* mode-collapse mitigation — "a 'forward stable' TensorFlow-based DCGAN
  ... was utilized via an additional generator (hence, a mixture of
  generators) to assist in mitigating mode failure (a.k.a. mode
  collapse)" (§IV);
* forward stability — "a forward stable DCGAN does not amplify
  perturbations of the input set" (§IV), measured by
  :class:`repro.numerics.ForwardStabilityMonitor`.

The testbed task is the ring of Gaussians from :mod:`repro.nn.data`,
where mode coverage is directly countable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Literal, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.data import gaussian_mixture_batch, gaussian_mixture_centers
from repro.nn.layers import BatchNorm, Dense, Layer, LeakyReLU, Tanh
from repro.nn.network import Adam, Sequential, bce_with_logits_loss
from repro.numerics.conditioning import ForwardStabilityMonitor

BatchNormPlacement = Literal["none", "selective", "all"]

__all__ = [
    "build_generator",
    "build_discriminator",
    "GANConfig",
    "GANTrainer",
    "MixtureOfGenerators",
    "mode_coverage",
    "high_quality_fraction",
]


def build_generator(
    latent_dim: int = 4,
    hidden: int = 32,
    out_dim: int = 2,
    depth: int = 3,
    batchnorm: BatchNormPlacement = "selective",
    output_scale: float = 3.0,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """MLP generator mapping latent noise to data space.

    Batch-norm placement reproduces the paper's §II-B-2 claim that
    *selective* application avoids the oscillation/instability of
    normalizing every layer.  The paper's wording is ambiguous about
    which layers are exempt; we follow the DCGAN result it references
    (Radford et al.): ``'selective'`` normalizes hidden layers but
    exempts the generator *output* layer; ``'all'`` additionally
    normalizes the output (pre-Tanh) — the configuration that fights the
    output distribution and destabilizes training; ``'none'`` omits
    batch-norm entirely.
    """
    rng = rng or np.random.default_rng(0)
    if depth < 1:
        raise ConfigurationError("generator depth must be >= 1")
    layers: List[Layer] = []
    d_in = latent_dim
    for _ in range(depth):
        layers.append(Dense(d_in, hidden, rng=rng))
        if batchnorm in ("selective", "all"):
            layers.append(BatchNorm(hidden))
        layers.append(LeakyReLU(0.2))
        d_in = hidden
    layers.append(Dense(d_in, out_dim, rng=rng))
    if batchnorm == "all":
        layers.append(BatchNorm(out_dim))
    layers.append(Tanh())
    layers.append(_Scale(output_scale))
    return Sequential(layers)


class _Scale(Layer):
    """Constant output scaling so the Tanh range covers the data ring."""

    trainable = False

    def __init__(self, factor: float):
        self.factor = float(factor)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.factor * x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.factor * grad_out


def build_discriminator(
    in_dim: int = 2,
    hidden: int = 32,
    depth: int = 3,
    batchnorm: BatchNormPlacement = "selective",
    rng: np.random.Generator | None = None,
) -> Sequential:
    """MLP discriminator producing a single real/fake logit.

    ``'selective'`` normalizes hidden layers but exempts the
    discriminator *input* layer (the DCGAN guidance the paper
    references); ``'all'`` additionally normalizes the raw input, which
    erases the real/fake statistics the discriminator needs and is the
    unstable configuration the BNORM benchmark measures.
    """
    rng = rng or np.random.default_rng(1)
    if depth < 1:
        raise ConfigurationError("discriminator depth must be >= 1")
    layers: List[Layer] = []
    if batchnorm == "all":
        layers.append(BatchNorm(in_dim))
    d_in = in_dim
    for layer_idx in range(depth):
        layers.append(Dense(d_in, hidden, rng=rng))
        # first hidden layer is exempt under 'selective' (it plays the
        # input-layer role after the affine map)
        if batchnorm == "all" or (batchnorm == "selective" and layer_idx > 0):
            layers.append(BatchNorm(hidden))
        layers.append(LeakyReLU(0.2))
        d_in = hidden
    layers.append(Dense(d_in, 1, rng=rng))
    return Sequential(layers)


@dataclass(frozen=True)
class GANConfig:
    """Training hyperparameters for the Gaussian-mixture testbed."""

    latent_dim: int = 4
    hidden: int = 32
    depth: int = 3
    batch_size: int = 64
    lr: float = 2e-4
    beta1: float = 0.5
    n_modes: int = 8
    ring_radius: float = 2.0
    mode_sigma: float = 0.05
    batchnorm: BatchNormPlacement = "selective"

    def __post_init__(self):
        if self.batch_size < 2:
            raise ConfigurationError("batch_size must be >= 2")
        if self.batchnorm not in ("none", "selective", "all"):
            raise ConfigurationError(f"unknown batchnorm placement {self.batchnorm!r}")


@dataclass
class TrainTrace:
    """Per-step losses and periodic quality metrics."""

    d_losses: List[float] = field(default_factory=list)
    g_losses: List[float] = field(default_factory=list)
    coverage: List[int] = field(default_factory=list)
    quality: List[float] = field(default_factory=list)

    def loss_oscillation(self, window: int = 50) -> float:
        """Std-dev of the generator loss over the trailing window — the
        BNORM benchmark's oscillation metric."""
        tail = self.g_losses[-window:]
        return float(np.std(tail)) if tail else 0.0


class GANTrainer:
    """Single-generator DCGAN trainer on the Gaussian-mixture task."""

    def __init__(self, config: GANConfig | None = None, seed: int = 0):
        self.config = config or GANConfig()
        self.rng = np.random.default_rng(seed)
        cfg = self.config
        self.generator = build_generator(
            cfg.latent_dim, cfg.hidden, 2, cfg.depth, cfg.batchnorm,
            output_scale=1.5 * cfg.ring_radius, rng=self.rng,
        )
        self.discriminator = build_discriminator(
            2, cfg.hidden, cfg.depth, cfg.batchnorm, rng=self.rng
        )
        self.g_opt = Adam(self.generator, lr=cfg.lr, beta1=cfg.beta1)
        self.d_opt = Adam(self.discriminator, lr=cfg.lr, beta1=cfg.beta1)
        self.trace = TrainTrace()
        self.stability = ForwardStabilityMonitor(budget=50.0)

    def sample_latent(self, n: int) -> np.ndarray:
        return self.rng.standard_normal((n, self.config.latent_dim))

    def sample(self, n: int) -> np.ndarray:
        return self.generator.forward(self.sample_latent(n), training=False)

    def _real_batch(self) -> np.ndarray:
        cfg = self.config
        return gaussian_mixture_batch(
            cfg.batch_size, cfg.n_modes, cfg.ring_radius, cfg.mode_sigma, rng=self.rng
        )

    def train_step(self) -> tuple[float, float]:
        """One alternating D/G step; returns ``(d_loss, g_loss)``."""
        cfg = self.config
        # --- discriminator step
        real = self._real_batch()
        fake = self.generator.forward(self.sample_latent(cfg.batch_size), training=True)
        d_real = self.discriminator.forward(real, training=True)
        loss_r, grad_r = bce_with_logits_loss(d_real, np.ones_like(d_real))
        self.discriminator.backward(grad_r)
        grads_real = {k: g.copy() for k, g in self.discriminator.grads().items()}
        d_fake = self.discriminator.forward(fake, training=True)
        loss_f, grad_f = bce_with_logits_loss(d_fake, np.zeros_like(d_fake))
        self.discriminator.backward(grad_f)
        for k, g in self.discriminator.grads().items():
            g += grads_real[k]
        self.d_opt.step()
        d_loss = loss_r + loss_f

        # --- generator step (non-saturating loss)
        z = self.sample_latent(cfg.batch_size)
        fake = self.generator.forward(z, training=True)
        d_out = self.discriminator.forward(fake, training=True)
        g_loss, grad_g = bce_with_logits_loss(d_out, np.ones_like(d_out))
        grad_into_g = self.discriminator.backward(grad_g)
        self.generator.backward(grad_into_g)
        self.g_opt.step()

        self.trace.d_losses.append(d_loss)
        self.trace.g_losses.append(g_loss)
        return d_loss, g_loss

    def train(self, steps: int, metric_every: int = 100, n_metric_samples: int = 512) -> TrainTrace:
        cfg = self.config
        centers = gaussian_mixture_centers(cfg.n_modes, cfg.ring_radius)
        for step in range(1, steps + 1):
            self.train_step()
            if metric_every and step % metric_every == 0:
                samples = self.sample(n_metric_samples)
                self.trace.coverage.append(mode_coverage(samples, centers))
                self.trace.quality.append(high_quality_fraction(samples, centers, cfg.mode_sigma))
                self.stability.probe_map(
                    step,
                    lambda z: self.generator.forward(z, training=False),
                    self.sample_latent(8),
                    rng=self.rng,
                )
        return self.trace


class MixtureOfGenerators:
    """The paper's DCGAN #3 remedy: train K generators against one
    discriminator; each generator serves an equal share of every fake
    batch, so the mixture must spread across modes to fool D.
    """

    def __init__(self, n_generators: int = 2, config: GANConfig | None = None, seed: int = 0):
        if n_generators < 1:
            raise ConfigurationError("need at least one generator")
        self.config = config or GANConfig()
        self.rng = np.random.default_rng(seed)
        cfg = self.config
        self.generators = [
            build_generator(cfg.latent_dim, cfg.hidden, 2, cfg.depth, cfg.batchnorm,
                            output_scale=1.5 * cfg.ring_radius,
                            rng=np.random.default_rng(seed + 17 * k))
            for k in range(n_generators)
        ]
        self.discriminator = build_discriminator(2, cfg.hidden, cfg.depth, cfg.batchnorm,
                                                 rng=np.random.default_rng(seed + 999))
        self.g_opts = [Adam(g, lr=cfg.lr, beta1=cfg.beta1) for g in self.generators]
        self.d_opt = Adam(self.discriminator, lr=cfg.lr, beta1=cfg.beta1)
        self.trace = TrainTrace()

    def sample_latent(self, n: int) -> np.ndarray:
        return self.rng.standard_normal((n, self.config.latent_dim))

    def sample(self, n: int) -> np.ndarray:
        """Sample from the uniform mixture over generators."""
        k = len(self.generators)
        shares = [n // k + (1 if i < n % k else 0) for i in range(k)]
        outs = [
            g.forward(self.sample_latent(s), training=False)
            for g, s in zip(self.generators, shares) if s > 0
        ]
        return np.concatenate(outs, axis=0)

    def train_step(self) -> tuple[float, float]:
        cfg = self.config
        k = len(self.generators)
        share = max(cfg.batch_size // k, 1)
        real = gaussian_mixture_batch(cfg.batch_size, cfg.n_modes, cfg.ring_radius,
                                      cfg.mode_sigma, rng=self.rng)
        # --- D step on real + pooled fakes
        fakes = [g.forward(self.sample_latent(share), training=True) for g in self.generators]
        fake = np.concatenate(fakes, axis=0)
        d_real = self.discriminator.forward(real, training=True)
        loss_r, grad_r = bce_with_logits_loss(d_real, np.ones_like(d_real))
        self.discriminator.backward(grad_r)
        acc = {kk: g.copy() for kk, g in self.discriminator.grads().items()}
        d_fake = self.discriminator.forward(fake, training=True)
        loss_f, grad_f = bce_with_logits_loss(d_fake, np.zeros_like(d_fake))
        self.discriminator.backward(grad_f)
        for kk, g in self.discriminator.grads().items():
            g += acc[kk]
        self.d_opt.step()

        # --- each generator gets its own non-saturating update
        g_losses = []
        for gen, opt in zip(self.generators, self.g_opts):
            z = self.sample_latent(share)
            out = gen.forward(z, training=True)
            d_out = self.discriminator.forward(out, training=True)
            g_loss, grad_g = bce_with_logits_loss(d_out, np.ones_like(d_out))
            grad_in = self.discriminator.backward(grad_g)
            gen.backward(grad_in)
            opt.step()
            g_losses.append(g_loss)
        d_loss = loss_r + loss_f
        g_loss_mean = math.fsum(g_losses) / k
        self.trace.d_losses.append(d_loss)
        self.trace.g_losses.append(g_loss_mean)
        return d_loss, g_loss_mean

    def train(self, steps: int, metric_every: int = 100, n_metric_samples: int = 512) -> TrainTrace:
        cfg = self.config
        centers = gaussian_mixture_centers(cfg.n_modes, cfg.ring_radius)
        for step in range(1, steps + 1):
            self.train_step()
            if metric_every and step % metric_every == 0:
                samples = self.sample(n_metric_samples)
                self.trace.coverage.append(mode_coverage(samples, centers))
                self.trace.quality.append(high_quality_fraction(samples, centers, cfg.mode_sigma))
        return self.trace


def mode_coverage(samples: np.ndarray, centers: np.ndarray, max_dist_sigmas: float = 5.0,
                  sigma: float = 0.05, min_share: float = 0.01) -> int:
    """Number of mixture modes receiving at least ``min_share`` of the
    samples within ``max_dist_sigmas * sigma`` of their center."""
    samples = np.asarray(samples, dtype=np.float64)
    d = np.linalg.norm(samples[:, None, :] - centers[None, :, :], axis=2)
    nearest = np.argmin(d, axis=1)
    close = d[np.arange(samples.shape[0]), nearest] <= max_dist_sigmas * sigma
    covered = 0
    for k in range(centers.shape[0]):
        share = np.mean((nearest == k) & close)
        if share >= min_share:
            covered += 1
    return covered


def high_quality_fraction(samples: np.ndarray, centers: np.ndarray, sigma: float = 0.05,
                          within_sigmas: float = 3.0) -> float:
    """Fraction of samples within ``within_sigmas`` of *some* mode center."""
    samples = np.asarray(samples, dtype=np.float64)
    d = np.linalg.norm(samples[:, None, :] - centers[None, :, :], axis=2)
    return float(np.mean(d.min(axis=1) <= within_sigmas * sigma))

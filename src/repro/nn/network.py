"""Sequential network container, losses, and optimizers."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import Layer
from repro.numerics.stable_ops import log_softmax, stable_bce_with_logits, stable_sigmoid

__all__ = [
    "Sequential",
    "bce_with_logits_loss",
    "mse_loss",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "save_npz",
    "load_npz",
]


class Sequential(Layer):
    """A chain of layers with aggregate parameter bookkeeping."""

    def __init__(self, layers: Iterable[Layer]):
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ConfigurationError("Sequential needs at least one layer")

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def params(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, p in layer.params().items():
                out[f"{i}.{name}"] = p
        return out

    def grads(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, g in layer.grads().items():
                out[f"{i}.{name}"] = g
        return out

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self.params().items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.params()
        missing = set(params) - set(state)
        if missing:
            raise ConfigurationError(f"state dict missing keys: {sorted(missing)}")
        for k, p in params.items():
            if state[k].shape != p.shape:
                raise ConfigurationError(
                    f"shape mismatch for {k}: {state[k].shape} vs {p.shape}"
                )
            p[...] = state[k]


def bce_with_logits_loss(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy with the fused-sigmoid stable form.

    Returns ``(loss, dloss/dlogits)``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    loss = float(np.mean(stable_bce_with_logits(logits, targets)))
    grad = (stable_sigmoid(logits) - targets) / logits.size
    return loss, grad


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    return float(np.mean(diff**2)), 2.0 * diff / diff.size


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over integer labels, via the fused log-softmax.

    ``logits`` is (batch, classes); ``labels`` is (batch,) of ints.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64).ravel()
    logp = log_softmax(logits, axis=1)
    n = logits.shape[0]
    if n == 0:
        raise ConfigurationError("cross-entropy needs a non-empty batch")
    loss = float(-np.mean(logp[np.arange(n), labels]))
    grad = np.exp(logp)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def save_npz(net: Layer, path: str) -> None:
    """Persist a network's parameters to a ``.npz`` archive.

    Keys are the ``params()`` names; any layer stack whose parameter
    names are stable round-trips (Sequential, GridDetector, fire stacks).
    """
    np.savez(path, **{k: v for k, v in net.params().items()})


def load_npz(net: Layer, path: str) -> None:
    """Load parameters saved by :func:`save_npz` into *net* in place.

    Raises :class:`ConfigurationError` on missing keys or shape
    mismatches, mirroring ``Sequential.load_state_dict``.
    """
    with np.load(path) as data:
        params = net.params()
        missing = set(params) - set(data.files)
        if missing:
            raise ConfigurationError(f"archive missing keys: {sorted(missing)}")
        for k, p in params.items():
            if data[k].shape != p.shape:
                raise ConfigurationError(
                    f"shape mismatch for {k}: {data[k].shape} vs {p.shape}"
                )
            p[...] = data[k]


class SGD:
    """SGD with classical momentum."""

    def __init__(self, net: Layer, lr: float = 1e-2, momentum: float = 0.9):
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.net = net
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        params = self.net.params()
        grads = self.net.grads()
        for k, p in params.items():
            g = grads.get(k)
            if g is None:
                continue
            v = self._velocity.get(k)
            if v is None:
                v = np.zeros_like(p)
            v = self.momentum * v - self.lr * g
            self._velocity[k] = v
            p += v


class Adam:
    """Adam optimizer (the DCGAN default)."""

    def __init__(self, net: Layer, lr: float = 2e-4, beta1: float = 0.5,
                 beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.net = net
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        params = self.net.params()
        grads = self.net.grads()
        for k, p in params.items():
            g = grads.get(k)
            if g is None:
                continue
            m = self._m.get(k, np.zeros_like(p))
            v = self._v.get(k, np.zeros_like(p))
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            self._m[k], self._v[k] = m, v
            m_hat = m / (1 - self.beta1**self._t)  # numlint: disable=NL002 -- Adam bias correction: beta1 < 1 and t >= 1, so denominator in (0, 1]
            v_hat = v / (1 - self.beta2**self._t)  # numlint: disable=NL002 -- Adam bias correction: beta2 < 1 and t >= 1, so denominator in (0, 1]
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

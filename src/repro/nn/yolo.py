"""Miniature Darknet/YOLO-v3-style detector.

The paper uses YOLO v3 (a Darknet-53 variant) purely as the convolutional
substrate of its DCGAN and quantifies why full scale is untenable: "a
search space approach for a 106-layer YOLO network ... would still
necessitate the training of 10^106 models".  We reproduce the
*architecture family* at laptop scale: stacks of Darknet conv blocks
(Conv -> BatchNorm -> LeakyReLU) with stride-2 downsampling, ending in a
single-scale YOLO grid head that predicts per-cell objectness and class
scores over spectrogram "images".  The squeezed variant (MSY3I) swaps
conv blocks for fire layers in :mod:`repro.nn.msy3i`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError
from repro.nn.layers import BatchNorm, Conv2d, Layer, LeakyReLU
from repro.nn.network import Sequential, bce_with_logits_loss, softmax_cross_entropy
from repro.numerics.stable_ops import softmax, stable_sigmoid

__all__ = ["conv_block", "DarknetMiniConfig", "build_darknet_mini", "GridDetector"]


def conv_block(in_channels: int, out_channels: int, stride: int = 1,
               batchnorm: bool = True, rng: np.random.Generator | None = None) -> List[Layer]:
    """Darknet conv block: Conv3x3 (+BN) + LeakyReLU(0.1)."""
    layers: List[Layer] = [Conv2d(in_channels, out_channels, kernel_size=3, stride=stride, rng=rng)]
    if batchnorm:
        layers.append(BatchNorm(out_channels))
    layers.append(LeakyReLU(0.1))
    return layers


@dataclass(frozen=True)
class DarknetMiniConfig:
    """Shape of the miniature backbone.

    ``n_stages`` stride-2 stages double the channel width each time, so
    an input of ``grid * 2**n_stages`` pixels ends at a ``grid x grid``
    feature map — the YOLO cell grid.
    """

    in_channels: int = 1
    base_channels: int = 8
    n_stages: int = 3
    blocks_per_stage: int = 1
    batchnorm: bool = True

    def __post_init__(self):
        if self.base_channels < 1 or self.n_stages < 1 or self.blocks_per_stage < 1:
            raise ConfigurationError("invalid backbone configuration")


def build_darknet_mini(cfg: DarknetMiniConfig, rng: np.random.Generator | None = None) -> Sequential:
    """Assemble the backbone as a :class:`Sequential`."""
    rng = rng or np.random.default_rng(0)
    layers: List[Layer] = []
    c_in = cfg.in_channels
    c_out = cfg.base_channels
    for _stage in range(cfg.n_stages):
        layers.extend(conv_block(c_in, c_out, stride=2, batchnorm=cfg.batchnorm, rng=rng))
        for _ in range(cfg.blocks_per_stage - 1):
            layers.extend(conv_block(c_out, c_out, stride=1, batchnorm=cfg.batchnorm, rng=rng))
        c_in, c_out = c_out, c_out * 2
    return Sequential(layers)


class GridDetector:
    """Single-scale YOLO-style head over any backbone.

    Output map is ``(B, 1 + n_classes, S, S)``: channel 0 is the
    objectness logit per cell, the rest are class logits.  The loss is
    BCE on objectness over all cells plus cross-entropy on the class of
    positive cells — the single-scale core of the YOLO v3 loss.
    """

    def __init__(self, backbone: Sequential, backbone_out_channels: int,
                 n_classes: int = 2, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(1)
        self.backbone = backbone
        self.n_classes = n_classes
        self.head = Conv2d(backbone_out_channels, 1 + n_classes, kernel_size=1, pad=0, rng=rng)

    # ---- forward / backward -------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        feats = self.backbone.forward(x, training=training)
        return self.head.forward(feats, training=training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.head.backward(grad_out)
        return self.backbone.backward(g)

    def params(self):
        out = {f"backbone.{k}": v for k, v in self.backbone.params().items()}
        out.update({f"head.{k}": v for k, v in self.head.params().items()})
        return out

    def grads(self):
        out = {f"backbone.{k}": v for k, v in self.backbone.grads().items()}
        out.update({f"head.{k}": v for k, v in self.head.grads().items()})
        return out

    def n_params(self) -> int:
        return int(sum(p.size for p in self.params().values()))

    # ---- loss ---------------------------------------------------------------
    def loss_and_grad(self, pred: np.ndarray, obj_target: np.ndarray,
                      class_target: np.ndarray) -> tuple[float, np.ndarray]:
        """YOLO-mini loss.

        ``obj_target`` is (B, S, S) in {0,1}; ``class_target`` is
        (B, S, S) of int labels (ignored where objectness is 0).
        Returns ``(loss, dloss/dpred)``.
        """
        b, c, s1, s2 = pred.shape
        if obj_target.shape != (b, s1, s2):
            raise DimensionError(
                f"objectness target shape {obj_target.shape} != {(b, s1, s2)}"
            )
        grad = np.zeros_like(pred)
        obj_logits = pred[:, 0]
        obj_loss, obj_grad = bce_with_logits_loss(obj_logits, obj_target)
        grad[:, 0] = obj_grad

        pos = obj_target > 0.5
        cls_loss = 0.0
        if np.any(pos) and self.n_classes > 0:
            cls_logits = pred[:, 1:].transpose(0, 2, 3, 1)[pos]  # (P, n_classes)
            labels = np.asarray(class_target)[pos].astype(int)
            cls_loss, cls_grad = softmax_cross_entropy(cls_logits, labels)
            full = np.zeros((b, s1, s2, self.n_classes))
            full[pos] = cls_grad
            grad[:, 1:] = full.transpose(0, 3, 1, 2)
        return obj_loss + cls_loss, grad

    # ---- inference ----------------------------------------------------------
    def predict(self, x: np.ndarray, threshold: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(objectness_prob, class_pred)`` maps of shape (B,S,S)."""
        pred = self.forward(x, training=False)
        obj = stable_sigmoid(pred[:, 0])
        cls = np.argmax(softmax(pred[:, 1:], axis=1), axis=1) if self.n_classes else np.zeros_like(obj, dtype=int)
        return obj, cls

    def cell_accuracy(self, x: np.ndarray, obj_target: np.ndarray,
                      class_target: np.ndarray, threshold: float = 0.5) -> dict:
        """Detection quality: objectness accuracy, recall, and class
        accuracy on positive cells."""
        obj, cls = self.predict(x, threshold)
        detected = obj > threshold
        truth = obj_target > 0.5
        acc = float(np.mean(detected == truth))
        recall = float(np.mean(detected[truth])) if np.any(truth) else 1.0
        if np.any(truth) and self.n_classes:
            cls_acc = float(np.mean(cls[truth] == np.asarray(class_target)[truth]))
        else:
            cls_acc = 1.0
        return {"objectness_accuracy": acc, "recall": recall, "class_accuracy": cls_acc}

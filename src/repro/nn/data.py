"""Synthetic training data for the NN workloads.

Two generators:

* :func:`spectrogram_detection_batch` — "5G signal detection" images:
  log-spectrograms of noise with tone or chirp bursts placed in random
  grid cells; labels are per-cell objectness and class.  This is the
  substitute for the paper's (unavailable) RF detection workload and
  exercises the identical STFT -> CNN code path.
* :func:`gaussian_mixture_batch` — the classic 2-D ring-of-Gaussians GAN
  task used by the FIG2/BNORM experiments to measure mode collapse.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.signal.spectrogram import linear_chirp, multitone, noisy, spectrogram

__all__ = [
    "spectrogram_detection_batch",
    "gaussian_mixture_batch",
    "gaussian_mixture_centers",
]


def spectrogram_detection_batch(
    batch_size: int,
    grid: int = 4,
    cell_pixels: int = 8,
    snr_db: float = 10.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate detection images with per-cell labels.

    Returns ``(images, obj_target, class_target)`` with shapes
    ``(B, 1, grid*cell_pixels, grid*cell_pixels)``, ``(B, grid, grid)``,
    ``(B, grid, grid)``.  Class 0 = tone, class 1 = chirp.
    """
    rng = rng or np.random.default_rng(0)
    if grid < 1 or cell_pixels < 2:
        raise ConfigurationError("grid >= 1 and cell_pixels >= 2 required")
    size = grid * cell_pixels
    # signal geometry: the spectrogram must come out (size, size).
    # use window_length = n_fft = 2*(size-1)? Simpler: synthesize image
    # directly in the time-frequency plane from real STFTs of short
    # signals, then resample -- here we build the exact-size spectrogram
    # by choosing stft params that yield >= size bins/frames and cropping.
    window_length = 2 * size
    hop = window_length // 4
    n_fft = 2 * size
    n_samples = hop * size  # exactly `size` STFT frames, aligned to time cells

    images = np.zeros((batch_size, 1, size, size))
    obj = np.zeros((batch_size, grid, grid))
    cls = np.zeros((batch_size, grid, grid), dtype=int)
    for b in range(batch_size):
        sig = np.zeros(n_samples)
        n_events = rng.integers(1, 3)
        for _ in range(n_events):
            gi = int(rng.integers(0, grid))  # frequency cell
            gj = int(rng.integers(0, grid))  # time cell
            klass = int(rng.integers(0, 2))
            # map cell to normalized frequency band / sample range
            f_lo = 0.5 * gi / grid
            f_hi = 0.5 * (gi + 1) / grid
            t_lo = int(n_samples * gj / grid)
            t_hi = int(n_samples * (gj + 1) / grid)
            length = max(t_hi - t_lo, 8)
            if klass == 0:
                burst = multitone(length, [0.5 * (f_lo + f_hi)])
            else:
                burst = linear_chirp(length, f0=f_lo + 0.01, f1=max(f_hi - 0.01, f_lo + 0.02))
            sig[t_lo : t_lo + length] += burst[: n_samples - t_lo]
            obj[b, gi, gj] = 1.0
            cls[b, gi, gj] = klass
        sig = noisy(sig, snr_db=snr_db, rng=rng)
        spec = spectrogram(sig, window="hann", window_length=window_length,
                           hop=hop, n_fft=n_fft)
        # crop to (size, size): low-frequency half, first `size` frames
        img = np.log1p(spec[:size, :size])
        if img.shape != (size, size):
            padded = np.zeros((size, size))
            padded[: img.shape[0], : img.shape[1]] = img
            img = padded
        # flip so frequency cell gi=0 is the top row block
        images[b, 0] = (img - img.mean()) / (img.std() + 1e-8)
    return images, obj, cls


def gaussian_mixture_centers(n_modes: int = 8, radius: float = 2.0) -> np.ndarray:
    """Mode centers on a ring — the canonical mode-collapse testbed."""
    if n_modes < 1:
        raise ConfigurationError("need at least one mode")
    angles = 2.0 * np.pi * np.arange(n_modes) / n_modes
    return radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)


def gaussian_mixture_batch(
    batch_size: int,
    n_modes: int = 8,
    radius: float = 2.0,
    sigma: float = 0.05,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample (B, 2) points from the ring of Gaussians."""
    rng = rng or np.random.default_rng(0)
    centers = gaussian_mixture_centers(n_modes, radius)
    idx = rng.integers(0, n_modes, size=batch_size)
    return centers[idx] + sigma * rng.standard_normal((batch_size, 2))

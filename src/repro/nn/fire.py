"""Fire layers and special fire layers (SqueezeNet / SqueezeDet).

Paper §I and §II-B-1: "the notion of fire modules/layers from SqueezeNet
... was utilized to replace convolution layers (a.k.a. Conv) with Fire
Layers (FL), and a SqueezeDet adaptation was incorporated for the
replacement of certain Conv with Special Fire Layers (SFL). ... the
number of hyperparameters as well as the number of filters of the
compression portion of the fire layers are reduced."

A fire layer squeezes the channel count with 1x1 convolutions, then
expands with parallel 1x1 and 3x3 branches whose outputs concatenate —
dramatically fewer parameters than a plain 3x3 conv of the same output
width.  The special fire layer (SqueezeDet) adds a stride to the expand
branches so it can also replace *downsampling* convs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import Concat, Conv2d, Layer, LeakyReLU

__all__ = ["FireLayer", "SpecialFireLayer", "conv_equivalent_params"]


class FireLayer(Layer):
    """SqueezeNet fire module: squeeze(1x1) -> [expand 1x1 || expand 3x3].

    ``squeeze_ratio`` controls the compression: the squeeze width is
    ``max(1, int(squeeze_ratio * out_channels))``.  Output channels are
    split evenly between the two expand branches.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 squeeze_ratio: float = 0.125, stride: int = 1,
                 rng: np.random.Generator | None = None):
        if out_channels % 2 != 0:
            raise ConfigurationError("FireLayer out_channels must be even (two expand branches)")
        if not 0.0 < squeeze_ratio <= 1.0:
            raise ConfigurationError("squeeze_ratio must be in (0, 1]")
        rng = rng or np.random.default_rng(0)
        squeeze_channels = max(1, int(round(squeeze_ratio * out_channels)))
        half = out_channels // 2
        self.squeeze = Conv2d(in_channels, squeeze_channels, kernel_size=1, pad=0, rng=rng)
        self.act_s = LeakyReLU(0.1)
        self.expand1 = Conv2d(squeeze_channels, half, kernel_size=1, stride=stride, pad=0, rng=rng)
        self.expand3 = Conv2d(squeeze_channels, half, kernel_size=3, stride=stride, pad=1, rng=rng)
        self.act_e = LeakyReLU(0.1)
        self.squeeze_channels = squeeze_channels
        self.out_channels = out_channels
        self._half = half

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        s = self.act_s.forward(self.squeeze.forward(x, training), training)
        e1 = self.expand1.forward(s, training)
        e3 = self.expand3.forward(s, training)
        return self.act_e.forward(Concat.forward(e1, e3), training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.act_e.backward(grad_out)
        g1, g3 = Concat.backward(g, self._half)
        gs = self.expand1.backward(g1) + self.expand3.backward(g3)
        gs = self.act_s.backward(gs)
        return self.squeeze.backward(gs)

    def params(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for prefix, layer in (("squeeze", self.squeeze), ("expand1", self.expand1), ("expand3", self.expand3)):
            for name, p in layer.params().items():
                out[f"{prefix}.{name}"] = p
        return out

    def grads(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for prefix, layer in (("squeeze", self.squeeze), ("expand1", self.expand1), ("expand3", self.expand3)):
            for name, g in layer.grads().items():
                out[f"{prefix}.{name}"] = g
        return out


class SpecialFireLayer(FireLayer):
    """SqueezeDet special fire layer: a fire module with stride 2 in the
    expand branches, replacing strided (downsampling) convolutions."""

    def __init__(self, in_channels: int, out_channels: int,
                 squeeze_ratio: float = 0.125,
                 rng: np.random.Generator | None = None):
        super().__init__(in_channels, out_channels, squeeze_ratio=squeeze_ratio,
                         stride=2, rng=rng)


def conv_equivalent_params(in_channels: int, out_channels: int, kernel_size: int = 3) -> int:
    """Parameter count of the plain conv a fire layer replaces — the
    baseline for the SQUEEZE benchmark's reduction factor."""
    return out_channels * (in_channels * kernel_size * kernel_size + 1)

"""Run scenario packs through the serving layer, canonically reported.

:func:`run_pack` builds a pack's :class:`~repro.serve.ServeConfig`,
drives a fresh :class:`~repro.serve.QoSService` for the pack's
duration on any executor backend, and emits per-scenario metrics into
the installed :class:`~repro.obs.MetricsRegistry`.
:func:`canonical_report` projects the result to a JSON-ready dict whose
every field is simulated-time-deterministic — no wall-clock values — so
:func:`canonical_json` is **byte-identical** across the
serial/thread/process backends and golden-pinnable under
``tests/goldens/``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.obs import get_metrics, get_tracer
from repro.parallel import BACKENDS, Executor, make_executor
from repro.scenarios.packs import ScenarioPack, get_pack
from repro.serve import QoSService, ServeConfig, ServeReport

__all__ = ["canonical_json", "canonical_report", "run_canonical", "run_pack"]


def _config_fingerprint(config: ServeConfig, duration_s: float) -> str:
    """Stable hash of the knobs that determine a run's event stream.

    Covers the parameters whose silent drift would invalidate a golden:
    fleet size, seed, tick, arrival shape (including the trace scales),
    and the shard calibration.  Dataclass reprs are deterministic for
    these frozen configs, so the repr is a faithful serialization.
    """
    payload = repr((config.n_cells, config.seed, config.tick_s,
                    config.drain_grace_s, config.arrivals, config.shard,
                    config.channel, duration_s))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_pack(pack: ScenarioPack | str,
             executor: Optional[Executor] = None,
             ) -> Tuple[ScenarioPack, ServeReport]:
    """Run one scenario pack end-to-end through :class:`QoSService`.

    ``pack`` may be a registry name or a pack object; ``executor`` any
    :class:`repro.parallel.Executor` (``None`` = serial in-process).
    Per-scenario telemetry lands in the installed metrics registry
    under ``scenario.*`` with a ``scenario=<name>`` label.
    """
    if isinstance(pack, str):
        pack = get_pack(pack)
    config = pack.build()
    service = QoSService(config, executor=executor)
    with get_tracer().span("scenario.run", scenario=pack.name,
                           seed=pack.seed, duration_s=pack.duration_s):
        report = service.run(pack.duration_s)
    metrics = get_metrics()
    metrics.counter("scenario.runs", scenario=pack.name).inc()
    metrics.gauge("scenario.offered_ues",
                  scenario=pack.name).set(float(report.total_offered_ues))
    metrics.gauge("scenario.served_ues",
                  scenario=pack.name).set(float(report.total_served_ues))
    metrics.gauge("scenario.shed_ues", scenario=pack.name).set(
        float(sum(report.shed_ues.values())))
    metrics.gauge("scenario.frames", scenario=pack.name).set(
        float(report.frames))
    for cls, rate in sorted(report.shed_rate.items()):
        metrics.gauge("scenario.shed_rate", scenario=pack.name,
                      service=cls).set(rate)
    return pack, report


def canonical_report(pack: ScenarioPack, report: ServeReport) -> dict:
    """The golden-pinnable projection of one scenario run.

    Every field is a pure function of the pack (simulated time only):
    the :meth:`ServeReport.to_dict` summary — whose latency percentiles
    are *simulated* queueing delays, not wall time — plus the pack
    identity and a config fingerprint that ties the golden to the exact
    workload that produced it.
    """
    config = pack.build()
    trace = config.arrivals.trace
    out = {
        "scenario": pack.name,
        "description": pack.description,
        "seed": pack.seed,
        "duration_s": pack.duration_s,
        "config_fingerprint": _config_fingerprint(config, pack.duration_s),
        "trace": None if trace is None else {
            "step_s": trace.step_s,
            "steps": len(trace.scales),
            "max_scale": trace.max_scale,
            "fingerprint": hashlib.sha256(
                repr(trace.scales).encode("utf-8")).hexdigest()[:16],
        },
        "report": report.to_dict(),
    }
    return out


def canonical_json(canonical: dict) -> str:
    """Byte-stable rendering of a canonical report (sorted keys, fixed
    indentation, trailing newline) — the exact content of a scenario
    golden file and of the cross-backend identity assertions."""
    return json.dumps(canonical, indent=2, sort_keys=True) + "\n"


def run_canonical(name: str, backend: Optional[str] = None,
                  max_workers: int = 2) -> dict:
    """Name + backend -> canonical report dict (the CLI's workhorse)."""
    if backend is None or backend == "serial":
        pack, report = run_pack(name)
    else:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        with make_executor(backend, max_workers=max_workers) as executor:
            pack, report = run_pack(name, executor=executor)
    return canonical_report(pack, report)

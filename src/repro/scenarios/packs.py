"""The scenario pack registry: four frozen, seeded serving workloads.

Each pack is a pure function of its (frozen-in) seed.  Fading-driven
packs synthesize their arrival-rate trace through the streaming signal
front-end — seeded complex white noise, Doppler-shaped by an
:class:`~repro.signal.streaming.OverlapSaveConvolver` lowpass, envelope
detected, then decimated to the trace rate by an artifact-gated
:class:`~repro.signal.decimate.MultiStageDecimator` with its startup
transient *discarded by construction* (the gates make the transient
length an explicit number, so the trace never contains ramp-in).

The four packs:

* ``mmtc_burst_flood`` — mMTC-heavy mix under a 10x MMPP burst flood
  (synchronized sensor wake-ups hammering tight queues).
* ``urllc_handover_storm`` — URLLC-heavy mix with Gilbert-Elliott
  handover storms dumping session slugs between cells.
* ``multirat_failover`` — a mid-run RAT outage: the surviving RAT's
  cells absorb a step-doubling of load (trace-driven), with handover
  storms layered on top.
* ``fading_regime_sweep`` — arrival intensity modulated by a Rayleigh
  fading envelope swept from slow to fast Doppler, exercising the
  service across fading regimes in one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.parallel import derive_seed
from repro.qos.mobility import GilbertElliottConfig
from repro.qos.traffic import MMPPConfig, ServiceClass
from repro.serve import ArrivalConfig, RateTrace, ServeConfig, ShardConfig
from repro.signal.decimate import design_decimator
from repro.signal.filters import ArtifactGates, design_lowpass
from repro.signal.streaming import OverlapSaveConvolver

__all__ = [
    "SCENARIO_PACKS",
    "FadingSpec",
    "ScenarioPack",
    "generate_fading_trace",
    "get_pack",
    "list_packs",
]


@dataclass(frozen=True)
class FadingSpec:
    """How to synthesize a fading envelope through the streaming front-end.

    White complex noise at ``input_rate_hz`` is Doppler-shaped by a
    lowpass with cutoff ``doppler_hz`` (Jakes-flat approximation), the
    Rayleigh envelope is taken, and the result is decimated by
    ``input_rate_hz / trace_rate_hz`` through an artifact-gated
    multi-stage chain.  ``scale_lo``/``scale_hi`` clamp the normalized
    envelope so a deep fade never silences arrivals entirely and a
    constructive peak cannot explode them.
    """

    doppler_hz: float = 2.0
    input_rate_hz: float = 400.0
    trace_rate_hz: float = 10.0
    scale_lo: float = 0.3
    scale_hi: float = 3.0

    def __post_init__(self):
        if self.doppler_hz <= 0 or self.input_rate_hz <= 0 \
                or self.trace_rate_hz <= 0:
            raise ConfigurationError("fading rates must be positive")
        ratio = self.input_rate_hz / self.trace_rate_hz
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
            raise ConfigurationError(
                "input_rate_hz must be an integer multiple of trace_rate_hz")
        if not 0.0 < self.scale_lo <= self.scale_hi:
            raise ConfigurationError("need 0 < scale_lo <= scale_hi")
        if 2.0 * self.doppler_hz >= self.trace_rate_hz:
            raise ConfigurationError(
                "trace_rate_hz must exceed twice the Doppler spread")

    @property
    def decimation_factor(self) -> int:
        return int(round(self.input_rate_hz / self.trace_rate_hz))


def generate_fading_trace(spec: FadingSpec, duration_s: float,
                          seed: int) -> RateTrace:
    """Synthesize a seeded Rayleigh-fading :class:`RateTrace`.

    The generation chain is the streaming front-end end to end:
    overlap-save Doppler filtering of I/Q noise, envelope detection,
    artifact-gated polyphase decimation — fed in chunks, exactly the way
    a live sample transport would.  The decimator's declared startup
    transient (plus the Doppler filter's warmup) is generated *extra*
    and discarded, so the returned trace holds only settled envelope.
    The trace is normalized to unit mean and clamped to the spec's
    scale band.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    rng = np.random.default_rng(derive_seed(seed, 0, "scenario.fading"))
    cutoff = spec.doppler_hz / spec.input_rate_hz  # normalized cycles/sample
    # Doppler shaping filter: narrow lowpass, gated like any front-end
    # filter (ripple is irrelevant for a stochastic envelope, so only
    # the rejection gate applies)
    taps, _report = design_lowpass(
        pass_edge=cutoff, stop_edge=min(3.0 * cutoff, 0.45), atten_db=70.0,
        gates=ArtifactGates(passband_ripple_db=None, stopband_atten_db=55.0,
                            noise_floor_db=None))
    decimator = design_decimator(
        spec.decimation_factor, atten_db=70.0, passband=0.8,
        gates=ArtifactGates(passband_ripple_db=0.1, stopband_atten_db=55.0,
                            noise_floor_db=None))
    warmup = (len(taps) - 1) + decimator.startup_transient_samples
    # one extra decimation period of margin so the post-warmup slice can
    # never come up a step short of the requested duration
    n_samples = (int(np.ceil(duration_s * spec.input_rate_hz))
                 + warmup + decimator.factor)
    conv_i = OverlapSaveConvolver(taps)
    conv_q = OverlapSaveConvolver(taps)
    env_parts = []
    chunk = 2048
    for start in range(0, n_samples, chunk):
        n = min(chunk, n_samples - start)
        noise = rng.standard_normal((2, n))
        i_part = conv_i.process(noise[0])
        q_part = conv_q.process(noise[1])
        env_parts.append(decimator.process(
            np.hypot(i_part, q_part)))
    env_parts.append(decimator.process(np.hypot(conv_i.flush(),
                                                conv_q.flush())))
    envelope = np.concatenate(env_parts)
    settle = int(np.ceil(warmup / decimator.factor))  # numlint: disable=NL002 -- MultiStageDecimator.factor is a product of stage factors validated >= 1
    envelope = envelope[settle:]
    n_steps = int(np.ceil(duration_s * spec.trace_rate_hz))
    if envelope.size < n_steps:
        raise ConfigurationError(
            "fading trace came up short: duration too short for the spec")
    envelope = envelope[:n_steps]
    if not np.any(envelope > 0):
        raise ConfigurationError(
            "fading trace degenerate: envelope has no positive mass")
    scales = envelope / np.mean(envelope)  # numlint: disable=NL002 -- guarded: the branch above rejects all-zero envelopes
    scales = np.clip(scales, spec.scale_lo, spec.scale_hi)
    return RateTrace(step_s=1.0 / spec.trace_rate_hz,
                     scales=tuple(float(s) for s in scales))


@dataclass(frozen=True)
class ScenarioPack:
    """One frozen serving workload: name, duration, and a config factory.

    ``build`` returns a fresh :class:`ServeConfig` (packs are immutable
    descriptions; services are built per run).  The factory, not a
    stored config, keeps pack construction lazy — fading packs only
    synthesize their traces when actually run.
    """

    name: str
    description: str
    duration_s: float
    seed: int
    build: Callable[[], ServeConfig] = field(repr=False)

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ConfigurationError("pack duration_s must be positive")


# one tight shard config shared by the packs: small queues so the storm
# scenarios genuinely overflow them and the shed policy is exercised
def _pack_shard() -> ShardConfig:
    return ShardConfig(max_depth=16, max_age_s=2.0)


def _mmtc_burst_flood() -> ServeConfig:
    arrivals = ArrivalConfig(
        base_rate_hz=2.0,
        batch_ues=12,
        mmpp=MMPPConfig(idle_rate_hz=2.0, burst_rate_hz=20.0,
                        mean_idle_s=1.5, mean_burst_s=0.8),
        mix={ServiceClass.EMBB: 0.15, ServiceClass.URLLC: 0.1,
             ServiceClass.MMTC: 0.75},
    )
    return ServeConfig(n_cells=2, seed=101, tick_s=0.1,
                       arrivals=arrivals, shard=_pack_shard())


def _urllc_handover_storm() -> ServeConfig:
    arrivals = ArrivalConfig(
        base_rate_hz=2.5,
        batch_ues=10,
        handover=GilbertElliottConfig(p_good_to_bad=0.25, p_bad_to_good=0.5),
        handover_step_s=0.5,
        storm_ues=40,
        mix={ServiceClass.EMBB: 0.35, ServiceClass.URLLC: 0.45,
             ServiceClass.MMTC: 0.2},
    )
    return ServeConfig(n_cells=3, seed=202, tick_s=0.1,
                       arrivals=arrivals, shard=_pack_shard())


#: simulated time of the RAT outage in the failover pack
_FAILOVER_AT_S = 2.0
_FAILOVER_DURATION_S = 5.0


def _multirat_failover() -> ServeConfig:
    # the failover step: unit load until the outage, then the surviving
    # RAT absorbs the failed RAT's sessions (2.2x, not 2x — reattach
    # retries add overhead), decaying slightly as sessions complete
    step_s = 0.25
    n_steps = int(_FAILOVER_DURATION_S / step_s)
    outage_step = int(_FAILOVER_AT_S / step_s)
    scales = tuple(
        1.0 if i < outage_step
        else (2.2 if i < outage_step + 4 else 1.8)
        for i in range(n_steps))
    arrivals = ArrivalConfig(
        base_rate_hz=3.0,
        batch_ues=10,
        trace=RateTrace(step_s=step_s, scales=scales),
        handover=GilbertElliottConfig(p_good_to_bad=0.3, p_bad_to_good=0.4),
        handover_step_s=0.5,
        storm_ues=30,
        mix={ServiceClass.EMBB: 0.4, ServiceClass.URLLC: 0.25,
             ServiceClass.MMTC: 0.35},
    )
    return ServeConfig(n_cells=3, seed=303, tick_s=0.1,
                       arrivals=arrivals, shard=_pack_shard())


_SWEEP_DURATION_S = 5.0


def _fading_regime_sweep() -> ServeConfig:
    # slow fading (pedestrian Doppler) for the first half, fast fading
    # (vehicular) for the second: two seeded traces stitched end to end
    half = _SWEEP_DURATION_S / 2.0
    slow = generate_fading_trace(
        FadingSpec(doppler_hz=1.0, input_rate_hz=400.0, trace_rate_hz=10.0),
        half, seed=404)
    fast = generate_fading_trace(
        FadingSpec(doppler_hz=4.0, input_rate_hz=400.0, trace_rate_hz=10.0),
        half, seed=405)
    trace = RateTrace(step_s=slow.step_s, scales=slow.scales + fast.scales)
    arrivals = ArrivalConfig(
        base_rate_hz=3.0,
        batch_ues=12,
        trace=trace,
        mix={ServiceClass.EMBB: 0.5, ServiceClass.URLLC: 0.2,
             ServiceClass.MMTC: 0.3},
    )
    return ServeConfig(n_cells=2, seed=404, tick_s=0.1,
                       arrivals=arrivals, shard=_pack_shard())


SCENARIO_PACKS: Dict[str, ScenarioPack] = {
    pack.name: pack
    for pack in (
        ScenarioPack(
            name="mmtc_burst_flood",
            description="mMTC-heavy mix under a 10x MMPP burst flood "
                        "(synchronized wake-ups against tight queues)",
            duration_s=5.0, seed=101, build=_mmtc_burst_flood),
        ScenarioPack(
            name="urllc_handover_storm",
            description="URLLC-heavy mix with Gilbert-Elliott handover "
                        "storms slugging sessions between cells",
            duration_s=5.0, seed=202, build=_urllc_handover_storm),
        ScenarioPack(
            name="multirat_failover",
            description="mid-run RAT outage: surviving cells absorb a "
                        "trace-driven load step plus handover storms",
            duration_s=_FAILOVER_DURATION_S, seed=303,
            build=_multirat_failover),
        ScenarioPack(
            name="fading_regime_sweep",
            description="arrival intensity modulated by a streamed "
                        "Rayleigh fading envelope swept slow->fast Doppler",
            duration_s=_SWEEP_DURATION_S, seed=404,
            build=_fading_regime_sweep),
    )
}


def list_packs() -> Tuple[str, ...]:
    """Registered pack names, sorted for stable CLI/report output."""
    return tuple(sorted(SCENARIO_PACKS))


def get_pack(name: str) -> ScenarioPack:
    if name not in SCENARIO_PACKS:
        known = ", ".join(list_packs())
        raise ConfigurationError(
            f"unknown scenario pack {name!r}; known packs: {known}")
    return SCENARIO_PACKS[name]

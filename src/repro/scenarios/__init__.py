"""Named, frozen, seeded scenario packs for the QoS serving layer.

A :class:`ScenarioPack` freezes one reproducible serving workload: an
arrival process (optionally modulated by a fading trace generated
through the :mod:`repro.signal` streaming front-end), a
:class:`~repro.serve.ServeConfig`, and a duration.  Packs are the
serving stack's fixed yardsticks — the same role Salman et al.'s
barrier benchmarks play for verification (PAPERS.md): every pack runs
end-to-end through :class:`repro.serve.QoSService` on simulated time,
emits a canonical JSON report that is bit-identical across the
serial/thread/process executor backends, and is golden-pinned under
``tests/goldens/``.

Run from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios run urllc_handover_storm --backend process

See docs/SIGNAL_STREAMING.md for the pack registry and the fading
front-end that feeds it.
"""

from repro.scenarios.packs import (
    SCENARIO_PACKS,
    FadingSpec,
    ScenarioPack,
    generate_fading_trace,
    get_pack,
    list_packs,
)
from repro.scenarios.runner import (
    canonical_json,
    canonical_report,
    run_canonical,
    run_pack,
)

__all__ = [
    "SCENARIO_PACKS",
    "FadingSpec",
    "ScenarioPack",
    "canonical_json",
    "canonical_report",
    "generate_fading_trace",
    "get_pack",
    "list_packs",
    "run_canonical",
    "run_pack",
]

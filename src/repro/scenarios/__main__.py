"""``python -m repro.scenarios run <name>`` — scenario pack CLI.

Two subcommands::

    python -m repro.scenarios list
    python -m repro.scenarios run mmtc_burst_flood --backend process \
        --json report.json

``run`` drives the named pack end-to-end through
:class:`repro.serve.QoSService` on the chosen executor backend, prints
the ops-style summary (:func:`repro.obs.render_scenario_summary`), and
optionally writes the canonical JSON report — the byte-identical payload
the scenario goldens under ``tests/goldens/`` pin.
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    import argparse

    from repro.exceptions import ReproError
    from repro.obs import render_scenario_summary
    from repro.parallel import BACKENDS
    from repro.scenarios.packs import SCENARIO_PACKS, list_packs
    from repro.scenarios.runner import canonical_json, run_canonical

    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run frozen, seeded QoS serving scenario packs and "
                    "emit their canonical reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered scenario packs")

    run = sub.add_parser(
        "run", help="run one pack end-to-end through repro.serve")
    run.add_argument("name", help="pack name (see `list`)")
    run.add_argument("--backend", choices=BACKENDS, default="serial",
                     help="executor backend; reports are byte-identical "
                          "across all of them (default: serial)")
    run.add_argument("--max-workers", type=int, default=2,
                     help="worker count for thread/process backends")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also write the canonical JSON report here "
                          "('-' for stdout instead of the summary)")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in list_packs():
            pack = SCENARIO_PACKS[name]
            print(f"{name:>24}  seed={pack.seed:<5} "
                  f"{pack.duration_s:.1f}s  {pack.description}")
        return 0

    try:
        canonical = run_canonical(args.name, backend=args.backend,
                                  max_workers=args.max_workers)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rendered = canonical_json(canonical)
    if args.json == "-":
        sys.stdout.write(rendered)
        return 0
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(rendered)
    sys.stdout.write(render_scenario_summary(canonical))
    return 0


if __name__ == "__main__":
    sys.exit(main())

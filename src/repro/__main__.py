"""``python -m repro`` — a one-minute tour of the library.

Runs the Fig. 3 numerical-issue detector battery, a miniature RCR stack,
and one QoS resource-allocation frame, printing a compact report.
"""

from __future__ import annotations

import numpy as np


def main() -> None:
    print("repro — Robust Convex Relaxations for diverse QoS (ICDCS 2021 reproduction)")
    print("=" * 76)

    print("\n[1/3] Fig. 3 numerical-issue detector battery")
    from repro.signal import run_detectors

    for issue in run_detectors():
        print("   " + issue.as_row())

    print("\n[2/3] RCR architectural stack (Fig. 1), minimal budgets")
    from repro.core import run_rcr_stack

    report = run_rcr_stack(swarm_size=4, generations=2,
                           tuning_train_steps=6, robust_epochs=6, seed=0)
    for stage in report.stages:
        keys = ", ".join(f"{k}={v:.3g}" for k, v in list(stage.metrics.items())[:4])
        print(f"   {stage.name:18s} ({stage.wall_time:5.2f}s)  {keys}")

    print("\n[3/3] one QoS RRA frame (3 users x 6 blocks)")
    from repro.qos import (
        ChannelConfig, ChannelModel, QoSRequirement, RRAProblem, ServiceClass,
        UserSession, solve_rra_greedy, solve_rra_relaxed,
    )

    rng = np.random.default_rng(0)
    ch = ChannelModel(ChannelConfig(n_blocks=6), rng=rng)
    users = [UserSession(i, ServiceClass.EMBB,
                         QoSRequirement(1e5, 50.0, 0.99, 1)) for i in range(3)]
    problem = RRAProblem(gains=ch.gains(3), users=users,
                         power_levels_mw=np.array([50.0, 100.0]),
                         total_power_mw=480.0, noise_mw=ch.noise_linear_mw)
    for res in (solve_rra_relaxed(problem), solve_rra_greedy(problem)):
        print(f"   {res.method:>8s}: {res.total_rate / 1e6:6.2f} Mb/s, "
              f"QoS ok={res.qos_ok}, {res.wall_time:.3f}s")

    print("\nSee examples/ for full walkthroughs and benchmarks/ for the")
    print("paper-figure reproductions (pytest benchmarks/ --benchmark-only).")


if __name__ == "__main__":
    main()

"""Network slicing: bandwidth partitioning across service classes.

"While the concepts of network slicing and Software-Defined Networks
offer a framework for supporting diverse sets of QoS, ultimately it
comes down to the resource management algorithm within an operator's
control plane" (§I).  This module is that algorithm for a single cell:
split the bandwidth among eMBB/URLLC/mMTC slices to maximize a
proportional-fairness-style quadratic utility subject to per-slice rate
floors — a convex QP — and, with integer slice activation decisions, a
convex MIQP handed to branch-and-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.convex.problem import QPProblem, QuadraticForm
from repro.convex.qp import solve_qp
from repro.minlp.milp import solve_miqp
from repro.minlp.model import MIQPModel
from repro.qos.traffic import ServiceClass

__all__ = ["SliceSpec", "SlicingResult", "allocate_slices", "allocate_slices_with_activation"]


@dataclass(frozen=True)
class SliceSpec:
    """One slice's demand model.

    Rate is modeled as ``efficiency * bandwidth``; utility as the
    concave quadratic ``w * r - 0.5 * curvature * r^2`` (diminishing
    returns), keeping the slicing program a convex QP.
    """

    service: ServiceClass
    efficiency_bps_per_hz: float
    min_rate_bps: float
    weight: float = 1.0
    curvature: float = 1e-14

    def __post_init__(self):
        if self.efficiency_bps_per_hz <= 0 or self.weight <= 0 or self.curvature < 0:
            raise ConfigurationError("invalid slice spec")


@dataclass(frozen=True)
class SlicingResult:
    """Bandwidth split and achieved rates."""

    bandwidth_hz: np.ndarray
    rates_bps: np.ndarray
    utility: float
    active: np.ndarray
    feasible: bool


def _qp_matrices(specs: List[SliceSpec], total_bw_hz: float):
    """Quadratic model in *normalized* bandwidth ``u = b / total_bw``.

    Normalizing keeps every solver variable O(1); raw Hz-scale variables
    (~1e7) make the ADMM/BnB numerics ill-conditioned.
    """
    n = len(specs)
    eff = np.array([s.efficiency_bps_per_hz for s in specs])
    w = np.array([s.weight for s in specs])
    curv = np.array([s.curvature for s in specs])
    # utility(b) = sum w_i (eff_i b_i) - 0.5 curv_i (eff_i b_i)^2, b = total*u
    p = np.diag(curv * (eff * total_bw_hz) ** 2)
    q = -(w * eff * total_bw_hz)
    return p, q, eff


def allocate_slices(specs: List[SliceSpec], total_bw_hz: float) -> SlicingResult:
    """Convex-QP slicing with per-slice rate floors.

    Raises :class:`InfeasibleError` when the floors exceed capacity.
    """
    if total_bw_hz <= 0:
        raise ConfigurationError("total bandwidth must be positive")
    n = len(specs)
    if n == 0:
        raise ConfigurationError("need at least one slice")
    p, q, eff = _qp_matrices(specs, total_bw_hz)
    mins_bw = np.array([s.min_rate_bps for s in specs]) / eff  # numlint: disable=NL002 -- SliceSpec.__post_init__ rejects efficiency <= 0
    if mins_bw.sum() > total_bw_hz + 1e-9:
        raise InfeasibleError(
            f"rate floors need {mins_bw.sum():.0f} Hz > capacity {total_bw_hz:.0f} Hz"
        )
    mins_u = mins_bw / total_bw_hz
    # constraints in normalized units: sum u <= 1 ; u >= mins_u
    g = np.vstack([np.ones((1, n)), -np.eye(n)])
    h = np.concatenate([[1.0], -mins_u])
    sol = solve_qp(QPProblem(QuadraticForm(p, q), g=g, h=h))
    b = np.maximum(sol.x * total_bw_hz, mins_bw)
    # project back onto the capacity simplex if rounding overshot
    excess = b.sum() - total_bw_hz
    if excess > 0:
        slack = b - mins_bw
        total_slack = slack.sum()
        if total_slack > 0:
            b = b - excess * slack / total_slack
    rates = eff * b
    u = b / total_bw_hz
    utility = float(-(0.5 * u @ p @ u + q @ u))
    return SlicingResult(bandwidth_hz=b, rates_bps=rates, utility=utility,
                         active=np.ones(n, dtype=bool),
                         feasible=bool(np.all(rates >= np.array([s.min_rate_bps for s in specs]) - 1e-3)))


def allocate_slices_with_activation(
    specs: List[SliceSpec],
    total_bw_hz: float,
    activation_cost: float,
    max_nodes: int = 4000,
) -> SlicingResult:
    """Slicing with binary activation: an inactive slice gets zero
    bandwidth and pays no cost, but its rate floor is waived (best-effort
    degradation).  Convex MIQP via branch-and-bound.

    Variables: ``[b_1..b_n, a_1..a_n]`` with ``a`` binary;
    constraints couple ``min_bw_i * a_i <= b_i <= total * a_i``.
    """
    if total_bw_hz <= 0:
        raise ConfigurationError("total bandwidth must be positive")
    n = len(specs)
    if n == 0:
        raise ConfigurationError("need at least one slice")
    p_bw, q_bw, eff = _qp_matrices(specs, total_bw_hz)
    mins_bw = np.array([s.min_rate_bps for s in specs]) / eff  # numlint: disable=NL002 -- SliceSpec.__post_init__ rejects efficiency <= 0
    mins_u = mins_bw / total_bw_hz
    # normalize the activation cost to the utility scale so the MIQP is
    # well conditioned regardless of the caller's units
    util_scale = max(float(np.max(np.abs(q_bw))), 1.0)
    cost_u = activation_cost / util_scale
    q_norm = q_bw / util_scale
    p_norm = p_bw / util_scale
    dim = 2 * n
    p = np.zeros((dim, dim))
    p[:n, :n] = p_norm
    # tiny curvature on activations keeps the MIQP Hessian PSD without
    # affecting the binary optimum
    p[n:, n:] = 1e-9 * np.eye(n)
    q = np.zeros(dim)
    q[:n] = q_norm
    q[n:] = cost_u

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    # capacity: sum u <= 1
    row = np.zeros(dim)
    row[:n] = 1.0
    rows.append(row)
    rhs.append(1.0)
    for i in range(n):
        # u_i <= a_i
        row = np.zeros(dim)
        row[i] = 1.0
        row[n + i] = -1.0
        rows.append(row)
        rhs.append(0.0)
        # u_i >= mins_u_i * a_i
        row = np.zeros(dim)
        row[i] = -1.0
        row[n + i] = mins_u[i]
        rows.append(row)
        rhs.append(0.0)
    lo = np.zeros(dim)
    hi = np.ones(dim)
    model = MIQPModel(
        QPProblem(QuadraticForm(p, q), g=np.asarray(rows), h=np.asarray(rhs)),
        frozenset(range(n, dim)),
        lo=lo,
        hi=hi,
    )
    res = solve_miqp(model, max_nodes=max_nodes)
    if res.x is None:
        raise InfeasibleError("slicing MIQP infeasible")
    u = np.maximum(res.x[:n], 0.0)
    b = u * total_bw_hz
    a = res.x[n:] > 0.5
    rates = eff * b
    utility = float((-(0.5 * u @ p_norm @ u + q_norm @ u) - cost_u * a.sum()) * util_scale)
    floors = np.array([s.min_rate_bps for s in specs])
    feas = bool(np.all(rates[a] >= floors[a] - 1e-3))
    return SlicingResult(bandwidth_hz=b, rates_bps=rates, utility=utility,
                         active=a, feasible=feas)

"""Wireless channel models for the QoS workloads.

Synthetic substitute for a live 5G testbed (see DESIGN.md): log-distance
path loss with Rayleigh block fading over an OFDM resource grid, plus
SINR and Shannon-rate helpers.  These generate the per-user/per-block
gain matrices that parameterize every QoS optimization problem in
:mod:`repro.qos`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.numerics.stable_ops import log2p1

__all__ = [
    "ChannelConfig",
    "ChannelModel",
    "sinr",
    "shannon_rate",
    "db_to_linear",
    "linear_to_db",
]


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    return 10.0 ** (np.asarray(db, dtype=np.float64) / 10.0)


def linear_to_db(x: float | np.ndarray) -> float | np.ndarray:
    return 10.0 * np.log10(np.maximum(np.asarray(x, dtype=np.float64), 1e-300))


@dataclass(frozen=True)
class ChannelConfig:
    """Cell geometry and radio parameters.

    Defaults model a small cell: 500 m radius, 2 GHz-ish path loss
    exponent 3.5, -100 dBm noise per resource block.
    """

    cell_radius_m: float = 500.0
    min_distance_m: float = 20.0
    path_loss_exponent: float = 3.5
    reference_loss_db: float = 30.0
    shadowing_sigma_db: float = 6.0
    noise_dbm: float = -100.0
    n_blocks: int = 16

    def __post_init__(self):
        if self.cell_radius_m <= self.min_distance_m:
            raise ConfigurationError("cell radius must exceed min distance")
        if self.n_blocks < 1:
            raise ConfigurationError("need at least one resource block")


class ChannelModel:
    """Generates per-user, per-resource-block channel gains.

    ``gains(n_users)`` returns a linear-scale gain matrix ``(U, B)``
    combining path loss, log-normal shadowing, and per-block Rayleigh
    fading — the randomness the paper's "abundance of perturbations /
    variability in contemporary environs" refers to.
    """

    def __init__(self, config: ChannelConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.config = config or ChannelConfig()
        self.rng = rng or np.random.default_rng(0)

    def user_distances(self, n_users: int) -> np.ndarray:
        """Uniform-in-area user drop within the cell annulus."""
        cfg = self.config
        r2 = self.rng.uniform(cfg.min_distance_m**2, cfg.cell_radius_m**2, size=n_users)
        return np.sqrt(r2)

    def path_loss_db(self, distances_m: np.ndarray) -> np.ndarray:
        cfg = self.config
        d = np.maximum(np.asarray(distances_m, dtype=np.float64), cfg.min_distance_m)
        pl = cfg.reference_loss_db + 10.0 * cfg.path_loss_exponent * np.log10(d / cfg.min_distance_m)
        if cfg.shadowing_sigma_db > 0:
            pl = pl + cfg.shadowing_sigma_db * self.rng.standard_normal(d.shape)
        return pl

    def gains(self, n_users: int) -> np.ndarray:
        """Linear power gains (U, B): path loss * shadowing * Rayleigh."""
        cfg = self.config
        d = self.user_distances(n_users)
        pl_db = self.path_loss_db(d)
        large_scale = db_to_linear(-pl_db)  # (U,)
        # per-block Rayleigh fading: |h|^2 ~ Exp(1)
        fading = self.rng.exponential(1.0, size=(n_users, cfg.n_blocks))
        return large_scale[:, None] * fading

    @property
    def noise_linear_mw(self) -> float:
        return float(db_to_linear(self.config.noise_dbm))


def sinr(signal_mw: np.ndarray, interference_mw: np.ndarray | float,
         noise_mw: float) -> np.ndarray:
    """Signal-to-interference-plus-noise ratio (linear)."""
    if noise_mw <= 0:
        raise ConfigurationError("noise power must be positive")
    return np.asarray(signal_mw, dtype=np.float64) / (np.asarray(interference_mw, dtype=np.float64) + noise_mw)


def shannon_rate(sinr_linear: np.ndarray, bandwidth_hz: float = 180e3) -> np.ndarray:
    """Shannon capacity per block, in bits/s."""
    if bandwidth_hz <= 0:
        raise ConfigurationError("bandwidth must be positive")
    return bandwidth_hz * log2p1(np.maximum(np.asarray(sinr_linear, dtype=np.float64), 0.0))

"""Admission control: which connections to admit under scarce resources.

The paper's §I framing — "ensure that these QoS sets are met without
excessive allocation of network resources" — has a front door: when not
every requesting session's QoS floor can be met, the control plane must
*admit* a subset.  We model one frame's admission problem as a knapsack-
style MILP: admit sessions maximizing priority-weighted utility subject
to the resource budget implied by each session's QoS floor, with an exact
solver, the LP-rounding grade, and a greedy utility-density baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NumericalInstabilityError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.minlp.heuristics import round_and_repair
from repro.minlp.milp import solve_milp
from repro.minlp.model import MILPModel
from repro.qos.traffic import UserSession
from repro.resilience import (
    Budget,
    BudgetReport,
    CircuitBreaker,
    RetryPolicy,
    Rung,
    run_ladder,
)

__all__ = ["AdmissionProblem", "AdmissionResult", "ResilientAdmissionResult",
           "solve_admission_exact", "solve_admission_relaxed",
           "solve_admission_greedy", "solve_admission_resilient",
           "ADMISSION_FALLBACK"]

#: degradation order for the admission hot path: tightest first, the
#: greedy density heuristic as the guaranteed conservative policy
ADMISSION_FALLBACK: Tuple[str, ...] = ("exact-bnb", "lp-round", "greedy")

# default priority -> utility weight (URLLC priority 0 most valuable)
_PRIORITY_WEIGHT = {0: 10.0, 1: 3.0, 2: 1.0}


@dataclass(frozen=True)
class AdmissionProblem:
    """One frame's admission instance.

    ``resource_demand[i]`` is the share of the frame's resources (0..1)
    session *i* needs to meet its QoS floor (precomputed from channel
    quality); the admitted set's demands must sum to <= 1.
    """

    users: List[UserSession]
    resource_demand: np.ndarray
    utilities: np.ndarray | None = None

    def __post_init__(self):
        demand = np.asarray(self.resource_demand, dtype=np.float64).ravel()
        if demand.size != len(self.users):
            raise ConfigurationError("demand vector must match the user list")
        if np.any(demand < 0):
            raise ConfigurationError("resource demands must be nonnegative")
        object.__setattr__(self, "resource_demand", demand)
        if self.utilities is None:
            util = np.array([
                _PRIORITY_WEIGHT.get(u.qos.priority, 1.0) for u in self.users
            ])
        else:
            util = np.asarray(self.utilities, dtype=np.float64).ravel()
            if util.size != len(self.users):
                raise ConfigurationError("utility vector must match the user list")
        object.__setattr__(self, "utilities", util)

    @property
    def n_users(self) -> int:
        return len(self.users)

    def to_milp(self) -> MILPModel:
        n = self.n_users
        lp = LPProblem(
            c=-self.utilities,
            g=self.resource_demand.reshape(1, -1),
            h=np.array([1.0]),
            lo=np.zeros(n),
            hi=np.ones(n),
        )
        return MILPModel(lp, frozenset(range(n)))

    def evaluate(self, admitted: np.ndarray) -> dict:
        admitted = np.asarray(admitted, dtype=bool)
        return {
            "utility": float(self.utilities[admitted].sum()),
            "load": float(self.resource_demand[admitted].sum()),
            "feasible": bool(self.resource_demand[admitted].sum() <= 1.0 + 1e-9),
            "n_admitted": int(admitted.sum()),
        }


@dataclass(frozen=True)
class AdmissionResult:
    method: str
    admitted: np.ndarray
    utility: float
    load: float
    feasible: bool
    wall_time: float


def _result(method: str, problem: AdmissionProblem, admitted: np.ndarray,
            start: float) -> AdmissionResult:
    ev = problem.evaluate(admitted)
    return AdmissionResult(method=method, admitted=np.asarray(admitted, dtype=bool),
                           utility=ev["utility"], load=ev["load"],
                           feasible=ev["feasible"],
                           wall_time=time.perf_counter() - start)


def solve_admission_exact(problem: AdmissionProblem, max_nodes: int = 20000) -> AdmissionResult:
    """Exact knapsack admission by branch-and-bound."""
    start = time.perf_counter()
    res = solve_milp(problem.to_milp(), max_nodes=max_nodes)
    admitted = (res.x > 0.5) if res.x is not None else np.zeros(problem.n_users, dtype=bool)
    return _result("exact-bnb", problem, admitted, start)


def solve_admission_relaxed(problem: AdmissionProblem) -> AdmissionResult:
    """LP relaxation + rounding repair."""
    start = time.perf_counter()
    model = problem.to_milp()
    relaxed = solve_lp(model.relaxation())
    x = round_and_repair(model, relaxed.x)
    admitted = (x > 0.5) if x is not None else np.zeros(problem.n_users, dtype=bool)
    return _result("lp-round", problem, admitted, start)


@dataclass(frozen=True)
class ResilientAdmissionResult:
    """An admission decision with degradation provenance: which rung of
    the fallback ladder answered, how many solver attempts it took, and
    what the failed rungs died of."""

    result: AdmissionResult
    rung: str
    rung_index: int
    attempts: int
    failures: Tuple[Tuple[str, str], ...]
    budget: Optional[BudgetReport] = None
    rung_times: Tuple[Tuple[str, float], ...] = ()

    @property
    def degraded(self) -> bool:
        return self.rung_index > 0

    @property
    def admitted(self) -> np.ndarray:
        return self.result.admitted


def _validate_admission(value: object) -> None:
    """Reject corrupted or infeasible admission decisions: an answer that
    over-commits the frame's resources (or carries NaN) must degrade, not
    ship."""
    assert isinstance(value, AdmissionResult)
    if not (np.isfinite(value.utility) and np.isfinite(value.load)):
        raise NumericalInstabilityError(
            f"admission result carries non-finite metrics "
            f"(utility {value.utility!r}, load {value.load!r})"
        )
    if not value.feasible:
        raise NumericalInstabilityError(
            f"admission result over-commits the frame (load {value.load:.3f} > 1)"
        )


def solve_admission_resilient(
    problem: AdmissionProblem,
    budget: Optional[Budget] = None,
    breaker: Optional[CircuitBreaker] = None,
    retry: Optional[RetryPolicy] = None,
    max_nodes: int = 20000,
    solvers: Optional[Dict[str, Callable[[AdmissionProblem], AdmissionResult]]] = None,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ResilientAdmissionResult:
    """Admission through the fallback ladder ``exact-bnb -> lp-round ->
    greedy`` with budget, retry, and circuit-breaker protection.

    The greedy rung is guaranteed: it is O(n log n), cannot fail, and
    runs even with an exhausted budget or an open breaker — the "cheap
    conservative policy" the QoS control plane trips to instead of
    hammering a broken backend every frame.  ``solvers`` overrides
    individual rung implementations (the hook the chaos harness uses).
    """
    table: Dict[str, Callable[[AdmissionProblem], AdmissionResult]] = {
        "exact-bnb": lambda p: solve_admission_exact(p, max_nodes=max_nodes),
        "lp-round": solve_admission_relaxed,
        "greedy": solve_admission_greedy,
    }
    if solvers:
        table.update(solvers)
    retry = retry or RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

    def make_solve(name: str, guaranteed: bool) -> Callable[[], AdmissionResult]:
        def solve() -> AdmissionResult:
            if budget is not None:
                if guaranteed:
                    budget.charge(1)
                else:
                    budget.spend(1, context=f"admission[{name}]")
            return table[name](problem)
        return solve

    rungs = [
        Rung(name=name, solve=make_solve(name, i == len(ADMISSION_FALLBACK) - 1),
             grade=name, retry=retry,
             guaranteed=(i == len(ADMISSION_FALLBACK) - 1))
        for i, name in enumerate(ADMISSION_FALLBACK)
    ]
    res = run_ladder(rungs, budget=budget, breaker=breaker,
                     validator=_validate_admission, rng=rng, sleep=sleep,
                     name="admission")
    result = res.value
    assert isinstance(result, AdmissionResult)
    return ResilientAdmissionResult(
        result=result,
        rung=res.rung,
        rung_index=res.rung_index,
        attempts=res.attempts,
        failures=res.failures,
        budget=res.budget,
        rung_times=res.rung_times,
    )


def solve_admission_greedy(problem: AdmissionProblem) -> AdmissionResult:
    """Utility-density greedy: admit by utility / demand until full."""
    start = time.perf_counter()
    density = problem.utilities / np.maximum(problem.resource_demand, 1e-12)
    order = np.argsort(-density)
    admitted = np.zeros(problem.n_users, dtype=bool)
    load = 0.0
    for i in order:
        if load + problem.resource_demand[i] <= 1.0 + 1e-12:
            admitted[i] = True
            load += problem.resource_demand[i]  # numlint: disable=NL005 -- running knapsack load: each admit decision depends on the partial sum
    return _result("greedy", problem, admitted, start)

"""Admission control: which connections to admit under scarce resources.

The paper's §I framing — "ensure that these QoS sets are met without
excessive allocation of network resources" — has a front door: when not
every requesting session's QoS floor can be met, the control plane must
*admit* a subset.  We model one frame's admission problem as a knapsack-
style MILP: admit sessions maximizing priority-weighted utility subject
to the resource budget implied by each session's QoS floor, with an exact
solver, the LP-rounding grade, and a greedy utility-density baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.minlp.heuristics import round_and_repair
from repro.minlp.milp import solve_milp
from repro.minlp.model import MILPModel
from repro.qos.traffic import UserSession

__all__ = ["AdmissionProblem", "AdmissionResult", "solve_admission_exact",
           "solve_admission_relaxed", "solve_admission_greedy"]

# default priority -> utility weight (URLLC priority 0 most valuable)
_PRIORITY_WEIGHT = {0: 10.0, 1: 3.0, 2: 1.0}


@dataclass(frozen=True)
class AdmissionProblem:
    """One frame's admission instance.

    ``resource_demand[i]`` is the share of the frame's resources (0..1)
    session *i* needs to meet its QoS floor (precomputed from channel
    quality); the admitted set's demands must sum to <= 1.
    """

    users: List[UserSession]
    resource_demand: np.ndarray
    utilities: np.ndarray | None = None

    def __post_init__(self):
        demand = np.asarray(self.resource_demand, dtype=np.float64).ravel()
        if demand.size != len(self.users):
            raise ConfigurationError("demand vector must match the user list")
        if np.any(demand < 0):
            raise ConfigurationError("resource demands must be nonnegative")
        object.__setattr__(self, "resource_demand", demand)
        if self.utilities is None:
            util = np.array([
                _PRIORITY_WEIGHT.get(u.qos.priority, 1.0) for u in self.users
            ])
        else:
            util = np.asarray(self.utilities, dtype=np.float64).ravel()
            if util.size != len(self.users):
                raise ConfigurationError("utility vector must match the user list")
        object.__setattr__(self, "utilities", util)

    @property
    def n_users(self) -> int:
        return len(self.users)

    def to_milp(self) -> MILPModel:
        n = self.n_users
        lp = LPProblem(
            c=-self.utilities,
            g=self.resource_demand.reshape(1, -1),
            h=np.array([1.0]),
            lo=np.zeros(n),
            hi=np.ones(n),
        )
        return MILPModel(lp, frozenset(range(n)))

    def evaluate(self, admitted: np.ndarray) -> dict:
        admitted = np.asarray(admitted, dtype=bool)
        return {
            "utility": float(self.utilities[admitted].sum()),
            "load": float(self.resource_demand[admitted].sum()),
            "feasible": bool(self.resource_demand[admitted].sum() <= 1.0 + 1e-9),
            "n_admitted": int(admitted.sum()),
        }


@dataclass(frozen=True)
class AdmissionResult:
    method: str
    admitted: np.ndarray
    utility: float
    load: float
    feasible: bool
    wall_time: float


def _result(method: str, problem: AdmissionProblem, admitted: np.ndarray,
            start: float) -> AdmissionResult:
    ev = problem.evaluate(admitted)
    return AdmissionResult(method=method, admitted=np.asarray(admitted, dtype=bool),
                           utility=ev["utility"], load=ev["load"],
                           feasible=ev["feasible"],
                           wall_time=time.perf_counter() - start)


def solve_admission_exact(problem: AdmissionProblem, max_nodes: int = 20000) -> AdmissionResult:
    """Exact knapsack admission by branch-and-bound."""
    start = time.perf_counter()
    res = solve_milp(problem.to_milp(), max_nodes=max_nodes)
    admitted = (res.x > 0.5) if res.x is not None else np.zeros(problem.n_users, dtype=bool)
    return _result("exact-bnb", problem, admitted, start)


def solve_admission_relaxed(problem: AdmissionProblem) -> AdmissionResult:
    """LP relaxation + rounding repair."""
    start = time.perf_counter()
    model = problem.to_milp()
    relaxed = solve_lp(model.relaxation())
    x = round_and_repair(model, relaxed.x)
    admitted = (x > 0.5) if x is not None else np.zeros(problem.n_users, dtype=bool)
    return _result("lp-round", problem, admitted, start)


def solve_admission_greedy(problem: AdmissionProblem) -> AdmissionResult:
    """Utility-density greedy: admit by utility / demand until full."""
    start = time.perf_counter()
    density = problem.utilities / np.maximum(problem.resource_demand, 1e-12)
    order = np.argsort(-density)
    admitted = np.zeros(problem.n_users, dtype=bool)
    load = 0.0
    for i in order:
        if load + problem.resource_demand[i] <= 1.0 + 1e-12:
            admitted[i] = True
            load += problem.resource_demand[i]  # numlint: disable=NL005 -- running knapsack load: each admit decision depends on the partial sum
    return _result("greedy", problem, admitted, start)

"""Frame-by-frame QoS scheduler gluing channel, traffic, and RRA.

Runs an OFDMA cell over successive scheduling frames: each frame draws
fresh fading, rebuilds the RRA instance, solves it with a configurable
strategy, and accumulates per-class QoS satisfaction statistics — the
end-to-end control-plane loop the paper's resource-management story
describes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Literal

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError, LadderExhaustedError
from repro.obs import get_metrics, get_tracer
from repro.qos.channel import ChannelConfig, ChannelModel
from repro.qos.rra import (
    RRAProblem,
    RRAResult,
    solve_rra_exact,
    solve_rra_greedy,
    solve_rra_pso,
    solve_rra_relaxed,
    solve_rra_resilient,
)
from repro.qos.traffic import ServiceClass, TrafficGenerator, UserSession
from repro.resilience import Budget, CircuitBreaker

Strategy = Literal["exact", "relaxed", "pso", "greedy"]

_SOLVERS: Dict[str, Callable[[RRAProblem], RRAResult]] = {
    "exact": lambda p: solve_rra_exact(p, max_nodes=4000, time_limit=20.0),
    "relaxed": solve_rra_relaxed,
    "pso": lambda p: solve_rra_pso(p, swarm_size=12, generations=30),
    "greedy": solve_rra_greedy,
}

__all__ = ["FrameStats", "ScheduleReport", "Scheduler"]


@dataclass(frozen=True)
class FrameStats:
    """Per-frame outcome.

    ``rung`` records which solver actually answered the frame (in
    resilient mode the fallback-ladder rung; otherwise the strategy
    name); ``degraded`` is True when a fallback below the primary rung
    served the frame.
    """

    frame: int
    total_rate: float
    qos_ok: bool
    per_class_satisfaction: Dict[ServiceClass, float]
    solver_time: float
    rung: str = ""
    degraded: bool = False
    rung_times: Dict[str, float] = field(default_factory=dict)


@dataclass
class ScheduleReport:
    """Aggregate over a scheduling run."""

    frames: List[FrameStats] = field(default_factory=list)

    @property
    def mean_rate(self) -> float:
        return float(np.mean([f.total_rate for f in self.frames])) if self.frames else 0.0

    @property
    def qos_success_rate(self) -> float:
        return float(np.mean([f.qos_ok for f in self.frames])) if self.frames else 0.0

    def class_satisfaction(self) -> Dict[ServiceClass, float]:
        out: Dict[ServiceClass, List[float]] = {}
        for f in self.frames:
            for svc, v in f.per_class_satisfaction.items():
                out.setdefault(svc, []).append(v)
        return {svc: float(np.mean(vs)) for svc, vs in out.items()}

    @property
    def total_solver_time(self) -> float:
        return float(sum(f.solver_time for f in self.frames))

    @property
    def degraded_frame_rate(self) -> float:
        """Fraction of frames served by a fallback rung."""
        return float(np.mean([f.degraded for f in self.frames])) if self.frames else 0.0

    def rung_counts(self) -> Dict[str, int]:
        """How many frames each rung answered — the operational face of
        the paper's cost/completeness ladder."""
        out: Dict[str, int] = {}
        for f in self.frames:
            out[f.rung] = out.get(f.rung, 0) + 1
        return out

    def rung_time_totals(self) -> Dict[str, float]:
        """Total wall-clock spent in each rung across all frames,
        including rungs that were attempted but failed."""
        acc: Dict[str, List[float]] = {}
        for f in self.frames:
            for rung, t in f.rung_times.items():
                acc.setdefault(rung, []).append(t)
        return {rung: math.fsum(ts) for rung, ts in acc.items()}


class Scheduler:
    """An OFDMA cell scheduler with pluggable RRA strategy."""

    def __init__(
        self,
        n_users: int = 4,
        strategy: Strategy = "relaxed",
        channel: ChannelConfig | None = None,
        traffic: TrafficGenerator | None = None,
        power_levels_mw: np.ndarray | None = None,
        total_power_mw: float = 1000.0,
        rate_floor_scale: float = 1.0,
        seed: int = 0,
        resilient: bool = False,
        breaker: CircuitBreaker | None = None,
        frame_budget_s: float | None = None,
        rra_solvers: Dict[str, Callable[[RRAProblem], RRAResult]] | None = None,
    ):
        """``resilient=True`` routes every frame through the
        :func:`~repro.qos.rra.solve_rra_resilient` fallback ladder instead
        of a single fixed strategy; the shared ``breaker`` then trips the
        hot path straight to the greedy rung after repeated upstream
        failures.  ``frame_budget_s`` caps each frame's solve wall-clock;
        ``rra_solvers`` overrides individual rungs (the chaos-test hook).
        """
        if strategy not in _SOLVERS:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.resilient = resilient
        self.breaker = breaker if breaker is not None else (CircuitBreaker() if resilient else None)
        self.frame_budget_s = frame_budget_s
        self.rra_solvers = rra_solvers
        self.rng = np.random.default_rng(seed)
        self.channel = ChannelModel(channel or ChannelConfig(), rng=self.rng)
        self.traffic = traffic or TrafficGenerator(rng=self.rng)
        self.users: List[UserSession] = self.traffic.users(n_users)
        if not math.isclose(rate_floor_scale, 1.0):
            # downscale QoS floors for small test grids
            scaled = []
            for u in self.users:
                q = u.qos
                scaled.append(
                    UserSession(
                        u.user_id,
                        u.service,
                        type(q)(
                            min_rate_bps=q.min_rate_bps * rate_floor_scale,
                            max_latency_ms=q.max_latency_ms,
                            reliability=q.reliability,
                            priority=q.priority,
                        ),
                    )
                )
            self.users = scaled
        self.power_levels = (
            np.asarray(power_levels_mw, dtype=np.float64)
            if power_levels_mw is not None
            else np.array([50.0, 100.0])
        )
        self.total_power = total_power_mw

    def _frame_problem(self) -> RRAProblem:
        gains = self.channel.gains(len(self.users))
        return RRAProblem(
            gains=gains,
            users=self.users,
            power_levels_mw=self.power_levels,
            total_power_mw=self.total_power,
            noise_mw=self.channel.noise_linear_mw,
        )

    def run(self, n_frames: int = 10) -> ScheduleReport:
        report = ScheduleReport()
        solver = _SOLVERS[self.strategy]
        tracer = get_tracer()
        metrics = get_metrics()
        for frame in range(n_frames):
            problem = self._frame_problem()
            start = time.perf_counter()
            rung = self.strategy
            degraded = False
            rung_times: Dict[str, float] = {}
            with tracer.span("qos.frame", frame=frame,
                             strategy=self.strategy,
                             resilient=self.resilient) as span:
                try:
                    if self.resilient:
                        budget = (
                            Budget(wall_clock_s=self.frame_budget_s)
                            if self.frame_budget_s is not None
                            else None
                        )
                        rres = solve_rra_resilient(
                            problem,
                            budget=budget,
                            breaker=self.breaker,
                            max_nodes=4000,
                            time_limit=self.frame_budget_s if self.frame_budget_s is not None else 20.0,
                            solvers=self.rra_solvers,
                            rng=self.rng,
                        )
                        result = rres.result
                        rung = rres.rung
                        degraded = rres.degraded
                        rung_times = dict(rres.rung_times)
                    else:
                        result = solver(problem)
                except (InfeasibleError, LadderExhaustedError):
                    # No rung produced a frame plan: serve nobody this frame
                    # rather than crash the control loop.
                    span.set(rung="none", degraded=True)
                    metrics.counter("scheduler.frames_dropped").inc()
                    report.frames.append(
                        FrameStats(frame, 0.0, False,
                                   {svc: 0.0 for svc in set(u.service for u in self.users)},
                                   time.perf_counter() - start,
                                   rung="none", degraded=True)
                    )
                    continue
                solver_time = time.perf_counter() - start
                if not rung_times:
                    rung_times = {rung: solver_time}
                span.set(rung=rung, degraded=degraded)
                ev = problem.evaluate_assignment(result.choice)
            metrics.counter("scheduler.frames", rung=rung).inc()
            if degraded:
                metrics.counter("scheduler.frames_degraded").inc()
            per_class: Dict[ServiceClass, List[bool]] = {}
            for u, rate in zip(self.users, ev["user_rates"]):
                per_class.setdefault(u.service, []).append(rate >= u.min_rate_bps - 1e-6)
            report.frames.append(
                FrameStats(
                    frame=frame,
                    total_rate=ev["total_rate"],
                    qos_ok=ev["qos_ok"] and ev["power_ok"],
                    per_class_satisfaction={svc: float(np.mean(v)) for svc, v in per_class.items()},
                    solver_time=solver_time,
                    rung=rung,
                    degraded=degraded,
                    rung_times=rung_times,
                )
            )
        return report

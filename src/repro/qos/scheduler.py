"""Frame-by-frame QoS scheduler gluing channel, traffic, and RRA.

Runs an OFDMA cell over successive scheduling frames: each frame draws
fresh fading, rebuilds the RRA instance, solves it with a configurable
strategy, and accumulates per-class QoS satisfaction statistics — the
end-to-end control-plane loop the paper's resource-management story
describes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Literal

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError, LadderExhaustedError
from repro.kernels.backend import resolve_backend
from repro.obs import get_metrics, get_tracer
from repro.parallel import Executor, RelaxationCache, derive_seed, fingerprint, map_solve
from repro.qos.channel import ChannelConfig, ChannelModel
from repro.qos.rra import (
    RRAProblem,
    RRAResult,
    solve_rra_exact,
    solve_rra_greedy,
    solve_rra_pso,
    solve_rra_relaxed,
    solve_rra_resilient,
)
from repro.qos.traffic import ServiceClass, TrafficGenerator, UserSession
from repro.resilience import Budget, ChaosMonkey, CircuitBreaker, FaultSpec

Strategy = Literal["exact", "relaxed", "pso", "greedy"]

_SOLVERS: Dict[str, Callable[[RRAProblem], RRAResult]] = {
    "exact": lambda p: solve_rra_exact(p, max_nodes=4000, time_limit=20.0),
    "relaxed": solve_rra_relaxed,
    "pso": lambda p: solve_rra_pso(p, swarm_size=12, generations=30),
    "greedy": solve_rra_greedy,
}

__all__ = ["FrameStats", "ScheduleReport", "Scheduler"]


def _frame_task(task: dict) -> dict:
    """Solve one pre-drawn frame problem (module-level: process-picklable).

    The task carries everything the solve needs; per-frame randomness
    (ladder retries, chaos schedules) derives from the frame index via
    :func:`~repro.parallel.derive_seed`, so the outcome is a pure
    function of the task — the scheduler's determinism contract.
    """
    problem: RRAProblem = task["problem"]
    frame: int = task["frame"]
    strategy: str = task["strategy"]
    max_nodes: int = task["max_nodes"]
    start = time.perf_counter()
    rung = strategy
    degraded = False
    rung_times: Dict[str, float] = {}
    try:
        if task["resilient"]:
            frame_budget_s = task["frame_budget_s"]
            budget = (Budget(wall_clock_s=frame_budget_s)
                      if frame_budget_s is not None else None)
            # determinism: without an explicit frame budget the exact rung
            # is capped by its *node* budget, never by wall-clock — a
            # deadline-truncated BnB returns a timing-dependent incumbent
            time_limit = (frame_budget_s if frame_budget_s is not None
                          else float("inf"))
            solvers = dict(task["rra_solvers"] or {})
            chaos_spec: FaultSpec | None = task["chaos"]
            if chaos_spec is not None:
                # a per-frame monkey: the injection schedule depends only on
                # the frame index, never on cross-frame call ordering
                monkey = ChaosMonkey(
                    chaos_spec,
                    seed=derive_seed(task["seed"], frame, "qos.chaos"),
                    sleep=_no_sleep,
                    budget=budget,
                )
                base: Dict[str, Callable[[RRAProblem], RRAResult]] = {
                    "exact-bnb": lambda p: solve_rra_exact(
                        p, max_nodes=max_nodes,
                        time_limit=(min(time_limit, budget.remaining_time)
                                    if budget is not None else time_limit)),
                    "lp-round": solve_rra_relaxed,
                    "greedy": solve_rra_greedy,
                }
                base.update(solvers)
                solvers = {name: monkey.wrap(fn, name)
                           for name, fn in base.items()}
            rres = solve_rra_resilient(
                problem,
                budget=budget,
                breaker=None,  # no shared breaker: frames must be independent
                max_nodes=max_nodes,
                time_limit=time_limit,
                solvers=solvers or None,
                rng=np.random.default_rng(
                    derive_seed(task["seed"], frame, "qos.frame")),
            )
            result = rres.result
            rung = rres.rung
            degraded = rres.degraded
            rung_times = dict(rres.rung_times)
        elif strategy == "exact":
            # node-budget cap only (see above): wall-clock truncation would
            # make the frame's answer depend on machine load
            result = solve_rra_exact(problem, max_nodes=max_nodes,
                                     time_limit=float("inf"))
        else:
            result = _SOLVERS[strategy](problem)
    except (InfeasibleError, LadderExhaustedError):
        return {"frame": frame, "dropped": True,
                "solver_time": time.perf_counter() - start}
    solver_time = time.perf_counter() - start
    if not rung_times:
        rung_times = {rung: solver_time}
    return {
        "frame": frame,
        "dropped": False,
        "choice": result.choice,
        "rung": rung,
        "degraded": degraded,
        "rung_times": rung_times,
        "solver_time": solver_time,
    }


def _no_sleep(_s: float) -> None:
    """Chaos latency stub for parallel frames (wall-clock injection would
    break cross-backend timing comparability; budget burn still applies)."""


@dataclass(frozen=True)
class FrameStats:
    """Per-frame outcome.

    ``rung`` records which solver actually answered the frame (in
    resilient mode the fallback-ladder rung; otherwise the strategy
    name); ``degraded`` is True when a fallback below the primary rung
    served the frame.
    """

    frame: int
    total_rate: float
    qos_ok: bool
    per_class_satisfaction: Dict[ServiceClass, float]
    solver_time: float
    rung: str = ""
    degraded: bool = False
    rung_times: Dict[str, float] = field(default_factory=dict)


@dataclass
class ScheduleReport:
    """Aggregate over a scheduling run."""

    frames: List[FrameStats] = field(default_factory=list)

    @property
    def mean_rate(self) -> float:
        return float(np.mean([f.total_rate for f in self.frames])) if self.frames else 0.0

    @property
    def qos_success_rate(self) -> float:
        return float(np.mean([f.qos_ok for f in self.frames])) if self.frames else 0.0

    def class_satisfaction(self) -> Dict[ServiceClass, float]:
        out: Dict[ServiceClass, List[float]] = {}
        for f in self.frames:
            for svc, v in f.per_class_satisfaction.items():
                out.setdefault(svc, []).append(v)
        return {svc: float(np.mean(vs)) for svc, vs in out.items()}

    @property
    def total_solver_time(self) -> float:
        return float(sum(f.solver_time for f in self.frames))

    @property
    def degraded_frame_rate(self) -> float:
        """Fraction of frames served by a fallback rung."""
        return float(np.mean([f.degraded for f in self.frames])) if self.frames else 0.0

    def rung_counts(self) -> Dict[str, int]:
        """How many frames each rung answered — the operational face of
        the paper's cost/completeness ladder."""
        out: Dict[str, int] = {}
        for f in self.frames:
            out[f.rung] = out.get(f.rung, 0) + 1
        return out

    def rung_time_totals(self) -> Dict[str, float]:
        """Total wall-clock spent in each rung across all frames,
        including rungs that were attempted but failed."""
        acc: Dict[str, List[float]] = {}
        for f in self.frames:
            for rung, t in f.rung_times.items():
                acc.setdefault(rung, []).append(t)
        return {rung: math.fsum(ts) for rung, ts in acc.items()}

    def canonical(self) -> dict:
        """Timing-free, JSON-ready projection of the report.

        This is the object the determinism contract covers: every field
        is a pure function of (configuration, seed), so serial, thread,
        and process runs of the same schedule compare bit-identically —
        wall-clock fields (``solver_time``, ``rung_times``) are excluded
        because they can never be equal across runs.  Golden-report
        tests serialize exactly this dict.
        """
        return {
            "frames": [
                {
                    "frame": f.frame,
                    "total_rate": f.total_rate,
                    "qos_ok": bool(f.qos_ok),
                    "per_class_satisfaction": {
                        svc.value: v
                        for svc, v in sorted(f.per_class_satisfaction.items(),
                                             key=lambda kv: kv[0].value)
                    },
                    "rung": f.rung,
                    "degraded": bool(f.degraded),
                }
                for f in self.frames
            ],
            "mean_rate": self.mean_rate,
            "qos_success_rate": self.qos_success_rate,
            "degraded_frame_rate": self.degraded_frame_rate,
            "rung_counts": dict(sorted(self.rung_counts().items())),
            "class_satisfaction": {
                svc.value: v
                for svc, v in sorted(self.class_satisfaction().items(),
                                     key=lambda kv: kv[0].value)
            },
        }


class Scheduler:
    """An OFDMA cell scheduler with pluggable RRA strategy."""

    def __init__(
        self,
        n_users: int = 4,
        strategy: Strategy = "relaxed",
        channel: ChannelConfig | None = None,
        traffic: TrafficGenerator | None = None,
        power_levels_mw: np.ndarray | None = None,
        total_power_mw: float = 1000.0,
        rate_floor_scale: float = 1.0,
        seed: int = 0,
        resilient: bool = False,
        breaker: CircuitBreaker | None = None,
        frame_budget_s: float | None = None,
        rra_solvers: Dict[str, Callable[[RRAProblem], RRAResult]] | None = None,
        max_nodes: int = 4000,
        cache: RelaxationCache | None = None,
    ):
        """``resilient=True`` routes every frame through the
        :func:`~repro.qos.rra.solve_rra_resilient` fallback ladder instead
        of a single fixed strategy; the shared ``breaker`` then trips the
        hot path straight to the greedy rung after repeated upstream
        failures.  ``frame_budget_s`` caps each frame's solve wall-clock;
        ``rra_solvers`` overrides individual rungs (the chaos-test hook);
        ``max_nodes`` caps the exact rung's branch-and-bound (the
        deterministic cost knob the parallel path relies on).

        ``cache`` memoizes frame solves by content fingerprint (problem
        bytes + strategy configuration + the resolved kernels backend,
        same keying discipline as
        :func:`repro.verify.verification_fingerprint`): a repeated
        channel realization — block fading, replayed scenario packs, or
        re-runs under one seed — is answered without re-solving.  The
        coordinator owns the cache, so memoization works unchanged with
        the process executor; chaos runs bypass it (an injected fault
        schedule must not be masked by a memoized healthy answer).
        """
        if strategy not in _SOLVERS:
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self.resilient = resilient
        self.breaker = breaker if breaker is not None else (CircuitBreaker() if resilient else None)
        self.frame_budget_s = frame_budget_s
        self.rra_solvers = rra_solvers
        self.max_nodes = int(max_nodes)
        self.cache = cache
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.channel = ChannelModel(channel or ChannelConfig(), rng=self.rng)
        self.traffic = traffic or TrafficGenerator(rng=self.rng)
        self.users: List[UserSession] = self.traffic.users(n_users)
        if not math.isclose(rate_floor_scale, 1.0):
            # downscale QoS floors for small test grids
            scaled = []
            for u in self.users:
                q = u.qos
                scaled.append(
                    UserSession(
                        u.user_id,
                        u.service,
                        type(q)(
                            min_rate_bps=q.min_rate_bps * rate_floor_scale,
                            max_latency_ms=q.max_latency_ms,
                            reliability=q.reliability,
                            priority=q.priority,
                        ),
                    )
                )
            self.users = scaled
        self.power_levels = (
            np.asarray(power_levels_mw, dtype=np.float64)
            if power_levels_mw is not None
            else np.array([50.0, 100.0])
        )
        self.total_power = total_power_mw

    def _frame_problem(self) -> RRAProblem:
        gains = self.channel.gains(len(self.users))
        return RRAProblem(
            gains=gains,
            users=self.users,
            power_levels_mw=self.power_levels,
            total_power_mw=self.total_power,
            noise_mw=self.channel.noise_linear_mw,
        )

    def _frame_key(self, problem: RRAProblem) -> str:
        """Content-addressed key of one frame solve: the problem bytes
        plus every knob that can change the answer, including the
        resolved kernels backend (a vectorized answer is never served to
        a reference run)."""
        return fingerprint(
            problem.gains, [(u.user_id, u.service.value, u.qos) for u in self.users],
            self.power_levels, self.total_power, self.strategy,
            self.resilient, self.frame_budget_s, self.max_nodes,
            resolve_backend(None), "qos.frame",
        )

    def _cached_stats(self, frame: int, problem: RRAProblem, hit: dict) -> FrameStats:
        """Rebuild FrameStats from a memoized frame outcome (the cheap
        deterministic evaluation re-runs; only the solve is skipped)."""
        if hit["dropped"]:
            return FrameStats(frame, 0.0, False,
                              {svc: 0.0 for svc in set(u.service for u in self.users)},
                              0.0, rung="none", degraded=True)
        ev = problem.evaluate_assignment(hit["choice"])
        per_class: Dict[ServiceClass, List[bool]] = {}
        for u, rate in zip(self.users, ev["user_rates"]):
            per_class.setdefault(u.service, []).append(rate >= u.min_rate_bps - 1e-6)
        return FrameStats(
            frame=frame,
            total_rate=ev["total_rate"],
            qos_ok=ev["qos_ok"] and ev["power_ok"],
            per_class_satisfaction={svc: float(np.mean(v))
                                    for svc, v in per_class.items()},
            solver_time=0.0,
            rung=hit["rung"],
            degraded=hit["degraded"],
        )

    def run(self, n_frames: int = 10, executor: Executor | None = None,
            chunk_size: int | None = None,
            chaos: FaultSpec | None = None) -> ScheduleReport:
        """Run ``n_frames`` scheduling frames and merge the per-frame stats.

        With an ``executor`` the frames fan out through
        :func:`repro.parallel.map_solve` and the per-frame stats are
        merged back into one :class:`ScheduleReport` in frame order.
        The parallel path draws all channel realizations up front from
        the scheduler's RNG and derives any per-frame randomness from
        ``(seed, frame)``, so its :meth:`ScheduleReport.canonical`
        projection is bit-identical across serial/thread/process
        backends — at the price of not sharing the circuit breaker
        between in-flight frames.  ``chaos`` (parallel path, resilient
        mode only) injects a deterministic per-frame
        :class:`~repro.resilience.ChaosMonkey` around every rung.
        """
        if executor is not None:
            return self._run_parallel(n_frames, executor, chunk_size, chaos)
        if chaos is not None:
            raise ConfigurationError(
                "chaos injection requires the parallel path (pass executor=)")
        report = ScheduleReport()
        solver = _SOLVERS[self.strategy]
        tracer = get_tracer()
        metrics = get_metrics()
        for frame in range(n_frames):
            problem = self._frame_problem()
            key = self._frame_key(problem) if self.cache is not None else None
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    metrics.counter("scheduler.frames_cached").inc()
                    report.frames.append(self._cached_stats(frame, problem, hit))
                    continue
            start = time.perf_counter()
            rung = self.strategy
            degraded = False
            rung_times: Dict[str, float] = {}
            with tracer.span("qos.frame", frame=frame,
                             strategy=self.strategy,
                             resilient=self.resilient) as span:
                try:
                    if self.resilient:
                        budget = (
                            Budget(wall_clock_s=self.frame_budget_s)
                            if self.frame_budget_s is not None
                            else None
                        )
                        rres = solve_rra_resilient(
                            problem,
                            budget=budget,
                            breaker=self.breaker,
                            max_nodes=self.max_nodes,
                            time_limit=self.frame_budget_s if self.frame_budget_s is not None else 20.0,
                            solvers=self.rra_solvers,
                            rng=self.rng,
                        )
                        result = rres.result
                        rung = rres.rung
                        degraded = rres.degraded
                        rung_times = dict(rres.rung_times)
                    else:
                        result = solver(problem)
                except (InfeasibleError, LadderExhaustedError):
                    # No rung produced a frame plan: serve nobody this frame
                    # rather than crash the control loop.
                    span.set(rung="none", degraded=True)
                    metrics.counter("scheduler.frames_dropped").inc()
                    if key is not None:
                        self.cache.put(key, {"dropped": True})
                    report.frames.append(
                        FrameStats(frame, 0.0, False,
                                   {svc: 0.0 for svc in set(u.service for u in self.users)},
                                   time.perf_counter() - start,
                                   rung="none", degraded=True)
                    )
                    continue
                solver_time = time.perf_counter() - start
                if not rung_times:
                    rung_times = {rung: solver_time}
                span.set(rung=rung, degraded=degraded)
                ev = problem.evaluate_assignment(result.choice)
            if key is not None:
                self.cache.put(key, {"dropped": False, "choice": result.choice,
                                     "rung": rung, "degraded": degraded})
            metrics.counter("scheduler.frames", rung=rung).inc()
            if degraded:
                metrics.counter("scheduler.frames_degraded").inc()
            per_class: Dict[ServiceClass, List[bool]] = {}
            for u, rate in zip(self.users, ev["user_rates"]):
                per_class.setdefault(u.service, []).append(rate >= u.min_rate_bps - 1e-6)
            report.frames.append(
                FrameStats(
                    frame=frame,
                    total_rate=ev["total_rate"],
                    qos_ok=ev["qos_ok"] and ev["power_ok"],
                    per_class_satisfaction={svc: float(np.mean(v)) for svc, v in per_class.items()},
                    solver_time=solver_time,
                    rung=rung,
                    degraded=degraded,
                    rung_times=rung_times,
                )
            )
        return report

    def _run_parallel(self, n_frames: int, executor: Executor,
                      chunk_size: int | None,
                      chaos: FaultSpec | None) -> ScheduleReport:
        if chaos is not None and not self.resilient:
            raise ConfigurationError(
                "chaos injection needs resilient=True (the ladder absorbs "
                "the injected faults; a bare strategy would just crash)")
        metrics = get_metrics()
        tracer = get_tracer()
        # channel/traffic randomness stays on the scheduler RNG, drawn
        # serially up front — identical problems regardless of backend
        problems = [self._frame_problem() for _ in range(n_frames)]
        # the coordinator owns the cache: hits are served here and only
        # the misses are dispatched, so memoization is backend-agnostic;
        # chaos runs bypass it (a memoized healthy answer would mask the
        # injected fault schedule)
        use_cache = self.cache is not None and chaos is None
        keys = [self._frame_key(p) for p in problems] if use_cache else []
        cached: Dict[int, dict] = {}
        if use_cache:
            for frame, k in enumerate(keys):
                hit = self.cache.get(k)
                if hit is not None:
                    cached[frame] = hit
        tasks = [
            {
                "frame": frame,
                "problem": problem,
                "strategy": self.strategy,
                "resilient": self.resilient,
                "frame_budget_s": self.frame_budget_s,
                "rra_solvers": self.rra_solvers,
                "chaos": chaos,
                "seed": self.seed,
                "max_nodes": self.max_nodes,
            }
            for frame, problem in enumerate(problems)
            if frame not in cached
        ]
        with tracer.span("qos.schedule", backend=executor.backend,
                         n_frames=n_frames, strategy=self.strategy,
                         resilient=self.resilient):
            outcomes = map_solve(_frame_task, tasks, executor=executor,
                                 chunk_size=chunk_size, label="qos.frames")
        out_by_frame = {out["frame"]: out for out in outcomes}
        report = ScheduleReport()
        for frame, problem in enumerate(problems):
            if frame in cached:
                metrics.counter("scheduler.frames_cached").inc()
                report.frames.append(self._cached_stats(frame, problem,
                                                        cached[frame]))
                continue
            out = out_by_frame[frame]
            if use_cache:
                self.cache.put(keys[frame],
                               {"dropped": True} if out["dropped"] else
                               {"dropped": False, "choice": out["choice"],
                                "rung": out["rung"],
                                "degraded": out["degraded"]})
            if out["dropped"]:
                metrics.counter("scheduler.frames_dropped").inc()
                report.frames.append(FrameStats(
                    frame, 0.0, False,
                    {svc: 0.0 for svc in set(u.service for u in self.users)},
                    out["solver_time"], rung="none", degraded=True))
                continue
            ev = problem.evaluate_assignment(out["choice"])
            metrics.counter("scheduler.frames", rung=out["rung"]).inc()
            if out["degraded"]:
                metrics.counter("scheduler.frames_degraded").inc()
            per_class: Dict[ServiceClass, List[bool]] = {}
            for u, rate in zip(self.users, ev["user_rates"]):
                per_class.setdefault(u.service, []).append(rate >= u.min_rate_bps - 1e-6)
            report.frames.append(FrameStats(
                frame=frame,
                total_rate=ev["total_rate"],
                qos_ok=ev["qos_ok"] and ev["power_ok"],
                per_class_satisfaction={svc: float(np.mean(v))
                                        for svc, v in per_class.items()},
                solver_time=out["solver_time"],
                rung=out["rung"],
                degraded=out["degraded"],
                rung_times=out["rung_times"],
            ))
        return report

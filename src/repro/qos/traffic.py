"""5G service classes and synthetic traffic generation.

The paper's opening frames 5G around "three main service categories:
Enhanced Mobile Broadband (eMBB), Ultra-Reliable Low-Latency
Communications (URLLC), and massive Machine-Type Communications (mMTC)"
each with distinct QoS needs.  This module encodes those classes and
generates user populations with per-class QoS requirements — the
"diverse sets of QoS" the resource manager must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ServiceClass", "QoSRequirement", "UserSession", "TrafficGenerator", "DEFAULT_QOS"]


class ServiceClass(Enum):
    """The three 5G service categories."""

    EMBB = "eMBB"
    URLLC = "URLLC"
    MMTC = "mMTC"


@dataclass(frozen=True)
class QoSRequirement:
    """QoS targets for one service class.

    ``min_rate_bps`` is a hard per-user rate floor; ``max_latency_ms``
    translates into scheduling priority; ``reliability`` is the target
    delivery probability (used as an SINR margin in link adaptation).
    """

    min_rate_bps: float
    max_latency_ms: float
    reliability: float
    priority: int

    def __post_init__(self):
        if self.min_rate_bps < 0 or self.max_latency_ms <= 0:
            raise ConfigurationError("invalid QoS requirement")
        if not 0.0 < self.reliability <= 1.0:
            raise ConfigurationError("reliability must be in (0, 1]")


DEFAULT_QOS: Dict[ServiceClass, QoSRequirement] = {
    # eMBB: high throughput, relaxed latency
    ServiceClass.EMBB: QoSRequirement(min_rate_bps=2e6, max_latency_ms=50.0,
                                      reliability=0.99, priority=1),
    # URLLC: modest rate, extreme latency/reliability
    ServiceClass.URLLC: QoSRequirement(min_rate_bps=2.5e5, max_latency_ms=1.0,
                                       reliability=0.99999, priority=0),
    # mMTC: tiny rate, tolerant latency
    ServiceClass.MMTC: QoSRequirement(min_rate_bps=2.5e4, max_latency_ms=1000.0,
                                      reliability=0.9, priority=2),
}


@dataclass(frozen=True)
class UserSession:
    """One active connection with its class and QoS targets."""

    user_id: int
    service: ServiceClass
    qos: QoSRequirement

    @property
    def min_rate_bps(self) -> float:
        return self.qos.min_rate_bps


class TrafficGenerator:
    """Draws user populations from a service-class mix.

    The default mix (50% eMBB / 20% URLLC / 30% mMTC) models a mixed
    macro cell; benchmarks sweep the mix to stress different QoS shapes.
    """

    def __init__(
        self,
        mix: Dict[ServiceClass, float] | None = None,
        qos: Dict[ServiceClass, QoSRequirement] | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.mix = mix or {ServiceClass.EMBB: 0.5, ServiceClass.URLLC: 0.2, ServiceClass.MMTC: 0.3}
        total = sum(self.mix.values())
        if total <= 0:
            raise ConfigurationError("service mix must have positive mass")
        self.mix = {k: v / total for k, v in self.mix.items()}
        self.qos = qos or DEFAULT_QOS
        for svc in self.mix:
            if svc not in self.qos:
                raise ConfigurationError(f"no QoS requirement registered for {svc}")
        self.rng = rng or np.random.default_rng(0)

    def users(self, n: int) -> List[UserSession]:
        """Sample ``n`` sessions i.i.d. from the mix."""
        classes = list(self.mix.keys())
        probs = np.array([self.mix[c] for c in classes])
        draws = self.rng.choice(len(classes), size=n, p=probs)
        return [
            UserSession(user_id=i, service=classes[d], qos=self.qos[classes[d]])
            for i, d in enumerate(draws)
        ]

    def class_counts(self, users: List[UserSession]) -> Dict[ServiceClass, int]:
        out: Dict[ServiceClass, int] = {c: 0 for c in self.mix}
        for u in users:
            out[u.service] = out.get(u.service, 0) + 1
        return out

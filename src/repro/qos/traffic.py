"""5G service classes and synthetic traffic generation.

The paper's opening frames 5G around "three main service categories:
Enhanced Mobile Broadband (eMBB), Ultra-Reliable Low-Latency
Communications (URLLC), and massive Machine-Type Communications (mMTC)"
each with distinct QoS needs.  This module encodes those classes and
generates user populations with per-class QoS requirements — the
"diverse sets of QoS" the resource manager must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ServiceClass",
    "QoSRequirement",
    "UserSession",
    "TrafficGenerator",
    "DEFAULT_QOS",
    "MMPPConfig",
    "MMPPProcess",
]


class ServiceClass(Enum):
    """The three 5G service categories."""

    EMBB = "eMBB"
    URLLC = "URLLC"
    MMTC = "mMTC"


@dataclass(frozen=True)
class QoSRequirement:
    """QoS targets for one service class.

    ``min_rate_bps`` is a hard per-user rate floor; ``max_latency_ms``
    translates into scheduling priority; ``reliability`` is the target
    delivery probability (used as an SINR margin in link adaptation).
    """

    min_rate_bps: float
    max_latency_ms: float
    reliability: float
    priority: int

    def __post_init__(self):
        if self.min_rate_bps < 0 or self.max_latency_ms <= 0:
            raise ConfigurationError("invalid QoS requirement")
        if not 0.0 < self.reliability <= 1.0:
            raise ConfigurationError("reliability must be in (0, 1]")


DEFAULT_QOS: Dict[ServiceClass, QoSRequirement] = {
    # eMBB: high throughput, relaxed latency
    ServiceClass.EMBB: QoSRequirement(min_rate_bps=2e6, max_latency_ms=50.0,
                                      reliability=0.99, priority=1),
    # URLLC: modest rate, extreme latency/reliability
    ServiceClass.URLLC: QoSRequirement(min_rate_bps=2.5e5, max_latency_ms=1.0,
                                       reliability=0.99999, priority=0),
    # mMTC: tiny rate, tolerant latency
    ServiceClass.MMTC: QoSRequirement(min_rate_bps=2.5e4, max_latency_ms=1000.0,
                                      reliability=0.9, priority=2),
}


@dataclass(frozen=True)
class UserSession:
    """One active connection with its class and QoS targets."""

    user_id: int
    service: ServiceClass
    qos: QoSRequirement

    @property
    def min_rate_bps(self) -> float:
        return self.qos.min_rate_bps


class TrafficGenerator:
    """Draws user populations from a service-class mix.

    The default mix (50% eMBB / 20% URLLC / 30% mMTC) models a mixed
    macro cell; benchmarks sweep the mix to stress different QoS shapes.
    """

    def __init__(
        self,
        mix: Dict[ServiceClass, float] | None = None,
        qos: Dict[ServiceClass, QoSRequirement] | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.mix = mix or {ServiceClass.EMBB: 0.5, ServiceClass.URLLC: 0.2, ServiceClass.MMTC: 0.3}
        total = sum(self.mix.values())
        if total <= 0:
            raise ConfigurationError("service mix must have positive mass")
        self.mix = {k: v / total for k, v in self.mix.items()}
        self.qos = qos or DEFAULT_QOS
        for svc in self.mix:
            if svc not in self.qos:
                raise ConfigurationError(f"no QoS requirement registered for {svc}")
        self.rng = rng or np.random.default_rng(0)

    def users(self, n: int) -> List[UserSession]:
        """Sample ``n`` sessions i.i.d. from the mix."""
        classes = list(self.mix.keys())
        probs = np.array([self.mix[c] for c in classes])
        draws = self.rng.choice(len(classes), size=n, p=probs)
        return [
            UserSession(user_id=i, service=classes[d], qos=self.qos[classes[d]])
            for i, d in enumerate(draws)
        ]

    def class_counts(self, users: List[UserSession]) -> Dict[ServiceClass, int]:
        out: Dict[ServiceClass, int] = {c: 0 for c in self.mix}
        for u in users:
            out[u.service] = out.get(u.service, 0) + 1
        return out


@dataclass(frozen=True)
class MMPPConfig:
    """Two-state Markov-modulated Poisson process parameters.

    Arrivals are Poisson at ``idle_rate_hz`` in the IDLE state and at
    ``burst_rate_hz`` during bursts; sojourn times in each state are
    exponential with means ``mean_idle_s`` / ``mean_burst_s``.  The
    classic bursty-traffic model: long quiet stretches punctuated by
    arrival storms, exactly the load shape an admission-controlled
    serving layer must absorb without shedding URLLC.
    """

    idle_rate_hz: float = 20.0
    burst_rate_hz: float = 200.0
    mean_idle_s: float = 2.0
    mean_burst_s: float = 0.5

    def __post_init__(self):
        for name in ("idle_rate_hz", "burst_rate_hz", "mean_idle_s", "mean_burst_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.burst_rate_hz < self.idle_rate_hz:
            raise ConfigurationError("burst_rate_hz must be >= idle_rate_hz")

    @property
    def burst_fraction(self) -> float:
        """Steady-state fraction of time spent in the BURST state."""
        return self.mean_burst_s / (self.mean_burst_s + self.mean_idle_s)  # numlint: disable=NL002 -- __post_init__ rejects nonpositive sojourn means

    @property
    def mean_rate_hz(self) -> float:
        """Long-run arrival rate: sojourn-weighted mix of the two rates."""
        f = self.burst_fraction
        return f * self.burst_rate_hz + (1.0 - f) * self.idle_rate_hz


class MMPPProcess:
    """Seeded event generator for the two-state MMPP.

    Exact simulation by competing exponentials: in state ``s`` the next
    arrival is ``Exp(rate_s)`` away; if it would land past the state's
    sojourn end, the partial draw is discarded (memorylessness makes
    that exact, not an approximation), the chain toggles, and a fresh
    sojourn is drawn.  Every draw comes from the injected generator, so
    the whole event stream is a pure function of the seed.
    """

    IDLE = 0
    BURST = 1

    def __init__(self, config: MMPPConfig | None = None,
                 rng: np.random.Generator | None = None):
        self.config = config or MMPPConfig()
        self.rng = rng or np.random.default_rng(0)
        self._state = self.IDLE
        self._now = 0.0
        self._state_end = self._now + self.rng.exponential(self.config.mean_idle_s)

    @property
    def state(self) -> int:
        return self._state

    def _rate(self) -> float:
        return (self.config.burst_rate_hz if self._state == self.BURST
                else self.config.idle_rate_hz)

    def _sojourn(self) -> float:
        return self.rng.exponential(
            self.config.mean_burst_s if self._state == self.BURST
            else self.config.mean_idle_s)

    def arrivals(self, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Generate the next ``n`` arrivals.

        Returns ``(times, states)``: absolute arrival times (seconds,
        monotone increasing, continuing from the previous call) and the
        modulating state (:data:`IDLE`/:data:`BURST`) at each arrival.
        """
        if n < 0:
            raise ConfigurationError("n must be nonnegative")
        times = np.empty(n, dtype=np.float64)
        states = np.empty(n, dtype=np.int64)
        k = 0
        while k < n:
            gap = self.rng.exponential(1.0 / self._rate())  # numlint: disable=NL002 -- MMPPConfig.__post_init__ rejects nonpositive rates
            if self._now + gap < self._state_end:
                self._now += gap
                times[k] = self._now
                states[k] = self._state
                k += 1
            else:
                self._now = self._state_end
                self._state = self.BURST if self._state == self.IDLE else self.IDLE
                self._state_end = self._now + self._sojourn()
        return times, states

    def arrivals_until(self, t_end: float) -> Tuple[np.ndarray, np.ndarray]:
        """Generate every arrival with time strictly before ``t_end``.

        Chunked wrapper over :meth:`arrivals`; the final partial draw is
        rolled back so a later call continues the stream exactly where
        this one stopped admitting events.
        """
        out_t: List[float] = []
        out_s: List[int] = []
        while True:
            gap = self.rng.exponential(1.0 / self._rate())  # numlint: disable=NL002 -- MMPPConfig.__post_init__ rejects nonpositive rates
            if self._now + gap >= self._state_end:
                if self._state_end >= t_end:
                    # next event (arrival or toggle) lands past the window;
                    # leave the clock at the window edge for the caller
                    self._now = min(self._state_end, t_end)
                    break
                self._now = self._state_end
                self._state = self.BURST if self._state == self.IDLE else self.IDLE
                self._state_end = self._now + self._sojourn()
                continue
            if self._now + gap >= t_end:
                self._now = t_end
                break
            self._now += gap
            out_t.append(self._now)
            out_s.append(self._state)
        return (np.asarray(out_t, dtype=np.float64),
                np.asarray(out_s, dtype=np.int64))

"""Multi-RAT (Radio Access Technology) assignment.

"Multi-Radio Access Technology (RAT) handling for multi-connectivity
(each with its own QoS requirements)" (§I): assign each user to one of
several RATs (e.g. sub-6 GHz NR, mmWave NR, LTE, Wi-Fi) whose per-user
rates and capacities differ, maximizing served utility subject to
per-RAT capacity — a generalized assignment MILP with exact, LP-rounded,
and PSO solution paths mirroring the RRA trio.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.minlp.heuristics import round_and_repair
from repro.minlp.milp import solve_milp
from repro.minlp.model import MILPModel
from repro.pso.discrete import DiscreteSpace, DistributionDiscretePSO
from repro.pso.swarm import PSOConfig

__all__ = ["MultiRATProblem", "MultiRATResult", "solve_multirat_exact",
           "solve_multirat_relaxed", "solve_multirat_pso"]


@dataclass(frozen=True)
class MultiRATProblem:
    """Assignment instance.

    ``rates[u, r]`` is the rate user u would get on RAT r;
    ``capacity[r]`` caps how many users RAT r can serve;
    ``min_rates[u]`` is the per-user QoS floor (a user may only be
    assigned to RATs that satisfy it).
    """

    rates: np.ndarray
    capacity: np.ndarray
    min_rates: np.ndarray

    def __post_init__(self):
        rates = np.asarray(self.rates, dtype=np.float64)
        cap = np.asarray(self.capacity, dtype=np.float64).ravel()
        mins = np.asarray(self.min_rates, dtype=np.float64).ravel()
        if rates.ndim != 2 or cap.size != rates.shape[1] or mins.size != rates.shape[0]:
            raise ConfigurationError("inconsistent multi-RAT dimensions")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "capacity", cap)
        object.__setattr__(self, "min_rates", mins)

    @property
    def n_users(self) -> int:
        return self.rates.shape[0]

    @property
    def n_rats(self) -> int:
        return self.rates.shape[1]

    def evaluate(self, assignment: np.ndarray) -> dict:
        """``assignment[u]`` in {-1 (unserved), 0..R-1}."""
        assignment = np.asarray(assignment, dtype=int)
        served = assignment >= 0
        load = np.zeros(self.n_rats)
        rate_terms = []
        viol_terms = []
        for u in range(self.n_users):
            r = assignment[u]
            if r < 0:
                viol_terms.append(float(self.min_rates[u]))
                continue
            load[r] += 1
            rate = self.rates[u, r]
            rate_terms.append(float(rate))
            viol_terms.append(max(float(self.min_rates[u] - rate), 0.0))
        return {
            "total_rate": math.fsum(rate_terms),
            "load": load,
            "capacity_ok": bool(np.all(load <= self.capacity + 1e-9)),
            "qos_violation": math.fsum(viol_terms),
            "served": int(served.sum()),
        }

    def to_milp(self) -> MILPModel:
        u_n, r_n = self.n_users, self.n_rats
        n = u_n * r_n

        def idx(u: int, r: int) -> int:
            return u * r_n + r

        c = np.zeros(n)
        for u in range(u_n):
            for r in range(r_n):
                # assignments violating the user's QoS floor are priced out
                c[idx(u, r)] = -self.rates[u, r] if self.rates[u, r] >= self.min_rates[u] else 1e12
        g_rows, h_vals = [], []
        for u in range(u_n):
            row = np.zeros(n)
            row[u * r_n : (u + 1) * r_n] = 1.0
            g_rows.append(row)
            h_vals.append(1.0)
        for r in range(r_n):
            row = np.zeros(n)
            for u in range(u_n):
                row[idx(u, r)] = 1.0
            g_rows.append(row)
            h_vals.append(float(self.capacity[r]))
        lp = LPProblem(c=c, g=np.asarray(g_rows), h=np.asarray(h_vals),
                       lo=np.zeros(n), hi=np.ones(n))
        return MILPModel(lp, frozenset(range(n)))

    def assignment_from_x(self, x: np.ndarray) -> np.ndarray:
        xr = np.asarray(x).reshape(self.n_users, self.n_rats)
        out = np.full(self.n_users, -1, dtype=int)
        for u in range(self.n_users):
            r = int(np.argmax(xr[u]))
            if xr[u, r] > 0.5:
                out[u] = r
        return out


@dataclass(frozen=True)
class MultiRATResult:
    method: str
    assignment: np.ndarray
    total_rate: float
    capacity_ok: bool
    qos_violation: float
    wall_time: float


def solve_multirat_exact(problem: MultiRATProblem, max_nodes: int = 20000) -> MultiRATResult:
    start = time.perf_counter()
    model = problem.to_milp()
    res = solve_milp(model, max_nodes=max_nodes)
    if res.x is None:
        raise InfeasibleError("multi-RAT MILP infeasible")
    a = problem.assignment_from_x(res.x)
    ev = problem.evaluate(a)
    return MultiRATResult("exact-bnb", a, ev["total_rate"], ev["capacity_ok"],
                          ev["qos_violation"], time.perf_counter() - start)


def solve_multirat_relaxed(problem: MultiRATProblem) -> MultiRATResult:
    start = time.perf_counter()
    model = problem.to_milp()
    relaxed = solve_lp(model.relaxation())
    x = round_and_repair(model, relaxed.x)
    a = problem.assignment_from_x(x if x is not None else relaxed.x)
    ev = problem.evaluate(a)
    return MultiRATResult("lp-round", a, ev["total_rate"], ev["capacity_ok"],
                          ev["qos_violation"], time.perf_counter() - start)


def solve_multirat_pso(problem: MultiRATProblem, swarm_size: int = 16,
                       generations: int = 50, seed: int = 0) -> MultiRATResult:
    start = time.perf_counter()
    space = DiscreteSpace(tuple(tuple(range(problem.n_rats + 1)) for _ in range(problem.n_users)))
    scale = float(problem.rates.max())

    def objective(vec: np.ndarray) -> float:
        a = np.asarray(vec, dtype=int) - 1
        ev = problem.evaluate(a)
        obj = -ev["total_rate"] + 10.0 * ev["qos_violation"]
        over = np.maximum(ev["load"] - problem.capacity, 0.0).sum()
        return obj + 10.0 * scale * over

    swarm = DistributionDiscretePSO(
        objective, space,
        config=PSOConfig(swarm_size=swarm_size, max_generations=generations),
        rng=np.random.default_rng(seed),
    )
    res = swarm.run()
    a = np.asarray(res.best_x, dtype=int) - 1
    ev = problem.evaluate(a)
    return MultiRATResult("pso", a, ev["total_rate"], ev["capacity_ok"],
                          ev["qos_violation"], time.perf_counter() - start)

"""Radio Resource Allocation (RRA) — the paper's flagship QoS MINLP.

"An RRA problem may be formulated as a problem of optimally assigning
frequency-time blocks (integer variables) to a number of served
connections while simultaneously determining the appropriate transmit
powers (continuous variables) for these blocks" (§I).  Following the
paper's own discretization step (continuous variables converted to
discrete levels for the swarm), transmit power is chosen from a finite
level set, which linearizes the MINLP into an exactly solvable MILP:

    max  sum_{u,b,p} r[u,b,p] y[u,b,p]
    s.t. sum_{u,p} y[u,b,p] <= 1                 for every block b
         sum_{b,p} r[u,b,p] y[u,b,p] >= R_u^min  for every user u
         sum_{u,b,p} P_p y[u,b,p] <= P_total
         y binary

with ``r[u,b,p]`` the Shannon rate of user u on block b at power P_p.

Three solution strategies matching the QOS benchmark's comparison:
exact branch-and-bound, LP-relaxation + rounding repair, and discrete
PSO over per-block assignment decisions.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError, NumericalInstabilityError
from repro.resilience import (
    Budget,
    BudgetReport,
    CircuitBreaker,
    RetryPolicy,
    Rung,
    run_ladder,
)
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.minlp.heuristics import round_and_repair
from repro.minlp.milp import solve_milp
from repro.minlp.model import MILPModel
from repro.pso.discrete import DiscreteSpace, DistributionDiscretePSO
from repro.pso.swarm import PSOConfig
from repro.qos.channel import shannon_rate
from repro.qos.traffic import UserSession

__all__ = ["RRAProblem", "RRAResult", "ResilientRRAResult", "solve_rra_exact",
           "solve_rra_relaxed", "solve_rra_pso", "solve_rra_greedy",
           "solve_rra_resilient", "RRA_FALLBACK"]

#: degradation order for the RRA solve path: exact MILP, LP-rounding,
#: then the greedy heuristic as the guaranteed conservative rung
RRA_FALLBACK: Tuple[str, ...] = ("exact-bnb", "lp-round", "greedy")


@dataclass(frozen=True)
class RRAProblem:
    """One RRA instance: gains, users, power levels, and budget."""

    gains: np.ndarray  # (U, B) linear channel gains
    users: List[UserSession]
    power_levels_mw: np.ndarray  # (P,) discrete transmit powers per block
    total_power_mw: float
    noise_mw: float
    bandwidth_hz: float = 180e3

    def __post_init__(self):
        gains = np.asarray(self.gains, dtype=np.float64)
        if gains.ndim != 2 or gains.shape[0] != len(self.users):
            raise ConfigurationError("gains must be (n_users, n_blocks)")
        levels = np.asarray(self.power_levels_mw, dtype=np.float64).ravel()
        if levels.size < 1 or np.any(levels <= 0):
            raise ConfigurationError("need positive power levels")
        if self.total_power_mw <= 0 or self.noise_mw <= 0:
            raise ConfigurationError("powers must be positive")
        object.__setattr__(self, "gains", gains)
        object.__setattr__(self, "power_levels_mw", levels)

    @property
    def n_users(self) -> int:
        return self.gains.shape[0]

    @property
    def n_blocks(self) -> int:
        return self.gains.shape[1]

    @property
    def n_levels(self) -> int:
        return self.power_levels_mw.size

    def rate_table(self) -> np.ndarray:
        """Shannon rates r[u, b, p] in bits/s."""
        snr = (
            self.gains[:, :, None]
            * self.power_levels_mw[None, None, :]
            / self.noise_mw
        )
        return shannon_rate(snr, self.bandwidth_hz)

    def min_rates(self) -> np.ndarray:
        return np.array([u.min_rate_bps for u in self.users])

    # ---- assignment evaluation ----------------------------------------------
    def evaluate_assignment(self, choice: np.ndarray) -> dict:
        """Evaluate a per-block decision vector.

        ``choice[b]`` encodes ``-1`` (idle) or ``u * n_levels + p``.
        Returns rates, power use, and QoS satisfaction.
        """
        rates = self.rate_table()
        user_rates = np.zeros(self.n_users)
        power_terms = []
        for b, ch in enumerate(np.asarray(choice, dtype=int)):
            if ch < 0:
                continue
            u, p = divmod(int(ch), self.n_levels)
            user_rates[u] += rates[u, b, p]
            power_terms.append(float(self.power_levels_mw[p]))
        power = math.fsum(power_terms)
        mins = self.min_rates()
        return {
            "user_rates": user_rates,
            "total_rate": float(user_rates.sum()),
            "power_mw": power,
            "power_ok": power <= self.total_power_mw + 1e-9,
            "qos_ok": bool(np.all(user_rates >= mins - 1e-6)),
            "qos_violation": float(np.sum(np.maximum(mins - user_rates, 0.0))),
        }

    # ---- MILP construction ---------------------------------------------------
    def to_milp(self) -> MILPModel:
        """Assemble the linearized MILP (minimization of negative rate)."""
        u_n, b_n, p_n = self.n_users, self.n_blocks, self.n_levels
        n = u_n * b_n * p_n
        rates = self.rate_table()

        def idx(u: int, b: int, p: int) -> int:
            return (u * b_n + b) * p_n + p

        c = np.zeros(n)
        for u in range(u_n):
            for b in range(b_n):
                for p in range(p_n):
                    c[idx(u, b, p)] = -rates[u, b, p]

        g_rows: list[np.ndarray] = []
        h_vals: list[float] = []
        # one assignment per block
        for b in range(b_n):
            row = np.zeros(n)
            for u in range(u_n):
                for p in range(p_n):
                    row[idx(u, b, p)] = 1.0
            g_rows.append(row)
            h_vals.append(1.0)
        # power budget
        row = np.zeros(n)
        for u in range(u_n):
            for b in range(b_n):
                for p in range(p_n):
                    row[idx(u, b, p)] = float(self.power_levels_mw[p])
        g_rows.append(row)
        h_vals.append(float(self.total_power_mw))
        # per-user minimum rate: -sum r y <= -R_min
        mins = self.min_rates()
        for u in range(u_n):
            row = np.zeros(n)
            for b in range(b_n):
                for p in range(p_n):
                    row[idx(u, b, p)] = -rates[u, b, p]
            g_rows.append(row)
            h_vals.append(-float(mins[u]))

        lp = LPProblem(c=c, g=np.asarray(g_rows), h=np.asarray(h_vals),
                       lo=np.zeros(n), hi=np.ones(n))
        return MILPModel(lp, frozenset(range(n)))

    def choice_from_milp_x(self, x: np.ndarray) -> np.ndarray:
        """Convert a MILP solution vector to a per-block choice vector."""
        u_n, b_n, p_n = self.n_users, self.n_blocks, self.n_levels
        choice = np.full(b_n, -1, dtype=int)
        xr = np.asarray(x).reshape(u_n, b_n, p_n)
        for b in range(b_n):
            flat = xr[:, b, :].ravel()
            j = int(np.argmax(flat))
            if flat[j] > 0.5:
                u, p = divmod(j, p_n)
                choice[b] = u * p_n + p
        return choice


@dataclass(frozen=True)
class RRAResult:
    """Outcome of one RRA solve."""

    method: str
    choice: np.ndarray
    total_rate: float
    qos_ok: bool
    power_ok: bool
    wall_time: float
    extra: dict = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.qos_ok and self.power_ok


def solve_rra_exact(problem: RRAProblem, max_nodes: int = 50000,
                    time_limit: float = 120.0) -> RRAResult:
    """Globally optimal RRA by branch-and-bound on the linearized MILP."""
    start = time.perf_counter()
    model = problem.to_milp()
    res = solve_milp(model, max_nodes=max_nodes, time_limit=time_limit)
    if res.x is None:
        raise InfeasibleError("RRA instance is infeasible (QoS floors too high)")
    choice = problem.choice_from_milp_x(res.x)
    ev = problem.evaluate_assignment(choice)
    return RRAResult(
        method="exact-bnb",
        choice=choice,
        total_rate=ev["total_rate"],
        qos_ok=ev["qos_ok"],
        power_ok=ev["power_ok"],
        wall_time=time.perf_counter() - start,
        extra={"nodes": res.nodes_explored, "gap": res.gap, "converged": res.converged},
    )


def solve_rra_relaxed(problem: RRAProblem) -> RRAResult:
    """LP relaxation + rounding repair — the MILP-relaxation grade."""
    start = time.perf_counter()
    model = problem.to_milp()
    relaxed = solve_lp(model.relaxation())
    x = round_and_repair(model, relaxed.x)
    if x is None:
        # fall back to the fractional solution greedily snapped per block
        x = np.zeros(model.dim)
        choice = problem.choice_from_milp_x(relaxed.x)
    else:
        choice = problem.choice_from_milp_x(x)
    ev = problem.evaluate_assignment(choice)
    return RRAResult(
        method="lp-round",
        choice=choice,
        total_rate=ev["total_rate"],
        qos_ok=ev["qos_ok"],
        power_ok=ev["power_ok"],
        wall_time=time.perf_counter() - start,
        extra={"lp_bound": -relaxed.objective},
    )


def _pso_objective(problem: RRAProblem, qos_penalty: float, power_penalty: float):
    def objective(vec: np.ndarray) -> float:
        choice = np.asarray(vec, dtype=int) - 1  # space encodes 0 = idle
        ev = problem.evaluate_assignment(choice)
        obj = -ev["total_rate"]
        obj += qos_penalty * ev["qos_violation"]
        over = max(ev["power_mw"] - problem.total_power_mw, 0.0)
        obj += power_penalty * over
        return obj

    return objective


def solve_rra_pso(problem: RRAProblem, swarm_size: int = 16, generations: int = 60,
                  seed: int = 0) -> RRAResult:
    """Metaheuristic RRA: distribution-based discrete PSO over the
    per-block decision space (the stochastic-search grade of §II-A)."""
    start = time.perf_counter()
    cards = problem.n_users * problem.n_levels + 1  # 0 = idle
    space = DiscreteSpace(tuple(tuple(range(cards)) for _ in range(problem.n_blocks)))
    # scale penalties to the rate magnitudes in play
    scale = float(problem.rate_table().max())
    objective = _pso_objective(problem, qos_penalty=10.0, power_penalty=10.0 * scale)
    swarm = DistributionDiscretePSO(
        objective, space,
        config=PSOConfig(swarm_size=swarm_size, max_generations=generations),
        rng=np.random.default_rng(seed),
    )
    res = swarm.run()
    choice = np.asarray(res.best_x, dtype=int) - 1
    ev = problem.evaluate_assignment(choice)
    return RRAResult(
        method="pso",
        choice=choice,
        total_rate=ev["total_rate"],
        qos_ok=ev["qos_ok"],
        power_ok=ev["power_ok"],
        wall_time=time.perf_counter() - start,
        extra={"evaluations": res.evaluations},
    )


@dataclass(frozen=True)
class ResilientRRAResult:
    """One frame's RRA answer with degradation provenance."""

    result: RRAResult
    rung: str
    rung_index: int
    attempts: int
    failures: Tuple[Tuple[str, str], ...]
    budget: Optional[BudgetReport] = None
    rung_times: Tuple[Tuple[str, float], ...] = ()

    @property
    def degraded(self) -> bool:
        return self.rung_index > 0


def _validate_rra(value: object) -> None:
    """Reject corrupted allocations: an assignment that busts the power
    budget or carries NaN rates must degrade, never ship.  ``qos_ok`` may
    honestly be False (floors can be infeasible); that is reported, not
    rejected."""
    assert isinstance(value, RRAResult)
    if not np.isfinite(value.total_rate):
        raise NumericalInstabilityError(
            f"RRA result carries non-finite total rate {value.total_rate!r}")
    if not value.power_ok:
        raise NumericalInstabilityError(
            "RRA result violates the transmit power budget")


def solve_rra_resilient(
    problem: RRAProblem,
    budget: Optional[Budget] = None,
    breaker: Optional[CircuitBreaker] = None,
    retry: Optional[RetryPolicy] = None,
    max_nodes: int = 50000,
    time_limit: float = 120.0,
    solvers: Optional[Dict[str, Callable[[RRAProblem], RRAResult]]] = None,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> ResilientRRAResult:
    """RRA through the fallback ladder ``exact-bnb -> lp-round -> greedy``.

    The exact rung's MILP time limit is the smaller of ``time_limit`` and
    the budget's remaining wall clock; an :class:`InfeasibleError` from
    the exact rung (QoS floors too high) degrades to rungs that serve
    best-effort partial allocations instead of crashing the frame.
    ``solvers`` overrides rung implementations (the chaos-harness hook).
    """
    table: Dict[str, Callable[[RRAProblem], RRAResult]] = {
        "exact-bnb": lambda p: solve_rra_exact(
            p, max_nodes=max_nodes,
            time_limit=(min(time_limit, budget.remaining_time)
                        if budget is not None else time_limit)),
        "lp-round": solve_rra_relaxed,
        "greedy": solve_rra_greedy,
    }
    if solvers:
        table.update(solvers)
    retry = retry or RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)

    def make_solve(name: str, guaranteed: bool) -> Callable[[], RRAResult]:
        def solve() -> RRAResult:
            if budget is not None:
                if guaranteed:
                    budget.charge(1)
                else:
                    budget.spend(1, context=f"rra[{name}]")
            return table[name](problem)
        return solve

    rungs = [
        Rung(name=name, solve=make_solve(name, i == len(RRA_FALLBACK) - 1),
             grade=name, retry=retry,
             guaranteed=(i == len(RRA_FALLBACK) - 1))
        for i, name in enumerate(RRA_FALLBACK)
    ]
    res = run_ladder(rungs, budget=budget, breaker=breaker,
                     validator=_validate_rra, rng=rng, sleep=sleep,
                     name="rra")
    result = res.value
    assert isinstance(result, RRAResult)
    return ResilientRRAResult(
        result=result,
        rung=res.rung,
        rung_index=res.rung_index,
        attempts=res.attempts,
        failures=res.failures,
        budget=res.budget,
        rung_times=res.rung_times,
    )


def solve_rra_greedy(problem: RRAProblem) -> RRAResult:
    """Greedy baseline: first satisfy QoS floors by assigning each
    deficit user its best remaining block at max power, then fill the
    rest by marginal rate, respecting the power budget."""
    start = time.perf_counter()
    rates = problem.rate_table()
    p_max_idx = int(np.argmax(problem.power_levels_mw))
    n_b = problem.n_blocks
    choice = np.full(n_b, -1, dtype=int)
    remaining_power = problem.total_power_mw
    user_rates = np.zeros(problem.n_users)
    free = set(range(n_b))
    mins = problem.min_rates()

    def assign(u: int, b: int, p: int) -> None:
        nonlocal remaining_power
        choice[b] = u * problem.n_levels + p
        user_rates[u] += rates[u, b, p]
        remaining_power -= float(problem.power_levels_mw[p])
        free.discard(b)

    # phase 1: QoS floors
    progress = True
    while progress:
        progress = False
        deficits = mins - user_rates
        order = np.argsort(-deficits)
        for u in order:
            if deficits[u] <= 0 or not free:
                continue
            best_b = max(free, key=lambda b: rates[u, b, p_max_idx])
            if problem.power_levels_mw[p_max_idx] <= remaining_power:
                assign(int(u), best_b, p_max_idx)
                progress = True
            break
        if np.all(mins - user_rates <= 0):
            break
    # phase 2: throughput fill
    while free and remaining_power > 0:
        best = None
        for b in free:
            for u in range(problem.n_users):
                for p in range(problem.n_levels):
                    if problem.power_levels_mw[p] > remaining_power:
                        continue
                    gain = rates[u, b, p]
                    if best is None or gain > best[0]:
                        best = (gain, u, b, p)
        if best is None:
            break
        _, u, b, p = best
        assign(u, b, p)
    ev = problem.evaluate_assignment(choice)
    return RRAResult(
        method="greedy",
        choice=choice,
        total_rate=ev["total_rate"],
        qos_ok=ev["qos_ok"],
        power_ok=ev["power_ok"],
        wall_time=time.perf_counter() - start,
    )

"""Link adaptation: MCS selection under reliability targets.

The QoS classes of :mod:`repro.qos.traffic` carry a ``reliability``
target that the Shannon-rate model ignores.  Real systems meet it by
*link adaptation*: pick the modulation-and-coding scheme (MCS) whose
block error rate (BLER) at the current SINR stays below the class's
error budget.  Higher reliability ⇒ more conservative MCS ⇒ lower rate —
the URLLC-vs-eMBB trade the paper's "diverse QoS" revolves around.

The BLER model is the standard exponential waterfall
``BLER(snr) = exp(-k * (snr / snr_ref - 1))`` clipped to [0, 1], with
per-MCS reference SINRs spaced to mimic LTE/NR tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qos.traffic import QoSRequirement

__all__ = ["MCS", "DEFAULT_MCS_TABLE", "bler", "select_mcs", "effective_rate",
           "reliability_rate_table"]


@dataclass(frozen=True)
class MCS:
    """One modulation-and-coding scheme.

    ``spectral_efficiency`` is bits/s/Hz at operating point;
    ``snr_ref_db`` the SINR at which the waterfall is centered;
    ``waterfall_k`` the steepness.
    """

    index: int
    name: str
    spectral_efficiency: float
    snr_ref_db: float
    waterfall_k: float = 6.0

    def __post_init__(self):
        if self.spectral_efficiency <= 0:
            raise ConfigurationError("spectral efficiency must be positive")


DEFAULT_MCS_TABLE: List[MCS] = [
    MCS(0, "QPSK 1/4", 0.5, -2.0),
    MCS(1, "QPSK 1/2", 1.0, 1.0),
    MCS(2, "QPSK 3/4", 1.5, 4.0),
    MCS(3, "16QAM 1/2", 2.0, 7.0),
    MCS(4, "16QAM 3/4", 3.0, 10.5),
    MCS(5, "64QAM 2/3", 4.0, 14.0),
    MCS(6, "64QAM 5/6", 5.0, 17.5),
    MCS(7, "256QAM 3/4", 6.0, 21.0),
]


def bler(mcs: MCS, snr_db: float) -> float:
    """Block error rate of *mcs* at the given SINR (dB): exponential
    waterfall, 1.0 below reference knee region, -> 0 above it."""
    margin = 10.0 ** ((snr_db - mcs.snr_ref_db) / 10.0)
    return float(np.clip(np.exp(-mcs.waterfall_k * (margin - 1.0)), 0.0, 1.0))


def select_mcs(snr_db: float, target_bler: float,
               table: List[MCS] | None = None) -> MCS | None:
    """Highest-rate MCS whose BLER at *snr_db* meets ``target_bler``.

    Returns None when even the most robust MCS misses the target (the
    link cannot serve this reliability class at this SINR).
    """
    if not 0.0 < target_bler < 1.0:
        raise ConfigurationError("target BLER must lie in (0, 1)")
    table = table if table is not None else DEFAULT_MCS_TABLE
    best: MCS | None = None
    for mcs in table:
        if bler(mcs, snr_db) <= target_bler:
            if best is None or mcs.spectral_efficiency > best.spectral_efficiency:
                best = mcs
    return best


def effective_rate(snr_db: float, qos: QoSRequirement, bandwidth_hz: float = 180e3,
                   table: List[MCS] | None = None) -> float:
    """Goodput in bits/s under the class's reliability target.

    ``(1 - reliability)`` is the error budget; the selected MCS's
    residual BLER further derates the rate (retransmission-free model).
    Returns 0 when no MCS meets the budget.
    """
    target_bler = 1.0 - qos.reliability
    mcs = select_mcs(snr_db, target_bler, table)
    if mcs is None:
        return 0.0
    residual = bler(mcs, snr_db)
    return bandwidth_hz * mcs.spectral_efficiency * (1.0 - residual)


def reliability_rate_table(snr_db: float, reliabilities: List[float],
                           bandwidth_hz: float = 180e3) -> List[tuple]:
    """(reliability, chosen MCS name, goodput) rows for one SINR — the
    diverse-QoS trade made visible."""
    rows = []
    for rel in reliabilities:
        qos = QoSRequirement(min_rate_bps=0.0, max_latency_ms=1.0,
                             reliability=rel, priority=0)
        target = 1.0 - rel
        mcs = select_mcs(snr_db, target)
        rate = effective_rate(snr_db, qos, bandwidth_hz)
        rows.append((rel, mcs.name if mcs else "-", rate))
    return rows

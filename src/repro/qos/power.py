"""Power allocation: water-filling and QP forms.

The continuous half of the paper's RRA MINLP: given a block assignment,
distribute the power budget over the assigned blocks.  The canonical
solution is water-filling (closed form up to the water level); the same
problem is also posed as a box-constrained QP over the rate's quadratic
model so the convex substrate can be cross-validated against the closed
form, and as a QCQP with SINR-floor constraints (paper Eq. 7 class).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.convex.problem import QCQPProblem, QuadraticForm
from repro.convex.qcqp import solve_qcqp_barrier
from repro.numerics.stable_ops import log2p1

__all__ = ["water_filling", "sum_rate", "PowerControlResult", "qcqp_power_control"]


def sum_rate(gains: np.ndarray, powers: np.ndarray, noise_mw: float,
             bandwidth_hz: float = 180e3) -> float:
    """Total Shannon rate over parallel channels."""
    if noise_mw <= 0:
        raise ConfigurationError("noise power must be positive")
    gains = np.asarray(gains, dtype=np.float64)
    powers = np.asarray(powers, dtype=np.float64)
    return float(np.sum(bandwidth_hz * log2p1(gains * powers / noise_mw)))


def water_filling(gains: np.ndarray, total_power_mw: float, noise_mw: float,
                  tol: float = 1e-12, max_iter: int = 200) -> np.ndarray:
    """Classic water-filling: ``p_i = max(mu - noise/g_i, 0)`` with the
    water level ``mu`` found by bisection so powers sum to the budget."""
    gains = np.asarray(gains, dtype=np.float64).ravel()
    if np.any(gains <= 0):
        raise ConfigurationError("water-filling requires positive gains")
    if total_power_mw <= 0 or noise_mw <= 0:
        raise ConfigurationError("powers must be positive")
    floors = noise_mw / gains
    lo = float(floors.min())
    hi = lo + total_power_mw + float(floors.max())
    for _ in range(max_iter):
        mu = 0.5 * (lo + hi)
        p = np.maximum(mu - floors, 0.0)
        total = p.sum()
        if abs(total - total_power_mw) <= tol * max(total_power_mw, 1.0):
            return p
        if total > total_power_mw:
            hi = mu
        else:
            lo = mu
    return np.maximum(0.5 * (lo + hi) - floors, 0.0)


@dataclass(frozen=True)
class PowerControlResult:
    """QCQP power-control outcome."""

    powers_mw: np.ndarray
    objective: float
    feasible: bool


def qcqp_power_control(gains: np.ndarray, noise_mw: float, total_power_mw: float,
                       min_snr_linear: np.ndarray) -> PowerControlResult:
    """Minimum-energy power control with SINR floors, as a convex QCQP.

    minimize   ||p||^2
    subject to g_i p_i >= snr_min_i * noise  (linear, written as a
               degenerate quadratic constraint to exercise the Eq. 7
               machinery), sum p <= P_total, p >= 0.
    """
    gains = np.asarray(gains, dtype=np.float64).ravel()
    snr = np.asarray(min_snr_linear, dtype=np.float64).ravel()
    n = gains.size
    if np.any(gains <= 0):
        raise ConfigurationError("power control requires positive gains")
    if snr.size != n:
        raise ConfigurationError("SINR floor vector must match channel count")
    # feasibility pre-check: the minimum powers must fit the budget
    p_floor = snr * noise_mw / gains
    if p_floor.sum() > total_power_mw + 1e-12:
        raise InfeasibleError(
            f"SINR floors need {p_floor.sum():.3f} mW > budget {total_power_mw:.3f} mW"
        )
    objective = QuadraticForm(2.0 * np.eye(n), np.zeros(n))
    constraints = []
    zero = np.zeros((n, n))
    for i in range(n):
        # -g_i p_i + snr_i * noise <= 0
        q = np.zeros(n)
        q[i] = -gains[i]
        constraints.append(QuadraticForm(zero, q, float(snr[i] * noise_mw)))
        # -p_i <= 0
        q2 = np.zeros(n)
        q2[i] = -1.0
        constraints.append(QuadraticForm(zero, q2, 0.0))
    # sum p - P_total <= 0
    constraints.append(QuadraticForm(zero, np.ones(n), -float(total_power_mw)))
    problem = QCQPProblem(objective, constraints)
    # analytic strictly feasible start: floors plus an even share of the
    # remaining budget (the generic phase-1 struggles with the mixed
    # 1e-9-scale gain constraints and O(1) budget constraint)
    slack = total_power_mw - p_floor.sum()
    x0 = p_floor + 0.5 * slack / n
    sol = solve_qcqp_barrier(problem, x0=x0)
    powers = np.maximum(sol.x, 0.0)
    feasible = problem.is_feasible(powers, tol=1e-4)
    return PowerControlResult(powers_mw=powers, objective=sol.objective, feasible=feasible)

"""5G QoS substrate: channel models, eMBB/URLLC/mMTC traffic, radio
resource allocation (the paper's flagship MINLP), power control, network
slicing, multi-RAT assignment, and a frame scheduler."""

from repro.qos.admission import (
    AdmissionProblem,
    AdmissionResult,
    solve_admission_exact,
    solve_admission_greedy,
    solve_admission_relaxed,
)
from repro.qos.channel import (
    ChannelConfig,
    ChannelModel,
    db_to_linear,
    linear_to_db,
    shannon_rate,
    sinr,
)
from repro.qos.link_adaptation import (
    DEFAULT_MCS_TABLE,
    MCS,
    bler,
    effective_rate,
    reliability_rate_table,
    select_mcs,
)
from repro.qos.mobility import GilbertElliottChannel, GilbertElliottConfig
from repro.qos.multirat import (
    MultiRATProblem,
    MultiRATResult,
    solve_multirat_exact,
    solve_multirat_pso,
    solve_multirat_relaxed,
)
from repro.qos.power import PowerControlResult, qcqp_power_control, sum_rate, water_filling
from repro.qos.rra import (
    RRAProblem,
    RRAResult,
    solve_rra_exact,
    solve_rra_greedy,
    solve_rra_pso,
    solve_rra_relaxed,
)
from repro.qos.scheduler import FrameStats, ScheduleReport, Scheduler
from repro.qos.slicing import (
    SliceSpec,
    SlicingResult,
    allocate_slices,
    allocate_slices_with_activation,
)
from repro.qos.traffic import (
    DEFAULT_QOS,
    MMPPConfig,
    MMPPProcess,
    QoSRequirement,
    ServiceClass,
    TrafficGenerator,
    UserSession,
)

__all__ = [
    "AdmissionProblem",
    "AdmissionResult",
    "ChannelConfig",
    "ChannelModel",
    "DEFAULT_MCS_TABLE",
    "DEFAULT_QOS",
    "FrameStats",
    "GilbertElliottChannel",
    "MCS",
    "GilbertElliottConfig",
    "MMPPConfig",
    "MMPPProcess",
    "MultiRATProblem",
    "MultiRATResult",
    "PowerControlResult",
    "QoSRequirement",
    "RRAProblem",
    "RRAResult",
    "ScheduleReport",
    "Scheduler",
    "ServiceClass",
    "SliceSpec",
    "SlicingResult",
    "TrafficGenerator",
    "UserSession",
    "allocate_slices",
    "bler",
    "allocate_slices_with_activation",
    "db_to_linear",
    "effective_rate",
    "linear_to_db",
    "qcqp_power_control",
    "reliability_rate_table",
    "select_mcs",
    "shannon_rate",
    "solve_admission_exact",
    "solve_admission_greedy",
    "solve_admission_relaxed",
    "sinr",
    "solve_multirat_exact",
    "solve_multirat_pso",
    "solve_multirat_relaxed",
    "solve_rra_exact",
    "solve_rra_greedy",
    "solve_rra_pso",
    "solve_rra_relaxed",
    "sum_rate",
    "water_filling",
]

"""Time-correlated channel dynamics: Gilbert-Elliott fading.

The i.i.d. per-frame Rayleigh draws of :class:`repro.qos.channel.ChannelModel`
are memoryless; real links burst.  The two-state Gilbert-Elliott chain
(GOOD <-> BAD) is the classic model of bursty link quality; each user's
state modulates their large-scale gain, so scheduling decisions face
*persistent* bad periods — the regime where QoS floors actually bind
across frames and admission/scheduling policies differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qos.channel import ChannelConfig, ChannelModel

__all__ = ["GilbertElliottConfig", "GilbertElliottChannel"]


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Two-state chain parameters.

    ``p_good_to_bad`` / ``p_bad_to_good`` are per-frame transition
    probabilities; ``bad_attenuation_db`` is the extra loss in the BAD
    state.  Steady-state bad probability is
    ``p_gb / (p_gb + p_bg)``.
    """

    p_good_to_bad: float = 0.1
    p_bad_to_good: float = 0.3
    bad_attenuation_db: float = 15.0

    def __post_init__(self):
        for p in (self.p_good_to_bad, self.p_bad_to_good):
            if not 0.0 < p < 1.0:
                raise ConfigurationError("transition probabilities must lie in (0, 1)")
        if self.bad_attenuation_db < 0:
            raise ConfigurationError("attenuation must be nonnegative")

    @property
    def steady_state_bad(self) -> float:
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def mean_bad_burst_frames(self) -> float:
        return 1.0 / self.p_bad_to_good


class GilbertElliottChannel:
    """A :class:`ChannelModel` wrapper with per-user burst states.

    Call :meth:`gains` once per frame: it advances every user's chain and
    returns the (U, B) gain matrix with BAD-state users attenuated.
    """

    def __init__(self, n_users: int, channel: ChannelConfig | None = None,
                 ge: GilbertElliottConfig | None = None,
                 rng: np.random.Generator | None = None):
        if n_users < 1:
            raise ConfigurationError("need at least one user")
        self.rng = rng or np.random.default_rng(0)
        self.base = ChannelModel(channel or ChannelConfig(), rng=self.rng)
        self.ge = ge or GilbertElliottConfig()
        # start users in steady state
        self.states = self.rng.random(n_users) < self.ge.steady_state_bad  # True = BAD
        self.n_users = n_users
        self._bad_linear = 10.0 ** (-self.ge.bad_attenuation_db / 10.0)

    @property
    def noise_linear_mw(self) -> float:
        return self.base.noise_linear_mw

    def step(self) -> np.ndarray:
        """Advance every user's chain one frame; returns the BAD mask."""
        u = self.rng.random(self.n_users)
        next_states = np.where(
            self.states,
            u >= self.ge.p_bad_to_good,   # stay BAD unless recovery fires
            u < self.ge.p_good_to_bad,    # fall into BAD
        )
        self.states = next_states
        return self.states.copy()

    def gains(self) -> np.ndarray:
        """One frame's (U, B) gains: advance the chains, draw fast fading,
        attenuate BAD users."""
        self.step()
        g = self.base.gains(self.n_users)
        g[self.states] *= self._bad_linear
        return g

"""Core framework for the numlint static analyzer.

Defines the :class:`Finding` record, the :class:`Rule` base class and its
registry, the per-file :class:`FileContext` handed to every rule, and the
``# numlint: disable=...`` suppression grammar.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "FlowRule",
    "Suppressions",
    "SuppressionError",
    "register_rule",
    "get_rule",
    "all_rules",
    "rules_in_family",
    "known_rule_ids",
    "RULE_FAMILIES",
]

#: ``NL`` = per-expression numerical rules; ``DT`` = determinism flow
#: rules; ``RD`` = resource-discipline flow rules.
RULE_ID_RE = re.compile(r"^(?:NL|DT|RD)\d{3}$")

#: the two analyzer tiers (see docs/STATIC_ANALYSIS.md)
RULE_FAMILIES = ("expression", "flow")

# ``# numlint: disable=NL001,NL002 -- justification``
# ``# numlint: disable-file=NL003 -- justification``  (anywhere in the file)
_SUPPRESS_RE = re.compile(
    r"#\s*numlint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline.

        Hashes (rule, path, whitespace-normalized source line) so entries
        survive unrelated edits that only shift line numbers.
        """
        normalized = " ".join(self.snippet.split())
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{normalized}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class SuppressionError(ValueError):
    """A ``# numlint:`` pragma names a rule code the registry does not know.

    Unknown codes used to be silently ignored, which meant a typo like
    ``disable=NL02`` left the finding live while the author believed it
    suppressed — or worse, kept a stale pragma forever.  The parser now
    fails loudly; the runner reports it like a parse error (exit 1).
    """

    def __init__(self, line: int, code: str):
        self.line = line
        self.code = code
        known = ", ".join(sorted(known_rule_ids())) or "<no rules registered>"
        super().__init__(
            f"line {line}: unknown rule code {code!r} in numlint suppression "
            f"(known codes: all, {known})"
        )


def _comment_lines(source: str) -> "Iterator[Tuple[int, str]]":
    """Yield ``(lineno, comment_text)`` for every real comment token.

    Tokenizing keeps pragma-shaped text inside string literals out of
    suppression parsing.  If the source does not tokenize (it always does
    for files the runner already ``ast.parse``d), fall back to the raw
    line scan so direct callers still get best-effort parsing.
    """
    try:
        comments = [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        yield from enumerate(source.splitlines(), start=1)
    else:
        yield from comments


@dataclass
class Suppressions:
    """Parsed ``# numlint:`` pragmas for one file."""

    # line number -> set of rule ids (or {"all"})
    by_line: Dict[int, set] = field(default_factory=dict)
    # file-wide suppressed rule ids (or {"all"})
    file_wide: set = field(default_factory=set)
    # (line, rule) -> justification text, for tooling/reporting
    justifications: Dict[Tuple[int, str], str] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        """Parse every pragma in *source*.

        Raises :class:`SuppressionError` on a rule code the registry does
        not know (only ``all`` and registered ids are valid), so typo'd
        pragmas fail loudly instead of silently suppressing nothing.

        Only genuine comment tokens are considered: a pragma-shaped text
        inside a string literal (e.g. a lint-test fixture) is not a
        suppression and must not be validated as one.
        """
        supp = cls()
        known = known_rule_ids()
        for lineno, line in _comment_lines(source):
            m = _SUPPRESS_RE.search(line)
            if m is None:
                continue
            rules = {r.strip() for r in m.group("rules").split(",")}
            if known:  # registry populated (always true via the package)
                for code in sorted(rules):
                    if code != "all" and code not in known:
                        raise SuppressionError(lineno, code)
            why = m.group("why") or ""
            if m.group("kind") == "disable-file":
                supp.file_wide |= rules
                for r in rules:
                    supp.justifications[(0, r)] = why
            else:
                supp.by_line.setdefault(lineno, set()).update(rules)
                for r in rules:
                    supp.justifications[(lineno, r)] = why
        return supp

    def is_suppressed(self, finding: Finding) -> bool:
        if "all" in self.file_wide or finding.rule_id in self.file_wide:
            return True
        line_rules = self.by_line.get(finding.line, set())
        return "all" in line_rules or finding.rule_id in line_rules


class FileContext:
    """Everything a rule needs to analyze one parsed source file."""

    def __init__(self, path: str, source: str, tree: ast.AST):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Innermost enclosing function/lambda, or the module itself."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return anc
        return self.tree

    def line_of(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=self.line_of(node),
        )

    def path_segments(self) -> Tuple[str, ...]:
        return tuple(re.split(r"[\\/]+", self.path))


class Rule:
    """Base class for per-file **expression** rules.

    Subclasses set ``rule_id`` (``NLnnn``), ``title``, ``rationale`` (the
    Fig. 3 / paper grounding shown by ``--list-rules``) and implement
    :meth:`check` over one parsed file.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    #: which analyzer tier the rule belongs to (see RULE_FAMILIES)
    family: str = "expression"

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


class FlowRule(Rule):
    """Base class for interprocedural **flow** rules (``DTnnn``/``RDnnn``).

    Flow rules see the whole analyzed file set at once through a
    :class:`~repro.analysis.callgraph.ProjectContext` — symbol table,
    call graph, and per-function CFG/reaching-definitions caches — and
    implement :meth:`check_project` instead of the per-file :meth:`check`.
    """

    family = "flow"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not RULE_ID_RE.match(cls.rule_id):
        raise ValueError(
            f"invalid rule id {cls.rule_id!r} (expected NLnnn, DTnnn or RDnnn)"
        )
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def all_rules() -> List[Rule]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rules_in_family(family: str) -> List[Rule]:
    """Rules of one tier; *family* must be in :data:`RULE_FAMILIES`."""
    if family not in RULE_FAMILIES:
        raise ValueError(
            f"unknown rule family {family!r} (expected one of {RULE_FAMILIES})"
        )
    return [r for r in all_rules() if r.family == family]


def known_rule_ids() -> set:
    """Registered rule ids — the vocabulary valid in suppressions."""
    return set(_REGISTRY)

"""Core framework for the numlint static analyzer.

Defines the :class:`Finding` record, the :class:`Rule` base class and its
registry, the per-file :class:`FileContext` handed to every rule, and the
``# numlint: disable=...`` suppression grammar.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "Suppressions",
    "register_rule",
    "get_rule",
    "all_rules",
]

RULE_ID_RE = re.compile(r"^NL\d{3}$")

# ``# numlint: disable=NL001,NL002 -- justification``
# ``# numlint: disable-file=NL003 -- justification``  (anywhere in the file)
_SUPPRESS_RE = re.compile(
    r"#\s*numlint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline.

        Hashes (rule, path, whitespace-normalized source line) so entries
        survive unrelated edits that only shift line numbers.
        """
        normalized = " ".join(self.snippet.split())
        digest = hashlib.sha256(
            f"{self.rule_id}|{self.path}|{normalized}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Suppressions:
    """Parsed ``# numlint:`` pragmas for one file."""

    # line number -> set of rule ids (or {"all"})
    by_line: Dict[int, set] = field(default_factory=dict)
    # file-wide suppressed rule ids (or {"all"})
    file_wide: set = field(default_factory=set)
    # (line, rule) -> justification text, for tooling/reporting
    justifications: Dict[Tuple[int, str], str] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        supp = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if m is None:
                continue
            rules = {r.strip() for r in m.group("rules").split(",")}
            why = m.group("why") or ""
            if m.group("kind") == "disable-file":
                supp.file_wide |= rules
                for r in rules:
                    supp.justifications[(0, r)] = why
            else:
                supp.by_line.setdefault(lineno, set()).update(rules)
                for r in rules:
                    supp.justifications[(lineno, r)] = why
        return supp

    def is_suppressed(self, finding: Finding) -> bool:
        if "all" in self.file_wide or finding.rule_id in self.file_wide:
            return True
        line_rules = self.by_line.get(finding.line, set())
        return "all" in line_rules or finding.rule_id in line_rules


class FileContext:
    """Everything a rule needs to analyze one parsed source file."""

    def __init__(self, path: str, source: str, tree: ast.AST):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """Innermost enclosing function/lambda, or the module itself."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return anc
        return self.tree

    def line_of(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=self.line_of(node),
        )

    def path_segments(self) -> Tuple[str, ...]:
        return tuple(re.split(r"[\\/]+", self.path))


class Rule:
    """Base class for numlint rules.

    Subclasses set ``rule_id`` (``NLnnn``), ``title``, ``rationale`` (the
    Fig. 3 / paper grounding shown by ``--list-rules``) and implement
    :meth:`check`.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not RULE_ID_RE.match(cls.rule_id):
        raise ValueError(f"invalid rule id {cls.rule_id!r} (expected NLnnn)")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def all_rules() -> List[Rule]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]

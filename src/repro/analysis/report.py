"""Text and JSON reporters for numlint results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, List

from repro.analysis.core import RULE_FAMILIES, rules_in_family

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.runner import AnalysisResult

__all__ = ["render_text", "render_json", "render_rule_catalog", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: "AnalysisResult", verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    for f in result.findings:
        lines.append(f"{f.location()}: {f.rule_id} {f.message}")
        if f.snippet:
            lines.append(f"    {f.snippet}")
    if result.parse_errors:
        for path, err in result.parse_errors:
            lines.append(f"{path}: PARSE-ERROR {err}")
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)}):")
        for f in result.baselined:
            lines.append(f"  {f.location()}: {f.rule_id} (grandfathered)")
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(result.stale_baseline)}) — the "
            "offending lines changed; re-review and regenerate:"
        )
        for e in result.stale_baseline:
            lines.append(f"  {e.path} {e.rule} {e.fingerprint}")
    lines.append("")
    lines.append(
        f"numlint: {result.files_checked} files, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: "AnalysisResult") -> str:
    """Machine-readable report (schema_version pins the contract)."""
    doc = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "parse_errors": len(result.parse_errors),
        },
        "findings": [
            {
                "rule": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint(),
            }
            for f in result.findings
        ],
        "parse_errors": [
            {"path": path, "error": err} for path, err in result.parse_errors
        ],
        "stale_baseline": [e.to_dict() for e in result.stale_baseline],
    }
    return json.dumps(doc, indent=2)


_FAMILY_HEADERS = {
    "expression": "expression rules (per-file, NL···)",
    "flow": "flow rules (interprocedural, DT···/RD···)",
}


def render_rule_catalog() -> str:
    """The ``--list-rules`` output: every rule with its paper grounding,
    grouped by analyzer tier."""
    lines: List[str] = []
    for family in RULE_FAMILIES:
        rules = rules_in_family(family)
        if not rules:
            continue
        if lines:
            lines.append("")
        lines.append(f"== {_FAMILY_HEADERS.get(family, family)} ==")
        for rule in rules:
            lines.append(f"{rule.rule_id}  {rule.title}")
            lines.append(f"    {rule.rationale}")
    return "\n".join(lines)

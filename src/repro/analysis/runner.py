"""Orchestration: walk paths, parse files, run both rule tiers, apply
suppressions and the baseline, and package everything into an
:class:`AnalysisResult`.

The analyzer is two-pass.  Pass one parses every file and runs the
per-file **expression** rules (NL···).  Pass two builds a single
:class:`~repro.analysis.callgraph.ProjectContext` — symbol table, call
graph, CFG/reaching-definitions caches — over the whole file set and
runs the interprocedural **flow** rules (DT···/RD···) against it.
Suppressions and the baseline apply uniformly to both tiers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import ProjectContext
from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    SuppressionError,
    Suppressions,
    all_rules,
)

__all__ = ["AnalysisResult", "analyze_paths", "analyze_source", "iter_python_files"]

#: directories never descended into
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".eggs"}


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    #: the interprocedural view built for the flow tier; ``None`` when the
    #: run selected expression rules only (callers use it for --call-graph-dot)
    project: Optional[ProjectContext] = None

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def iter_python_files(paths: Sequence["Path | str"]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(p.name for p in sub.parents):
                    yield sub


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    path = path.resolve()
    if root is not None:
        try:
            return path.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _select_rules(
    rule_ids: Optional[Sequence[str]],
    families: Optional[Sequence[str]],
) -> List[Rule]:
    return [
        rule
        for rule in all_rules()
        if (rule_ids is None or rule.rule_id in rule_ids)
        and (families is None or rule.family in families)
    ]


def _run_rules(
    files: List[FileContext],
    rules: List[Rule],
) -> Tuple[List[Finding], Optional[ProjectContext]]:
    """Both tiers over the parsed file set; findings are unsorted."""
    findings: List[Finding] = []
    expr_rules = [r for r in rules if r.family == "expression"]
    flow_rules = [r for r in rules if r.family == "flow"]
    for ctx in files:
        for rule in expr_rules:
            findings.extend(rule.check(ctx))
    project: Optional[ProjectContext] = None
    if flow_rules and files:
        project = ProjectContext(files)
        for rule in flow_rules:
            findings.extend(rule.check_project(project))
    return findings, project


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string; the unit-test entry point for single rules.

    Flow rules see the blob as a one-file project, so fixture corpora can
    pin DT/RD true positives without touching the filesystem.
    """
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    suppressions = Suppressions.parse(source)
    findings, _ = _run_rules([ctx], _select_rules(rules, families))
    kept = [f for f in findings if not suppressions.is_suppressed(f)]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept


def analyze_paths(
    paths: Sequence["Path | str"],
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    root: "Path | str | None" = None,
) -> AnalysisResult:
    """Lint every ``.py`` file under *paths*.

    *root* (default: the current directory) anchors the repo-relative
    paths used in reports and baseline fingerprints, so results are
    identical no matter where the analyzer is invoked from.  *families*
    restricts the run to one tier (``["expression"]`` / ``["flow"]``).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    result = AnalysisResult()
    files: List[FileContext] = []
    suppressions_by_path: Dict[str, Suppressions] = {}
    for file_path in iter_python_files(paths):
        rel = _relative_posix(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append((rel, f"unreadable: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            result.parse_errors.append((rel, f"syntax error: {exc.msg} "
                                             f"(line {exc.lineno})"))
            continue
        try:
            suppressions_by_path[rel] = Suppressions.parse(source)
        except SuppressionError as exc:
            result.parse_errors.append((rel, str(exc)))
            continue
        files.append(FileContext(rel, source, tree))
        result.files_checked += 1

    selected = _select_rules(rules, families)
    raw, result.project = _run_rules(files, selected)
    kept: List[Finding] = []
    for finding in raw:
        supp = suppressions_by_path.get(finding.path)
        if supp is not None and supp.is_suppressed(finding):
            result.suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))

    if baseline is not None:
        new, matched, stale = baseline.split(
            kept,
            active_rules=[r.rule_id for r in selected],
            active_paths=[ctx.path for ctx in files],
        )
        result.findings = new
        result.baselined = matched
        result.stale_baseline = stale
    else:
        result.findings = kept
    return result

"""Orchestration: walk paths, parse files, run rules, apply suppressions
and the baseline, and package everything into an :class:`AnalysisResult`."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.core import FileContext, Finding, Suppressions, all_rules

__all__ = ["AnalysisResult", "analyze_paths", "analyze_source", "iter_python_files"]

#: directories never descended into
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".eggs"}


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def iter_python_files(paths: Sequence["Path | str"]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(p.name for p in sub.parents):
                    yield sub


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    path = path.resolve()
    if root is not None:
        try:
            return path.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _check_source(
    source: str,
    rel_path: str,
    rule_ids: Optional[Sequence[str]],
) -> Tuple[List[Finding], int]:
    """Run the rule pack over one source blob; returns (kept, n_suppressed)."""
    tree = ast.parse(source, filename=rel_path)
    ctx = FileContext(rel_path, source, tree)
    suppressions = Suppressions.parse(source)
    kept: List[Finding] = []
    n_suppressed = 0
    for rule in all_rules():
        if rule_ids is not None and rule.rule_id not in rule_ids:
            continue
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding):
                n_suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept, n_suppressed


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a source string; the unit-test entry point for single rules."""
    findings, _ = _check_source(source, path, rules)
    return findings


def analyze_paths(
    paths: Sequence["Path | str"],
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[str]] = None,
    root: "Path | str | None" = None,
) -> AnalysisResult:
    """Lint every ``.py`` file under *paths*.

    *root* (default: the current directory) anchors the repo-relative
    paths used in reports and baseline fingerprints, so results are
    identical no matter where the analyzer is invoked from.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    result = AnalysisResult()
    raw_findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        rel = _relative_posix(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append((rel, f"unreadable: {exc}"))
            continue
        try:
            findings, n_suppressed = _check_source(source, rel, rules)
        except SyntaxError as exc:
            result.parse_errors.append((rel, f"syntax error: {exc.msg} "
                                             f"(line {exc.lineno})"))
            continue
        result.files_checked += 1
        result.suppressed += n_suppressed
        raw_findings.extend(findings)

    if baseline is not None:
        new, matched, stale = baseline.split(raw_findings)
        result.findings = new
        result.baselined = matched
        result.stale_baseline = stale
    else:
        result.findings = raw_findings
    return result

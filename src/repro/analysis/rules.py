"""The numlint rule pack: NL001–NL008.

Each rule encodes one entry of the paper's Fig. 3 numerical-pitfall
catalog (or a solver-correctness contract of the RCR stack) as an AST
check.  Rules are deliberately heuristic: they aim for a high-signal
default and rely on ``# numlint: disable=...`` suppressions plus the
baseline file for the residue of intentional violations.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule, register_rule

__all__ = ["SOLVER_DIRS"]

#: path segments whose ``while`` loops must carry an iteration guard (NL008)
SOLVER_DIRS = ("convex", "pso", "minlp")

_EPS_NAME_RE = re.compile(r"(eps|epsilon|tiny|tol|floor|clamp|safe)", re.IGNORECASE)
_BUDGET_NAME_RE = re.compile(
    r"(max_?(iter|iters|iterations|newton|nodes|steps|outer|rounds|evals|depth)"
    r"|budget|limit|deadline)",
    re.IGNORECASE,
)
_LOGGING_CALL_RE = re.compile(
    r"(log|warn|record|report|status|fail|debug|print)", re.IGNORECASE
)
_STATUS_NAME_RE = re.compile(
    r"(status|error|err|fail|converged|success|diagnost)", re.IGNORECASE
)

# numpy.random attributes that are part of the Generator-based API and
# therefore fine to reference; everything else is legacy global state.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# stdlib ``random`` module-level functions that mutate the hidden global
# Mersenne-Twister state.
_STDLIB_RANDOM_GLOBALS = {
    "seed", "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "binomialvariate",
}


def _func_name(node: ast.AST) -> str:
    """Terminal callable name: ``np.log`` -> ``log``, ``log`` -> ``log``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name for Name/Attribute chains (else '')."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_const_num(node: ast.AST, value: Optional[float] = None) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    if not (isinstance(node, ast.Constant) and isinstance(node.value, (int, float))):
        return False
    return value is None or float(node.value) == value


def _contains_eps_name(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _EPS_NAME_RE.search(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _EPS_NAME_RE.search(sub.attr):
            return True
    return False


def _same_expr(a: ast.AST, b: ast.AST) -> bool:
    try:
        return ast.unparse(a) == ast.unparse(b)
    except ValueError:  # pragma: no cover - unparse failure on exotic nodes
        return False


# --------------------------------------------------------------------------
# NL001 — float equality
# --------------------------------------------------------------------------


@register_rule
class FloatEqualityRule(Rule):
    rule_id = "NL001"
    title = "float equality comparison"
    rationale = (
        "Fig. 3 round-off: two mathematically equal float expressions differ "
        "after finite-precision evaluation, so `==`/`!=` against a nonzero "
        "float literal (or NaN) silently mis-branches. Compare against exact "
        "zero is IEEE-exact and allowed; use math.isclose / np.isclose (or "
        "math.isnan) otherwise."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if self._is_nan(side):
                        yield ctx.finding(
                            self.rule_id, node,
                            "comparison with NaN is always False — use "
                            "math.isnan / np.isnan",
                        )
                        break
                    if self._is_nonzero_float_literal(side):
                        yield ctx.finding(
                            self.rule_id, node,
                            "float `==`/`!=` against a nonzero literal — use "
                            "math.isclose / np.isclose (exact-zero guards are "
                            "exempt)",
                        )
                        break

    @staticmethod
    def _is_nonzero_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != 0.0
        )

    @staticmethod
    def _is_nan(node: ast.AST) -> bool:
        dotted = _dotted(node)
        return dotted in {"math.nan", "np.nan", "numpy.nan", "float('nan')"} or (
            isinstance(node, ast.Call)
            and _func_name(node) == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and str(node.args[0].value).lower() == "nan"
        )


# --------------------------------------------------------------------------
# NL002 — unguarded division
# --------------------------------------------------------------------------


@register_rule
class UnguardedDivisionRule(Rule):
    rule_id = "NL002"
    title = "unguarded division"
    rationale = (
        "Fig. 3 overflow/invalid: `x / d` where nothing in the enclosing "
        "scope bounds `d` away from zero yields inf/NaN that propagates "
        "silently. Guard (`if d == 0`), clamp (`max(d, eps)`), add an "
        "epsilon, or use repro.numerics.stable_ops.safe_divide."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            den: Optional[ast.AST] = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                den = node.right
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                den = node.value
            if den is None:
                continue
            if self._in_errstate(ctx, node):
                continue
            if self._cleared(ctx, node, den):
                continue
            yield ctx.finding(
                self.rule_id, node,
                f"division by `{ast.unparse(den)}` with no zero-guard, clamp "
                "or epsilon in scope — guard it or use stable_ops.safe_divide",
            )

    #: calls that can never return zero (for finite input)
    _POSITIVE_CALLS = {
        "max", "maximum", "clip", "exp", "exp2", "cosh", "hypot",
        "log1pexp", "len", "spacing",
    }
    #: calls that preserve "safely nonzero" when every argument is safe
    _TRANSPARENT_CALLS = {"sqrt", "abs", "fabs", "asarray", "float", "int"}
    _CONST_ATTRS = {"pi", "e", "tau", "euler_gamma", "inf"}

    def _safe_denominator(self, node: ast.AST) -> bool:
        if isinstance(node, ast.JoinedStr) or (
            isinstance(node, ast.Constant) and isinstance(node.value, str)
        ):
            return True  # pathlib's `/` operator, not arithmetic
        if _is_const_num(node):
            return not _is_const_num(node, 0.0)
        if isinstance(node, ast.UnaryOp):
            return self._safe_denominator(node.operand)
        if isinstance(node, ast.Attribute) and node.attr in (
            self._CONST_ATTRS | {"size"}
        ):
            # math constants, plus the `x.size` mean-over-elements idiom
            return True
        if _contains_eps_name(node):
            return True
        if isinstance(node, ast.Call):
            name = _func_name(node)
            if name in self._POSITIVE_CALLS:
                return True
            if name in self._TRANSPARENT_CALLS:
                return all(self._safe_denominator(a) for a in node.args)
            return False
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Add):
                return self._safe_denominator(node.left) or self._safe_denominator(
                    node.right
                )
            if isinstance(node.op, ast.Mult):
                return self._safe_denominator(node.left) and self._safe_denominator(
                    node.right
                )
            if isinstance(node.op, ast.Pow):
                # c ** x > 0 for any finite x when c is a positive constant
                if _is_const_num(node.left) and not _is_const_num(node.left, 0.0):
                    return True
                return self._safe_denominator(node.left) and self._safe_denominator(
                    node.right
                )
        return False

    @staticmethod
    def _in_errstate(ctx: FileContext, node: ast.AST) -> bool:
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.With):
                for item in anc.items:
                    if _func_name(item.context_expr) == "errstate":
                        return True
        return False

    def _cleared(self, ctx: FileContext, node: ast.AST, den: ast.AST) -> bool:
        """A denominator is cleared when it is structurally safe, or when a
        guard in scope bounds it (decomposing `a + b` as either-term-safe
        and `a * b` as both-factors-safe, mirroring sign heuristics)."""
        if self._safe_denominator(den):
            return True
        if isinstance(den, ast.BinOp) and isinstance(den.op, ast.Add):
            return self._cleared(ctx, node, den.left) or self._cleared(
                ctx, node, den.right
            )
        if isinstance(den, ast.BinOp) and isinstance(den.op, ast.Mult):
            return self._cleared(ctx, node, den.left) and self._cleared(
                ctx, node, den.right
            )
        return self._guarded_in_scope(ctx, node, den)

    @staticmethod
    def _guard_candidates(den: ast.AST) -> List[str]:
        """Expressions whose guarding makes the denominator safe: the
        denominator itself, call arguments (`abs(e)` is guarded when `e`
        is), and subscript bases (`col[pos]` when `col` is)."""
        seen: Set[str] = set()
        stack: List[ast.AST] = [den]
        while stack:
            cur = stack.pop()
            try:
                seen.add(ast.unparse(cur))
            except ValueError:  # pragma: no cover - exotic node
                continue
            if isinstance(cur, ast.Call):
                stack.extend(cur.args)
            elif isinstance(cur, ast.Subscript):
                stack.append(cur.value)
        # sorted: `seen` is a set, and candidates feed orderable output
        return sorted(s for s in seen if s and not s.replace(".", "").isdigit())

    def _guarded_in_scope(
        self, ctx: FileContext, node: ast.AST, den: ast.AST
    ) -> bool:
        """Is the denominator (or a subexpression that determines it)
        tested, clamped or asserted in scope?

        Scope is the enclosing function — widened to the whole module when
        the denominator reads ``self.*`` state, since class invariants are
        typically established in ``__init__``/``__post_init__``.
        """
        candidates = self._guard_candidates(den)
        if not candidates:
            return False
        patterns = [
            re.compile(r"(?<![\w.])" + re.escape(c) + r"(?![\w(])")
            for c in candidates
        ]
        den_src = ast.unparse(den)
        # `obj.attr` denominators: class invariants live in __init__ /
        # __post_init__, so widen to the module and also accept a guard on
        # the same attribute of any receiver (`self.hop` guards `frame.hop`).
        if isinstance(den, ast.Attribute):
            patterns.append(
                re.compile(r"\w\." + re.escape(den.attr) + r"(?![\w(])")
            )
        scope = (
            ctx.tree if "." in den_src else ctx.enclosing_function(node)
        )

        def mentions(expr: ast.AST) -> bool:
            src = ast.unparse(expr)
            return any(p.search(src) for p in patterns)

        for sub in ast.walk(scope):
            # `if d == 0`, `while d > tol`, `np.abs(d) > 1e-300`, ...
            if isinstance(sub, ast.Compare):
                if any(mentions(s) for s in [sub.left] + list(sub.comparators)):
                    return True
            # truthiness guards: `if d:`, `if not d:`, `x / d if d else y`
            if isinstance(sub, (ast.If, ast.IfExp, ast.While)):
                test = sub.test
                if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
                    test = test.operand
                if ast.unparse(test) in candidates:
                    return True
            if isinstance(sub, ast.Assert) and mentions(sub.test):
                return True
            # binding to a clamp or a safe expression:
            # `d = max(d, eps)`, `d = x.size`, `d = d + eps`
            if isinstance(sub, ast.Assign) and any(
                ast.unparse(t) == den_src for t in sub.targets
            ):
                if isinstance(sub.value, ast.Call) and _func_name(sub.value) in {
                    "max", "maximum", "clip",
                }:
                    return True
                if _contains_eps_name(sub.value) or self._safe_denominator(
                    sub.value
                ):
                    return True
        # module-level constants: a plain name bound once at top level to a
        # structurally safe value (`_LN2 = 0.693...`) is safe everywhere
        if isinstance(den, ast.Name):
            bindings = [
                stmt.value
                for stmt in ctx.tree.body
                if isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == den.id
                    for t in stmt.targets
                )
            ]
            if bindings and all(self._safe_denominator(v) for v in bindings):
                return True
        return False


# --------------------------------------------------------------------------
# NL003 — unstable transcendental composition
# --------------------------------------------------------------------------


@register_rule
class UnstableTranscendentalRule(Rule):
    rule_id = "NL003"
    title = "unstable log/exp composition"
    rationale = (
        "The paper's concluding remarks: sub-operations must be fused — "
        "`log(softmax(x))` hits log(0) as softmax underflows. Separate "
        "`log(1+x)`, `exp(x)-1`, `log(sum(exp(x)))` and `1/(1+exp(-x))` "
        "lose all precision in the regimes Fig. 3 catalogues; use "
        "np.log1p/np.expm1 or repro.numerics.stable_ops "
        "(logsumexp/log_softmax/log2p1/stable_sigmoid)."
    )

    _LOGS = {"log", "log2", "log10"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.BinOp):
                yield from self._check_binop(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        name = _func_name(node)
        if name not in self._LOGS or len(node.args) < 1:
            return
        arg = node.args[0]
        # log(1 + x) / log2(1 + x) — also catches log(1 + exp(x))
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
            if _is_const_num(arg.left, 1.0) or _is_const_num(arg.right, 1.0):
                repl = "np.log1p(x)" if name == "log" else (
                    "stable_ops.log2p1(x)" if name == "log2"
                    else "np.log1p(x) / np.log(10)"
                )
                yield ctx.finding(
                    self.rule_id, node,
                    f"`{name}(1 + x)` loses all precision for small x — use {repl}",
                )
                return
        # log(sum(exp(x))) -> logsumexp
        if name == "log" and _func_name(arg) == "sum":
            inner = arg.args[0] if isinstance(arg, ast.Call) and arg.args else None
            if inner is not None and _func_name(inner) == "exp":
                yield ctx.finding(
                    self.rule_id, node,
                    "`log(sum(exp(x)))` overflows for moderate x — use "
                    "repro.numerics.stable_ops.logsumexp",
                )
                return
        # log(softmax(x)) -> log_softmax
        if name == "log" and "softmax" in _func_name(arg):
            yield ctx.finding(
                self.rule_id, node,
                "`log(softmax(x))` hits log(0) when softmax underflows — use "
                "repro.numerics.stable_ops.log_softmax",
            )

    def _check_binop(self, ctx: FileContext, node: ast.BinOp) -> Iterator[Finding]:
        # exp(x) - 1 -> expm1
        if (
            isinstance(node.op, ast.Sub)
            and _func_name(node.left) == "exp"
            and _is_const_num(node.right, 1.0)
        ):
            yield ctx.finding(
                self.rule_id, node,
                "`exp(x) - 1` cancels catastrophically near x=0 — use np.expm1",
            )
            return
        # 1 / (1 + exp(-x)) -> stable_sigmoid
        if isinstance(node.op, ast.Div) and _is_const_num(node.left, 1.0):
            den = node.right
            if (
                isinstance(den, ast.BinOp)
                and isinstance(den.op, ast.Add)
                and (
                    (_is_const_num(den.left, 1.0) and _func_name(den.right) == "exp")
                    or (_is_const_num(den.right, 1.0) and _func_name(den.left) == "exp")
                )
            ):
                yield ctx.finding(
                    self.rule_id, node,
                    "textbook sigmoid `1/(1+exp(-x))` overflows in exp — use "
                    "repro.numerics.stable_ops.stable_sigmoid",
                )


# --------------------------------------------------------------------------
# NL004 — global-state RNG
# --------------------------------------------------------------------------


@register_rule
class GlobalRngRule(Rule):
    rule_id = "NL004"
    title = "global-state RNG"
    rationale = (
        "Reproducibility contract: the RCR benchmarks are only comparable "
        "run-to-run if every random stream is an injected, seeded "
        "np.random.Generator. Legacy `np.random.*` and stdlib `random.*` "
        "module calls mutate hidden global state that any import can "
        "perturb. Thread `rng: np.random.Generator` through instead "
        "(default `np.random.default_rng(0)`)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        stdlib_random_imported = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_imported = True
            elif isinstance(node, ast.ImportFrom):
                if node.module in {"numpy.random", "numpy"}:
                    for alias in node.names:
                        bad = (
                            node.module == "numpy.random"
                            and alias.name not in _NP_RANDOM_OK
                        )
                        if bad:
                            yield ctx.finding(
                                self.rule_id, node,
                                f"import of legacy `numpy.random.{alias.name}` — "
                                "use an injected np.random.Generator",
                            )
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name in _STDLIB_RANDOM_GLOBALS:
                            yield ctx.finding(
                                self.rule_id, node,
                                f"import of stdlib `random.{alias.name}` (global "
                                "Mersenne state) — use np.random.Generator",
                            )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] in {"np", "numpy"}
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_OK
            ):
                yield ctx.finding(
                    self.rule_id, node,
                    f"legacy global-state RNG `{dotted}` — thread a seeded "
                    "np.random.Generator (np.random.default_rng) instead",
                )
            elif (
                stdlib_random_imported
                and len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM_GLOBALS
            ):
                yield ctx.finding(
                    self.rule_id, node,
                    f"stdlib global-state RNG `{dotted}` — use an injected "
                    "np.random.Generator",
                )


# --------------------------------------------------------------------------
# NL005 — naive loop accumulation
# --------------------------------------------------------------------------


@register_rule
class LoopAccumulationRule(Rule):
    rule_id = "NL005"
    title = "naive loop accumulation"
    rationale = (
        "Fig. 3 round-off: left-to-right `acc += term` accumulates O(n) ulp "
        "error (the paper's STABLE benchmark measures exactly this). Use "
        "np.sum / math.fsum, or repro.numerics.float_utils.kahan_sum / "
        "pairwise_sum when compensation is required."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Name)
                ):
                    continue
                # integer step counters (`i += 1`) are not float accumulation
                if _is_const_num(node.value) and isinstance(
                    getattr(node.value, "value", None), int
                ):
                    continue
                if self._initialized_to_float_zero(ctx, loop, node.target.id):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"`{node.target.id} += ...` in a loop over a 0.0-"
                        "initialized scalar accumulates O(n) round-off — use "
                        "np.sum/math.fsum or float_utils.kahan_sum",
                    )

    @staticmethod
    def _initialized_to_float_zero(
        ctx: FileContext, loop: ast.AST, name: str
    ) -> bool:
        scope = ctx.enclosing_function(loop)
        body = getattr(scope, "body", [])
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == name
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, float)
                        and stmt.value.value == 0.0
                    ):
                        return True
        return False


# --------------------------------------------------------------------------
# NL006 — catastrophic cancellation in variance / norm formulas
# --------------------------------------------------------------------------


@register_rule
class CancellationFormulaRule(Rule):
    rule_id = "NL006"
    title = "cancellation-prone variance/norm formula"
    rationale = (
        "Fig. 3 round-off: the textbook `E[x^2] - E[x]^2` variance and the "
        "unscaled `sqrt(sum(x^2))` norm cancel or overflow exactly where "
        "certified bounds need them most. Use a two-pass/Welford variance "
        "and repro.numerics.stable_ops.stable_norm (or np.hypot)."
    )

    _MEANS = {"mean", "average"}
    _SUMS = {"sum", "nansum", "fsum"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                if self._is_square_of_stat(node.right) and self._is_stat_of_square(
                    node.left
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        "naive variance `mean(x**2) - mean(x)**2` cancels "
                        "catastrophically — use a two-pass or Welford form",
                    )
            elif isinstance(node, ast.Call) and _func_name(node) == "sqrt":
                if node.args and self._contains_sum_of_squares(node.args[0]):
                    yield ctx.finding(
                        self.rule_id, node,
                        "unscaled `sqrt(sum(x**2))` overflows for |x| > "
                        "sqrt(float_max) — use stable_ops.stable_norm / "
                        "np.linalg.norm",
                    )

    def _is_stat_of_square(self, node: ast.AST) -> bool:
        """mean(x**2), sum(x*x)/n, ..."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            node = node.left
        if not isinstance(node, ast.Call):
            return False
        if _func_name(node) not in (self._MEANS | self._SUMS):
            return False
        return bool(node.args) and self._is_square(node.args[0])

    def _is_square_of_stat(self, node: ast.AST) -> bool:
        """mean(x)**2, (sum(x)/n)**2"""
        if not (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Pow)
            and _is_const_num(node.right, 2.0)
        ):
            return False
        base = node.left
        if isinstance(base, ast.BinOp) and isinstance(base.op, ast.Div):
            base = base.left
        return _func_name(base) in (self._MEANS | self._SUMS)

    def _contains_sum_of_squares(self, node: ast.AST) -> bool:
        """sum(x**2) or sum(x*x), possibly divided by something (RMS)."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            node = node.left
        if not (isinstance(node, ast.Call) and _func_name(node) in self._SUMS):
            return False
        return bool(node.args) and self._is_square(node.args[0])

    @staticmethod
    def _is_square(node: ast.AST) -> bool:
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Pow)
            and _is_const_num(node.right, 2.0)
        ):
            return True
        return (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mult)
            and _same_expr(node.left, node.right)
        )


# --------------------------------------------------------------------------
# NL007 — swallowed solver failure
# --------------------------------------------------------------------------


@register_rule
class SwallowedExceptionRule(Rule):
    rule_id = "NL007"
    title = "swallowed exception"
    rationale = (
        "Solver-correctness contract: a bare `except:` (or blanket `except "
        "Exception`) that neither re-raises nor records a failure status "
        "turns solver divergence into a silently wrong 'certified' answer. "
        "Catch the specific repro.exceptions type, re-raise, or set an "
        "explicit failure status."
    )

    _BLANKET = {"Exception", "BaseException"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                blanket = "bare `except:`"
            elif self._is_blanket(node.type):
                blanket = f"`except {ast.unparse(node.type)}`"
            else:
                continue
            if self._handler_accounts_for_failure(node):
                continue
            yield ctx.finding(
                self.rule_id, node,
                f"{blanket} swallows solver failures without re-raise or "
                "status — catch the specific exception or record the failure",
            )

    def _is_blanket(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_blanket(el) for el in type_node.elts)
        return _func_name(type_node) in self._BLANKET

    @staticmethod
    def _handler_accounts_for_failure(handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call) and _LOGGING_CALL_RE.search(
                _func_name(sub)
            ):
                return True
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for t in targets:
                    terminal = (
                        t.attr if isinstance(t, ast.Attribute)
                        else t.id if isinstance(t, ast.Name) else ""
                    )
                    if _STATUS_NAME_RE.search(terminal):
                        return True
        return False


# --------------------------------------------------------------------------
# NL008 — unbounded solver while-loop
# --------------------------------------------------------------------------


@register_rule
class UnboundedSolverLoopRule(Rule):
    rule_id = "NL008"
    title = "unbounded solver while-loop"
    rationale = (
        "Solver-correctness contract (convex/, pso/, minlp/): every `while` "
        "in an iterative solver needs an escape hatch — a break/return/raise "
        "on an iteration or time budget — because float round-off can keep a "
        "mathematically convergent test from ever becoming False (Fig. 3 "
        "round-off meets termination)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        segments = set(ctx.path_segments())
        if not segments & set(SOLVER_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if self._has_escape(node) or self._mentions_budget(node):
                continue
            yield ctx.finding(
                self.rule_id, node,
                "solver `while` loop with no break/return/raise and no "
                "iteration budget — add a max-iteration or time guard",
            )

    @staticmethod
    def _has_escape(loop: ast.While) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, (ast.Break, ast.Return, ast.Raise)):
                return True
        return False

    @staticmethod
    def _mentions_budget(loop: ast.While) -> bool:
        return bool(_BUDGET_NAME_RE.search(ast.unparse(loop)))

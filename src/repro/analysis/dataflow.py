"""Lightweight per-function control-flow graph and reaching definitions.

The flow rules need two classic dataflow facts the plain AST cannot
answer:

* *which definitions of a name reach a use* (DT002's wall-clock taint,
  DT003's escape analysis, DT004's set-typed iterables), and
* *what statements lie inside a loop body, on any path* (RD001's
  budget-cooperation check).

This is a deliberately small implementation: one :class:`Block` per
maximal straight-line statement run, edges for ``if``/``while``/``for``/
``try`` and ``break``/``continue``/``return``/``raise``, and a textbook
gen/kill worklist for reaching definitions at block granularity with an
intra-block walk for statement-level precision.  It trades precision for
robustness — ``match`` statements and exotic constructs degrade to
sequential edges rather than failing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

__all__ = [
    "Block",
    "ControlFlowGraph",
    "ReachingDefinitions",
    "assigned_names",
    "free_names",
]

#: a definition: (variable name, defining AST node)
Definition = Tuple[str, ast.AST]


def assigned_names(stmt: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Names a statement (re)binds, with the binding node.

    Covers Assign/AnnAssign/AugAssign targets (including tuple/list
    unpacking and starred elements), ``for`` targets, ``with ... as``,
    walrus expressions, imports, and ``except ... as``.
    """
    out: List[Tuple[str, ast.AST]] = []

    def targets_of(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                yield from targets_of(elt)
        elif isinstance(node, ast.Starred):
            yield from targets_of(node.value)
        # attribute/subscript targets rebind object state, not names

    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            out.extend((n, stmt) for n in targets_of(t))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        out.extend((n, stmt) for n in targets_of(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        out.extend((n, stmt) for n in targets_of(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                out.extend((n, stmt) for n in targets_of(item.optional_vars))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            out.append(((alias.asname or alias.name.split(".")[0]), stmt))
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        out.append((stmt.name, stmt))
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        out.append((stmt.name, stmt))
    # walrus anywhere in the statement's expressions
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
            out.append((sub.target.id, sub))
    return out


def free_names(fn: ast.AST) -> Set[str]:
    """Names a function/lambda reads but neither binds nor receives.

    The closure-capture set used by DT003's escape analysis: loads minus
    parameters minus local bindings minus builtins-looking globals is
    approximated as loads minus params minus locals (module globals are
    filtered by the caller, which knows the enclosing scope).
    """
    params: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            params.update(a.arg for a in group)
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
    bound: Set[str] = set(params)
    loads: Set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
                else:
                    bound.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(sub.name)
    return loads - bound


@dataclass
class Block:
    """One straight-line run of statements."""

    block_id: int
    statements: List[ast.AST] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def add_successor(self, block_id: int) -> None:
        if block_id not in self.successors:
            self.successors.append(block_id)


class ControlFlowGraph:
    """CFG for one function body (or any statement list)."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry: int = 0
        self.exit: int = 0
        #: statement node -> containing block id
        self.block_of: Dict[ast.AST, int] = {}

    # ---- construction --------------------------------------------------------
    @classmethod
    def from_function(cls, fn: ast.AST) -> "ControlFlowGraph":
        body = fn.body if isinstance(fn.body, list) else [ast.Return(fn.body)]
        return cls.from_statements(body)

    @classmethod
    def from_statements(cls, body: List[ast.stmt]) -> "ControlFlowGraph":
        cfg = cls()
        cfg.entry = cfg._new_block().block_id
        cfg.exit = cfg._new_block().block_id
        end = cfg._build(body, cfg.entry, loop_stack=[])
        if end is not None:
            cfg.blocks[end].add_successor(cfg.exit)
        return cfg

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    def _build(
        self,
        body: List[ast.stmt],
        current: int,
        loop_stack: List[Tuple[int, int]],
    ) -> Optional[int]:
        """Append *body* starting at block *current*.

        Returns the open fall-through block id, or ``None`` when every
        path terminated (return/raise/break/continue).  *loop_stack*
        holds (loop-header, loop-exit) pairs for break/continue wiring.
        """
        for stmt in body:
            if current is None:
                # unreachable code after a terminator; keep mapping
                # statements so queries never KeyError
                current = self._new_block().block_id
            if isinstance(stmt, ast.If):
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
                then_b = self._new_block().block_id
                self.blocks[current].add_successor(then_b)
                then_end = self._build(stmt.body, then_b, loop_stack)
                if stmt.orelse:
                    else_b = self._new_block().block_id
                    self.blocks[current].add_successor(else_b)
                    else_end = self._build(stmt.orelse, else_b, loop_stack)
                else:
                    else_end = current
                join = self._new_block().block_id
                for end in (then_end, else_end):
                    if end is not None:
                        self.blocks[end].add_successor(join)
                current = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = self._new_block().block_id
                self.blocks[current].add_successor(header)
                self.blocks[header].statements.append(stmt)
                self.block_of[stmt] = header
                exit_b = self._new_block().block_id
                self.blocks[header].add_successor(exit_b)  # cond false / done
                body_b = self._new_block().block_id
                self.blocks[header].add_successor(body_b)
                loop_stack.append((header, exit_b))
                body_end = self._build(stmt.body, body_b, loop_stack)
                loop_stack.pop()
                if body_end is not None:
                    self.blocks[body_end].add_successor(header)  # back edge
                if stmt.orelse:
                    current = self._build(stmt.orelse, exit_b, loop_stack)
                    if current is None:
                        return None
                else:
                    current = exit_b
            elif isinstance(stmt, ast.Try):
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
                try_b = self._new_block().block_id
                self.blocks[current].add_successor(try_b)
                try_end = self._build(stmt.body, try_b, loop_stack)
                join = self._new_block().block_id
                ends: List[Optional[int]] = [try_end]
                for handler in stmt.handlers:
                    h_b = self._new_block().block_id
                    # any statement in the try may raise into the handler
                    self.blocks[try_b].add_successor(h_b)
                    if try_end is not None:
                        self.blocks[try_end].add_successor(h_b)
                    for name, node in assigned_names(handler):
                        self.blocks[h_b].statements.append(handler)
                        self.block_of.setdefault(handler, h_b)
                        break
                    ends.append(self._build(handler.body, h_b, loop_stack))
                for end in [e for e in ends if e is not None]:
                    self.blocks[end].add_successor(join)
                if stmt.orelse and try_end is not None:
                    or_end = self._build(stmt.orelse, try_end, loop_stack)
                    if or_end is not None:
                        self.blocks[or_end].add_successor(join)
                if stmt.finalbody:
                    fin_end = self._build(stmt.finalbody, join, loop_stack)
                    if fin_end is None:
                        return None
                    join = fin_end
                current = join
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
                inner = self._new_block().block_id
                self.blocks[current].add_successor(inner)
                current = self._build(stmt.body, inner, loop_stack)
                if current is None:
                    return None
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
                self.blocks[current].add_successor(self.exit)
                return None
            elif isinstance(stmt, ast.Break):
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
                if loop_stack:
                    self.blocks[current].add_successor(loop_stack[-1][1])
                return None
            elif isinstance(stmt, ast.Continue):
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
                if loop_stack:
                    self.blocks[current].add_successor(loop_stack[-1][0])
                return None
            else:
                self.blocks[current].statements.append(stmt)
                self.block_of[stmt] = current
        return current

    # ---- queries -------------------------------------------------------------
    def statements_in_loop(self, loop: ast.AST) -> List[ast.AST]:
        """Every statement on any path through *loop*'s body (nested
        control flow included) — the domain of RD001's check."""
        out: List[ast.AST] = []
        for stmt in getattr(loop, "body", []) + getattr(loop, "orelse", []):
            out.append(stmt)
            out.extend(
                s for s in ast.walk(stmt) if isinstance(s, ast.stmt)
            )
        return out

    def predecessors(self) -> Dict[int, Set[int]]:
        preds: Dict[int, Set[int]] = {b: set() for b in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].add(block.block_id)
        return preds


class ReachingDefinitions:
    """Textbook gen/kill reaching-definitions over a :class:`ControlFlowGraph`.

    Definitions are ``(name, node)`` pairs.  Function parameters are
    modelled as entry definitions with the function node itself as the
    defining node.
    """

    def __init__(self, cfg: ControlFlowGraph, fn: Optional[ast.AST] = None):
        self.cfg = cfg
        self._in: Dict[int, FrozenSet[Definition]] = {}
        self._out: Dict[int, FrozenSet[Definition]] = {}
        entry_defs: Set[Definition] = set()
        if fn is not None:
            args = getattr(fn, "args", None)
            if args is not None:
                for group in (args.posonlyargs, args.args, args.kwonlyargs):
                    entry_defs.update((a.arg, fn) for a in group)
                if args.vararg:
                    entry_defs.add((args.vararg.arg, fn))
                if args.kwarg:
                    entry_defs.add((args.kwarg.arg, fn))
        self._solve(frozenset(entry_defs))

    def _block_gen_kill(
        self, block: Block
    ) -> Tuple[Set[Definition], Set[str]]:
        gen: Dict[str, Definition] = {}
        killed: Set[str] = set()
        for stmt in block.statements:
            for name, node in assigned_names(stmt):
                gen[name] = (name, node)
                killed.add(name)
        return set(gen.values()), killed

    def _solve(self, entry_defs: FrozenSet[Definition]) -> None:
        gen_kill = {
            b: self._block_gen_kill(block)
            for b, block in self.cfg.blocks.items()
        }
        preds = self.cfg.predecessors()
        for b in self.cfg.blocks:
            self._in[b] = frozenset()
            self._out[b] = frozenset()
        self._in[self.cfg.entry] = entry_defs
        gen, killed = gen_kill[self.cfg.entry]
        self._out[self.cfg.entry] = frozenset(
            gen | {d for d in entry_defs if d[0] not in killed}
        )
        work = list(self.cfg.blocks)
        while work:
            b = work.pop(0)
            in_set: Set[Definition] = set(
                entry_defs if b == self.cfg.entry else ()
            )
            for p in preds[b]:
                in_set |= self._out[p]
            gen, killed = gen_kill[b]
            out_set = frozenset(
                gen | {d for d in in_set if d[0] not in killed}
            )
            changed = (
                frozenset(in_set) != self._in[b] or out_set != self._out[b]
            )
            self._in[b] = frozenset(in_set)
            self._out[b] = out_set
            if changed:
                work.extend(self.cfg.blocks[b].successors)
        # termination: def sets only grow and the lattice is finite

    def defs_reaching(self, stmt: ast.AST, name: str) -> List[ast.AST]:
        """Definitions of *name* live just before *stmt* executes."""
        block_id = self.cfg.block_of.get(stmt)
        if block_id is None:
            # statement nested inside a compound header: find the block
            # of the nearest mapped ancestor via linear scan
            for mapped, bid in self.cfg.block_of.items():
                if stmt in ast.walk(mapped):
                    block_id = bid
                    break
        if block_id is None:
            return []
        live: Dict[str, Set[ast.AST]] = {}
        for n, node in self._in[block_id]:
            live.setdefault(n, set()).add(node)
        for s in self.cfg.blocks[block_id].statements:
            if s is stmt or stmt in ast.walk(s):
                break
            for n, node in assigned_names(s):
                live[n] = {node}
        return sorted(
            live.get(name, ()), key=lambda n: getattr(n, "lineno", 0)
        )

    def all_defs_of(self, name: str) -> List[ast.AST]:
        """Every definition of *name* anywhere in the function."""
        out: List[ast.AST] = []
        for block in self.cfg.blocks.values():
            for stmt in block.statements:
                for n, node in assigned_names(stmt):
                    if n == name and node not in out:
                        out.append(node)
        return out

"""repro.analysis — two-tier static analyzer ("numlint");
rule catalog and workflow documented in docs/STATIC_ANALYSIS.md.

Tier one (**expression rules**, NL001–NL008) encodes the paper's Fig. 3
catalog of silent numerical failures — float round-off, unguarded
division, unstable composed sub-operations — as per-file AST checks.
Tier two (**flow rules**, DT001–DT004 / RD001–RD003) checks the
interprocedural contracts the reproduction's reliability rests on:
determinism under the seeded :mod:`repro.parallel` executor (no global
RNG reachable from solver entries, no wall-clock-driven control flow,
no shared-mutable-state closures, no hash-order outputs) and resource
discipline (:class:`repro.resilience.Budget` cooperation, entered
tracer spans, recorded fallback rungs), over a project-wide symbol
table, call graph, and per-function reaching-definitions dataflow.

Usage::

    python -m repro.analysis src                    # both tiers
    python -m repro.analysis src --rule-family flow # one tier
    python -m repro.analysis --list-rules           # catalog, by tier

Programmatic::

    from repro.analysis import analyze_paths, analyze_source
    findings = analyze_source("x == 0.1", path="snippet.py")
"""

from repro.analysis.core import (
    Finding,
    FileContext,
    FlowRule,
    Rule,
    SuppressionError,
    all_rules,
    get_rule,
    register_rule,
    rules_in_family,
)
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import CallGraph, ProjectContext, SymbolTable
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import AnalysisResult, analyze_paths, analyze_source

# Importing the rule packs registers the expression tier (NL001–NL008)
# and the interprocedural flow tier (DT001–DT004, RD001–RD003).
from repro.analysis import rules as _rules  # noqa: F401
from repro.analysis import rules_flow as _rules_flow  # noqa: F401

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "FileContext",
    "Finding",
    "FlowRule",
    "ProjectContext",
    "Rule",
    "SuppressionError",
    "SymbolTable",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register_rule",
    "render_json",
    "render_text",
    "rules_in_family",
]

"""repro.analysis — AST-based numerical-safety linter ("numlint");
rule catalog and workflow documented in docs/STATIC_ANALYSIS.md.

The paper's Fig. 3 catalogues silent numerical failures in ML toolkits:
FFT/STFT convention bugs, float round-off, overflow/underflow, unstable
composed sub-operations.  This package encodes that catalog — plus the
solver-correctness contracts of :mod:`repro.convex`, :mod:`repro.pso`
and :mod:`repro.minlp` — as machine-checked static-analysis rules over
the repository's own source, so numerical hygiene is enforced in CI
rather than re-audited by hand.

Usage::

    python -m repro.analysis src            # lint, exit 1 on findings
    python -m repro.analysis --list-rules   # rule catalog

Programmatic::

    from repro.analysis import analyze_paths, analyze_source
    findings = analyze_source("x == 0.1", path="snippet.py")
"""

from repro.analysis.core import (
    Finding,
    FileContext,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import AnalysisResult, analyze_paths, analyze_source

# Importing the rule pack registers the NL001–NL008 rules.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "register_rule",
    "render_json",
    "render_text",
]

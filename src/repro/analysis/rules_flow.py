"""The flow-rule pack: DT001–DT004 (determinism) and RD001–RD003
(resource discipline).

Where the NL rules check one expression at a time, these rules check the
*contracts between functions* that the reproduction's reliability rests
on: solves must be deterministic under the seeded ``repro.parallel``
executor (golden reports diff bit-for-bit), loops must cooperate with
``resilience.Budget`` so the fallback ladders can degrade instead of
hang, and timing must flow through injectable clocks so deadlines are
testable.  They run over a :class:`~repro.analysis.callgraph.ProjectContext`
— symbol table, conservative call graph, per-function CFGs with reaching
definitions — built once per analyzer run.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, ProjectContext
from repro.analysis.core import FileContext, Finding, FlowRule, register_rule
from repro.analysis.dataflow import assigned_names, free_names
# the RNG vocabularies are shared with the per-expression NL004 rule
from repro.analysis.rules import (  # noqa: F401
    _NP_RANDOM_OK,
    _STDLIB_RANDOM_GLOBALS,
    _dotted,
    _func_name,
)

__all__ = ["ENTRY_SEGMENTS", "WALL_CLOCK_CALLS"]

#: modules whose public functions count as solver/PSO/executor entry
#: points for DT001 reachability (path segments of the dotted module)
ENTRY_SEGMENTS = {"convex", "pso", "minlp", "parallel", "qos", "verify", "core"}

#: dotted callables that read the ambient wall clock
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
}

#: ``datetime``-style "now" constructors (matched on the terminal attr
#: so both ``datetime.now`` and ``datetime.datetime.now`` hit)
_DATETIME_NOW_ATTRS = {"now", "utcnow", "today"}

_LADDERISH_RE = re.compile(
    r"(rung|ladder|fallback|candidate|backend|solver|strateg)", re.IGNORECASE
)
_RECORDING_CALL_RE = re.compile(
    r"(append|add|record|log|warn|event|inc|observe|note|push|report|mark|"
    r"fail|counter|emit|debug|info|error|exception)",
    re.IGNORECASE,
)
_FAILURE_NAME_RE = re.compile(
    r"(fail|error|err|status|reason|skipped|degraded)", re.IGNORECASE
)

#: receivers that look like executors for DT003 submission sites
_EXECUTORISH_RE = re.compile(r"(executor|pool|exec\b)", re.IGNORECASE)

#: mutating method names on captured containers
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "sort", "reverse",
}

#: calls whose consumption of an iterable is order-insensitive, so a
#: set-typed argument is fine (DT004)
_ORDER_INSENSITIVE_CALLS = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
    "fsum", "mean", "Counter", "dict",
}


def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested def subtrees (those are
    separate :class:`FunctionInfo` nodes analyzed on their own)."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _enclosing_stmt(ctx: FileContext, node: ast.AST) -> ast.AST:
    cur: Optional[ast.AST] = node
    while cur is not None and not isinstance(cur, ast.stmt):
        cur = ctx.parent(cur)
    return cur if cur is not None else node


def _module_level_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for stmt in getattr(tree, "body", []):
        for name, _ in assigned_names(stmt):
            names.add(name)
    return names


# --------------------------------------------------------------------------
# DT001 — unseeded global RNG reachable from solver entry points
# --------------------------------------------------------------------------


@register_rule
class ReachableGlobalRngRule(FlowRule):
    rule_id = "DT001"
    title = "global RNG reachable from solver entry point"
    rationale = (
        "Determinism contract of repro.parallel: every random stream on a "
        "solve path must derive from the executor's task-index seeding "
        "(derive_seed), or golden reports stop diffing bit-for-bit. This "
        "rule walks the call graph from every public solver/PSO/executor "
        "entry point and flags hidden global-state RNG (legacy np.random.*, "
        "stdlib random.*) anywhere on a reachable path — including helpers "
        "in other modules that the per-file NL004 scan sees without the "
        "entry-point provenance."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        entries = [
            info.qualname
            for info in project.symtab.functions.values()
            if info.is_public
            and ENTRY_SEGMENTS & set(info.module.split("."))
        ]
        witness = project.callgraph.reachable_from(entries)
        for info in project.symtab.functions.values():
            if info.qualname not in witness:
                continue
            root = witness[info.qualname]
            for node, label in self._rng_sites(info):
                yield info.ctx.finding(
                    self.rule_id, node,
                    f"global-state RNG `{label}` reachable from solver entry "
                    f"`{root}` — thread a seeded np.random.Generator derived "
                    "via repro.parallel.derive_seed",
                )

    def _rng_sites(
        self, info: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        stdlib_random = (
            info.ctx.path.endswith(".py")
            and "random" in self._stdlib_random_aliases(info)
        )
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] in {"np", "numpy"}
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_OK
            ):
                yield node, dotted
            elif (
                stdlib_random
                and len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM_GLOBALS
            ):
                yield node, dotted

    @staticmethod
    def _stdlib_random_aliases(info: FunctionInfo) -> Set[str]:
        aliases: Set[str] = set()
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
        return aliases


# --------------------------------------------------------------------------
# DT002 — wall-clock reads feeding control flow
# --------------------------------------------------------------------------


@register_rule
class WallClockDecisionRule(FlowRule):
    rule_id = "DT002"
    title = "wall clock drives control flow"
    rationale = (
        "Injectable-clock contract (resilience.Budget, obs.Tracer): timing "
        "that decides *what the solver does* — deadlines, termination, "
        "branch selection — must come through an injectable clock so tests "
        "can drive it deterministically. A hard-coded time.time()/"
        "perf_counter()/datetime.now() that flows into an if/while test "
        "makes the solve path depend on machine load. Pure telemetry "
        "(measuring a wall_time to report) is not flagged."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.symtab.functions.values():
            yield from self._check_function(project, info)

    def _check_function(
        self, project: ProjectContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        clock_calls = [
            node for node in _own_nodes(info.node)
            if isinstance(node, ast.Call) and self._is_wall_clock(node)
        ]
        if not clock_calls:
            return
        rd = project.reaching(info.node)
        tainted = self._tainted_defs(info, rd, clock_calls)
        reported: Set[int] = set()
        for test, stmt in self._decision_tests(info):
            hit = self._clock_in_expr(test)
            if hit is None:
                for sub in ast.walk(test):
                    if (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and any(
                            id(d) in tainted
                            for d in rd.defs_reaching(stmt, sub.id)
                        )
                    ):
                        hit = sub
                        break
            if hit is None or id(stmt) in reported:
                continue
            reported.add(id(stmt))
            label = (
                f"`{_dotted(hit.func)}(...)`" if isinstance(hit, ast.Call)
                else f"`{hit.id}`, a value derived from a wall-clock read"
            )
            yield info.ctx.finding(
                self.rule_id, stmt,
                f"branch decided by {label} — thread an injectable clock "
                "(cf. resilience.Budget's clock parameter) so the deadline "
                "is testable",
            )

    @staticmethod
    def _is_wall_clock(call: ast.Call) -> bool:
        dotted = _dotted(call.func)
        if dotted in WALL_CLOCK_CALLS:
            return True
        parts = dotted.split(".")
        return (
            len(parts) >= 2
            and parts[-1] in _DATETIME_NOW_ATTRS
            and "datetime" in parts[:-1]
        )

    def _clock_in_expr(self, expr: ast.AST) -> Optional[ast.Call]:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and self._is_wall_clock(sub):
                return sub
        return None

    def _decision_tests(
        self, info: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, ast.AST]]:
        for node in _own_nodes(info.node):
            if isinstance(node, (ast.If, ast.While)):
                yield node.test, node
            elif isinstance(node, ast.IfExp):
                yield node.test, _enclosing_stmt(info.ctx, node)
            elif isinstance(node, ast.Assert):
                yield node.test, node

    def _tainted_defs(
        self, info: FunctionInfo, rd, clock_calls: List[ast.Call]
    ) -> Set[int]:
        """Fixpoint over definitions: a def is tainted when its RHS reads
        the wall clock directly or a name whose reaching defs are tainted."""
        clock_ids = {id(c) for c in clock_calls}
        defs: List[Tuple[ast.AST, Optional[ast.AST]]] = []
        for node in _own_nodes(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                defs.append((node, node.value))
            elif isinstance(node, ast.NamedExpr):
                defs.append((node, node.value))
        tainted: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for node, value in defs:
                if value is None or id(node) in tainted:
                    continue
                dirty = any(
                    id(sub) in clock_ids for sub in ast.walk(value)
                ) or any(
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and any(
                        id(d) in tainted
                        for d in rd.defs_reaching(node, sub.id)
                    )
                    for sub in ast.walk(value)
                )
                if dirty:
                    tainted.add(id(node))
                    changed = True
        return tainted


# --------------------------------------------------------------------------
# DT003 — closures over mutable state submitted to the executor
# --------------------------------------------------------------------------


@register_rule
class ExecutorClosureEscapeRule(FlowRule):
    rule_id = "DT003"
    title = "executor closure captures mutable state"
    rationale = (
        "repro.parallel's determinism contract forbids tasks communicating "
        "through shared mutable state: a closure handed to map_solve/"
        "submit/Executor.map that captures a loop variable (late binding) "
        "or a nonlocal that is reassigned/mutated races with the workers — "
        "results then depend on scheduling, which the golden-report tests "
        "cannot tolerate. Bind loop variables as default arguments or pass "
        "items explicitly."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.symtab.functions.values():
            yield from self._check_function(project, info)

    def _check_function(
        self, project: ProjectContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        submit_sites = [
            node for node in _own_nodes(info.node)
            if isinstance(node, ast.Call) and self._is_submission(node)
        ]
        if not submit_sites:
            return
        module_names = _module_level_names(info.ctx.tree)
        nested_defs = {
            child.name: child
            for child in ast.iter_child_nodes(info.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        rd = project.reaching(info.node)
        for site in submit_sites:
            closure = self._submitted_callable(site, nested_defs)
            if closure is None:
                continue
            captured = free_names(closure) - module_names
            for name in sorted(captured):
                verdict = self._capture_hazard(
                    info, rd, closure, site, name
                )
                if verdict:
                    yield info.ctx.finding(
                        self.rule_id, site,
                        f"closure submitted to `{_dotted(site.func) or _func_name(site)}` "
                        f"captures `{name}`, which {verdict} — bind it as a "
                        "default argument or pass it through the items",
                    )

    @staticmethod
    def _is_submission(call: ast.Call) -> bool:
        name = _func_name(call)
        if name == "map_solve":
            return True
        if name in {"submit", "map"} and isinstance(call.func, ast.Attribute):
            try:
                receiver = ast.unparse(call.func.value)
            except ValueError:  # pragma: no cover - exotic receiver
                return False
            return bool(_EXECUTORISH_RE.search(receiver))
        return False

    @staticmethod
    def _submitted_callable(
        call: ast.Call, nested_defs: Dict[str, ast.AST]
    ) -> Optional[ast.AST]:
        if not call.args:
            return None
        fn = call.args[0]
        if isinstance(fn, ast.Lambda):
            return fn
        if isinstance(fn, ast.Name) and fn.id in nested_defs:
            return nested_defs[fn.id]
        return None

    def _capture_hazard(
        self, info: FunctionInfo, rd, closure: ast.AST,
        site: ast.AST, name: str
    ) -> Optional[str]:
        closure_line = getattr(closure, "lineno", 0)
        defs = rd.all_defs_of(name)
        if not defs:
            return None  # a true global / builtin; out of scope here
        # (a) loop-variable capture: the closure lives inside a loop that
        # rebinds the name on every iteration (classic late binding)
        for anc in info.ctx.ancestors(closure):
            if anc is info.node:
                break
            if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
                loop_defs = {
                    id(n) for nm, n in assigned_names(anc) if nm == name
                }
                rebinds_in_body = any(
                    getattr(d, "lineno", 0) >= getattr(anc, "lineno", 0)
                    and id(d) not in loop_defs
                    and any(d is s or d in ast.walk(s) for s in anc.body)
                    for d in defs
                )
                if loop_defs or rebinds_in_body:
                    return "is rebound on every loop iteration (late binding)"
        # (b) reassigned after the closure is created
        if any(getattr(d, "lineno", 0) > closure_line for d in defs):
            return "is reassigned after the closure is created"
        # (c) mutated in place anywhere in the enclosing function
        for node in _own_nodes(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return "is mutated in place while workers may read it"
            if (
                isinstance(node, (ast.Assign, ast.AugAssign))
                and any(
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == name
                    for t in (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                )
            ):
                return "is mutated in place while workers may read it"
        return None


# --------------------------------------------------------------------------
# DT004 — set iteration feeding ordered output
# --------------------------------------------------------------------------


@register_rule
class UnorderedIterationRule(FlowRule):
    rule_id = "DT004"
    title = "set/dict iteration feeds ordered output"
    rationale = (
        "PYTHONHASHSEED randomizes str hashing, so iterating a set (or "
        "keys derived from one) yields a different order per process — "
        "feeding that into an ordered output (append/yield/write, list "
        "comprehensions) makes reports and golden files differ run-to-run "
        "even though the *contents* are equal. Wrap the iterable in "
        "sorted() or keep it in an order-insensitive reduction."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.symtab.functions.values():
            rd = None
            for node in _own_nodes(info.node):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if rd is None:
                        rd = project.reaching(info.node)
                    if self._set_valued(node.iter, rd, node) and (
                        self._loop_feeds_ordered_output(node)
                    ):
                        yield info.ctx.finding(
                            self.rule_id, node,
                            "iterating a set into an ordered output — wrap "
                            "the iterable in sorted() to pin the order",
                        )
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    if rd is None:
                        rd = project.reaching(info.node)
                    stmt = _enclosing_stmt(info.ctx, node)
                    if not self._set_valued(
                        node.generators[0].iter, rd, stmt
                    ):
                        continue
                    if self._comp_is_order_sensitive(info.ctx, node):
                        yield info.ctx.finding(
                            self.rule_id, node,
                            "comprehension over a set produces an ordered "
                            "sequence in hash order — wrap the set in "
                            "sorted()",
                        )

    def _set_valued(
        self, expr: ast.AST, rd, at_stmt: ast.AST, depth: int = 0
    ) -> bool:
        if depth > 4:
            return False
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            name = _func_name(expr)
            if name in {"set", "frozenset"}:
                return True
            if name in {
                "union", "intersection", "difference",
                "symmetric_difference",
            } and isinstance(expr.func, ast.Attribute):
                return self._set_valued(
                    expr.func.value, rd, at_stmt, depth + 1
                )
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._set_valued(
                expr.left, rd, at_stmt, depth + 1
            ) and self._set_valued(expr.right, rd, at_stmt, depth + 1)
        if isinstance(expr, ast.Name):
            defs = rd.defs_reaching(at_stmt, expr.id)
            values = [
                d.value for d in defs
                if isinstance(d, (ast.Assign, ast.AnnAssign))
                and d.value is not None
            ]
            return bool(values) and len(values) == len(defs) and all(
                self._set_valued(v, rd, d, depth + 1)
                for v, d in zip(values, defs)
            )
        return False

    @staticmethod
    def _loop_feeds_ordered_output(loop: ast.AST) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ) and sub.func.attr in {"append", "insert", "write", "extend"}:
                return True
        return False

    @staticmethod
    def _comp_is_order_sensitive(ctx: FileContext, comp: ast.AST) -> bool:
        parent = ctx.parent(comp)
        if isinstance(parent, ast.Call):
            name = _func_name(parent)
            if name in _ORDER_INSENSITIVE_CALLS:
                return False
            if isinstance(comp, ast.GeneratorExp):
                # a generator is only order-sensitive when materialized
                return name in {"list", "tuple", "join"}
        if isinstance(comp, ast.GeneratorExp) and not isinstance(
            parent, ast.Call
        ):
            return False
        return True


# --------------------------------------------------------------------------
# RD001 — budget-taking function whose loops never cooperate
# --------------------------------------------------------------------------


@register_rule
class UncooperativeLoopRule(FlowRule):
    rule_id = "RD001"
    title = "loop ignores the accepted Budget"
    rationale = (
        "resilience.Budget is cooperative: a function that accepts a "
        "budget promises to spend()/check() it inside its iteration so the "
        "fallback ladder can degrade instead of hang. A while loop (or an "
        "unbounded for-range loop) in a budget-taking function with no "
        "budget reference on any path through its body silently opts out "
        "of that contract — exactly the hang the ladders exist to prevent."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.symtab.functions.values():
            budget_param = self._budget_param(info)
            if budget_param is None:
                continue
            for node in _own_nodes(info.node):
                if isinstance(node, ast.While):
                    suspicious = True
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    suspicious = self._unbounded_range(node.iter)
                else:
                    continue
                if not suspicious:
                    continue
                if self._mentions(node, budget_param):
                    continue
                yield info.ctx.finding(
                    self.rule_id, node,
                    f"loop never spends/checks the `{budget_param}` this "
                    "function accepted — call budget.spend() per iteration "
                    "or pass the budget to the callee",
                )

    @staticmethod
    def _budget_param(info: FunctionInfo) -> Optional[str]:
        args = getattr(info.node, "args", None)
        if args is None:
            return None
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            for arg in group:
                ann = ""
                if arg.annotation is not None:
                    try:
                        ann = ast.unparse(arg.annotation)
                    except ValueError:  # pragma: no cover
                        ann = ""
                if arg.arg == "budget" or "Budget" in ann:
                    return arg.arg
        return None

    @staticmethod
    def _unbounded_range(iter_expr: ast.AST) -> bool:
        """``range(n)`` with a non-constant bound is an iteration-count
        solver loop; literal bounds and non-range iterables are not.
        Data-shaped bounds (``range(len(xs))``, ``range(a.shape[0])``)
        are loops over the problem data, not convergence loops — the
        budget contract targets the latter."""
        if not (
            isinstance(iter_expr, ast.Call)
            and _func_name(iter_expr) == "range"
        ):
            return False
        bound = iter_expr.args[1] if len(iter_expr.args) > 1 else (
            iter_expr.args[0] if iter_expr.args else None
        )
        if bound is None or isinstance(bound, ast.Constant):
            return False
        if isinstance(bound, ast.Call) and _func_name(bound) == "len":
            return False
        if isinstance(bound, ast.Subscript) and isinstance(
            bound.value, ast.Attribute
        ) and bound.value.attr == "shape":
            return False
        return True

    @staticmethod
    def _mentions(loop: ast.AST, name: str) -> bool:
        for sub in ast.walk(loop):
            if isinstance(sub, ast.Name) and sub.id == name:
                return True
        return False


# --------------------------------------------------------------------------
# RD002 — tracer span / profile_block not used as a context manager
# --------------------------------------------------------------------------


@register_rule
class DanglingSpanRule(FlowRule):
    rule_id = "RD002"
    title = "span/profile_block without `with`"
    rationale = (
        "obs.Tracer spans only record on __exit__: calling tracer.span(...) "
        "or profile_block(...) without entering the context manager opens "
        "nothing — the span silently vanishes from traces and, worse, "
        "reads as instrumented code that is not. Spans must be entered "
        "(`with`), returned to a caller who enters them, or handed to an "
        "ExitStack.enter_context."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.files:
            yield from self._check_file(ctx)

    def _check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and self._is_span_call(node)):
                continue
            if self._consumed_as_context(ctx, node):
                continue
            yield ctx.finding(
                self.rule_id, node,
                f"`{_dotted(node.func) or _func_name(node)}(...)` result is "
                "never entered — use `with ...:` (spans record on exit)",
            )

    @staticmethod
    def _is_span_call(call: ast.Call) -> bool:
        name = _func_name(call)
        if name == "profile_block":
            return True
        if name != "span" or not isinstance(call.func, ast.Attribute):
            return False
        try:
            receiver = ast.unparse(call.func.value)
        except ValueError:  # pragma: no cover - exotic receiver
            return False
        return "tracer" in receiver.lower() or "get_tracer" in receiver

    def _consumed_as_context(self, ctx: FileContext, call: ast.Call) -> bool:
        parent = ctx.parent(call)
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Lambda)):
            return True  # a helper handing the span to its caller
        if isinstance(parent, ast.Call) and _func_name(parent) in {
            "enter_context", "push",
        }:
            return True
        if isinstance(parent, ast.Assign):
            names = {
                t.id for t in parent.targets if isinstance(t, ast.Name)
            }
            if names:
                fn = ctx.enclosing_function(parent)
                for sub in ast.walk(fn):
                    if isinstance(sub, ast.withitem) and isinstance(
                        sub.context_expr, ast.Name
                    ) and sub.context_expr.id in names:
                        return True
                    if (
                        isinstance(sub, ast.Call)
                        and _func_name(sub) in {"enter_context", "push"}
                        and any(
                            isinstance(a, ast.Name) and a.id in names
                            for a in sub.args
                        )
                    ):
                        return True
        return False


# --------------------------------------------------------------------------
# RD003 — fallback rung failure swallowed without recording
# --------------------------------------------------------------------------


@register_rule
class UnrecordedRungFailureRule(FlowRule):
    rule_id = "RD003"
    title = "fallback rung swallowed without recording"
    rationale = (
        "The ladder contract (resilience.run_ladder, §II-B-2) is that a "
        "degraded answer is honest: every rung that fails must leave a "
        "trace — appended to a failures list, counted in metrics, logged — "
        "so the caller knows which certainty grade actually answered. An "
        "except that just `continue`s to the next rung erases that "
        "provenance and makes a heuristic answer look exact."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.files:
            for loop in ast.walk(ctx.tree):
                if not isinstance(loop, (ast.For, ast.AsyncFor)):
                    continue
                if not self._is_ladder_loop(loop):
                    continue
                for handler in self._handlers_in(loop):
                    if self._records_failure(handler):
                        continue
                    yield ctx.finding(
                        self.rule_id, handler,
                        "rung failure swallowed: the handler moves to the "
                        "next fallback without recording which rung failed "
                        "— append to a failures list, log, or count it",
                    )

    @staticmethod
    def _is_ladder_loop(loop: ast.AST) -> bool:
        try:
            header = ast.unparse(loop.target) + " " + ast.unparse(loop.iter)
        except ValueError:  # pragma: no cover - exotic loop header
            return False
        return bool(_LADDERISH_RE.search(header))

    @staticmethod
    def _handlers_in(loop: ast.AST) -> Iterator[ast.ExceptHandler]:
        for sub in ast.walk(loop):
            if isinstance(sub, ast.ExceptHandler):
                yield sub

    @staticmethod
    def _records_failure(handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call) and _RECORDING_CALL_RE.search(
                _func_name(sub)
            ):
                return True
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for t in targets:
                    terminal = (
                        t.attr if isinstance(t, ast.Attribute)
                        else t.id if isinstance(t, ast.Name) else ""
                    )
                    if _FAILURE_NAME_RE.search(terminal):
                        return True
        return False

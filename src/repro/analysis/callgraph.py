"""Module-level symbol table and interprocedural call graph.

The flow-rule family (``rules_flow``) checks *cross-function* contracts:
"is this global-RNG call reachable from a solver entry point?", "does the
budget this function accepted actually get spent in its loops?".  Those
questions need a project-wide view, which this module provides in two
layers:

* :class:`SymbolTable` — every function/method definition in the analyzed
  file set, keyed by dotted qualified name (``repro.convex.admm.solve`` /
  ``repro.pso.swarm.ParticleSwarm.step``), plus each module's import
  aliases.
* :class:`CallGraph` — a conservative **may-call** relation over those
  qualified names.  Call targets are resolved through local definitions
  and import aliases; bare-attribute calls (``obj.method(...)``) fall
  back to name matching across the project, capped so a ubiquitous name
  like ``get`` does not connect everything to everything.

The graph is deliberately an over-approximation: flow rules use it for
*reachability* ("could a solver entry reach this sink?"), where missing
an edge silently hides a finding but a spurious edge merely asks a human
to review one suppression.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext
from repro.analysis.dataflow import ControlFlowGraph, ReachingDefinitions

__all__ = [
    "FunctionInfo",
    "SymbolTable",
    "CallGraph",
    "ProjectContext",
    "module_name_for_path",
]

#: an attribute call resolved only by its bare name links to at most this
#: many same-named candidates; beyond that the name is too generic to be
#: informative and the edge is dropped.
_MAX_NAME_FALLBACK = 4

#: bare method names so common that name-fallback edges would be noise
_GENERIC_NAMES = {
    "get", "set", "add", "pop", "run", "close", "open", "copy", "items",
    "keys", "values", "update", "append", "extend", "join", "split",
    "read", "write", "next", "send", "result", "submit", "map",
}


def module_name_for_path(path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/convex/admm.py`` → ``repro.convex.admm``;
    ``benchmarks/bench_kernels.py`` → ``benchmarks.bench_kernels``.
    An ``src`` segment is stripped so the name matches the import system.
    """
    parts = [p for p in re.split(r"[\\/]+", path) if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    while parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the analyzed file set."""

    qualname: str          # module.func or module.Class.func (nested: a.b)
    name: str              # bare terminal name
    module: str
    node: ast.AST          # FunctionDef / AsyncFunctionDef / Lambda
    ctx: FileContext
    params: Tuple[str, ...] = ()
    is_public: bool = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


def _param_names(fn: ast.AST) -> Tuple[str, ...]:
    args = getattr(fn, "args", None)
    if args is None:
        return ()
    names: List[str] = []
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.extend(a.arg for a in group)
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


class SymbolTable:
    """Every function definition and import alias across the file set."""

    def __init__(self) -> None:
        #: qualified name -> FunctionInfo
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare name -> qualified names sharing it
        self.by_name: Dict[str, List[str]] = {}
        #: module -> {local alias -> dotted target}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: ast function node -> qualified name (for reverse lookup)
        self.qualname_of_node: Dict[ast.AST, str] = {}

    @classmethod
    def build(cls, files: Iterable[FileContext]) -> "SymbolTable":
        table = cls()
        for ctx in files:
            module = module_name_for_path(ctx.path)
            table.imports[module] = table._collect_imports(ctx.tree)
            table._collect_functions(ctx, module, ctx.tree, prefix=module)
        return table

    @staticmethod
    def _collect_imports(tree: ast.AST) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return aliases

    def _collect_functions(
        self, ctx: FileContext, module: str, scope: ast.AST, prefix: str
    ) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    name=node.name,
                    module=module,
                    node=node,
                    ctx=ctx,
                    params=_param_names(node),
                    is_public=not node.name.startswith("_"),
                )
                self.functions[qualname] = info
                self.by_name.setdefault(node.name, []).append(qualname)
                self.qualname_of_node[node] = qualname
                self._collect_functions(ctx, module, node, prefix=qualname)
            elif isinstance(node, ast.ClassDef):
                self._collect_functions(
                    ctx, module, node, prefix=f"{prefix}.{node.name}"
                )

    def lookup(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.module == module]


def _dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class CallGraph:
    """Conservative may-call graph over :class:`SymbolTable` functions."""

    def __init__(self, symtab: SymbolTable) -> None:
        self.symtab = symtab
        self._edges: Dict[str, Set[str]] = {}
        self._reverse: Dict[str, Set[str]] = {}

    # ---- construction --------------------------------------------------------
    @classmethod
    def build(cls, symtab: SymbolTable) -> "CallGraph":
        graph = cls(symtab)
        for info in symtab.functions.values():
            graph._edges.setdefault(info.qualname, set())
            for callee in graph._resolve_calls(info):
                graph._edges[info.qualname].add(callee)
                graph._reverse.setdefault(callee, set()).add(info.qualname)
            # defining a nested function counts as a potential call: the
            # closure escapes through returns/submissions we cannot track
            for child in ast.iter_child_nodes(info.node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested = symtab.qualname_of_node.get(child)
                    if nested:
                        graph._edges[info.qualname].add(nested)
                        graph._reverse.setdefault(nested, set()).add(
                            info.qualname
                        )
        return graph

    def _resolve_calls(self, info: FunctionInfo) -> Iterator[str]:
        own_nested = {
            child.name
            for child in ast.iter_child_nodes(info.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            yield from self._resolve_target(info, node.func, own_nested)
            # first-class function arguments (map_solve(fn, ...), retries)
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    yield from self._resolve_target(info, arg, own_nested)

    def _resolve_target(
        self, info: FunctionInfo, func: ast.AST, own_nested: Set[str]
    ) -> Iterator[str]:
        aliases = self.symtab.imports.get(info.module, {})
        if isinstance(func, ast.Name):
            name = func.id
            if name in own_nested and f"{info.qualname}.{name}" in (
                self.symtab.functions
            ):
                yield f"{info.qualname}.{name}"
                return
            if f"{info.module}.{name}" in self.symtab.functions:
                yield f"{info.module}.{name}"
                return
            target = aliases.get(name)
            if target and target in self.symtab.functions:
                yield target
                return
            if target:
                # `from pkg import mod`-style alias of a module: no single
                # function target; name fallback below would be wrong.
                return
            yield from self._name_fallback(name)
        elif isinstance(func, ast.Attribute):
            dotted = _dotted_name(func)
            if dotted:
                root, _, rest = dotted.partition(".")
                target_mod = aliases.get(root)
                if target_mod:
                    qual = f"{target_mod}.{rest}" if rest else target_mod
                    if qual in self.symtab.functions:
                        yield qual
                        return
            yield from self._name_fallback(func.attr)

    def _name_fallback(self, name: str) -> Iterator[str]:
        if name in _GENERIC_NAMES or name.startswith("__"):
            return
        candidates = self.symtab.by_name.get(name, [])
        if 0 < len(candidates) <= _MAX_NAME_FALLBACK:
            yield from candidates

    # ---- queries -------------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return set(self._edges.get(qualname, ()))

    def callers(self, qualname: str) -> Set[str]:
        return set(self._reverse.get(qualname, ()))

    def iter_edges(self) -> Iterator[Tuple[str, str]]:
        for src in sorted(self._edges):
            for dst in sorted(self._edges[src]):
                yield src, dst

    def reachable_from(
        self, roots: Iterable[str]
    ) -> Dict[str, str]:
        """BFS closure of *roots*; returns ``{reached: witness_root}``.

        The witness is the root whose BFS first reached the node, so a
        finding can name one concrete entry point in its message.
        """
        witness: Dict[str, str] = {}
        frontier: List[str] = []
        for root in roots:
            if root not in witness:
                witness[root] = root
                frontier.append(root)
        while frontier:
            cur = frontier.pop(0)
            for nxt in sorted(self._edges.get(cur, ())):
                if nxt not in witness:
                    witness[nxt] = witness[cur]
                    frontier.append(nxt)
        return witness

    def to_dot(self, max_label: int = 60) -> str:
        """GraphViz export for ``--call-graph-dot`` debugging."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        for src, dst in self.iter_edges():
            lines.append(
                f'  "{src[:max_label]}" -> "{dst[:max_label]}";'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


class ProjectContext:
    """Project-wide view handed to :class:`~repro.analysis.core.FlowRule`.

    Bundles every parsed :class:`FileContext` with the symbol table and
    call graph built over them, plus lazy caches for per-function CFGs
    and reaching-definitions so flow rules only pay for the functions
    they actually inspect.
    """

    def __init__(self, files: Iterable[FileContext]):
        self.files: List[FileContext] = list(files)
        self.symtab = SymbolTable.build(self.files)
        self.callgraph = CallGraph.build(self.symtab)
        self._cfgs: Dict[int, ControlFlowGraph] = {}
        self._reaching: Dict[int, ReachingDefinitions] = {}

    def cfg(self, fn_node: ast.AST) -> ControlFlowGraph:
        key = id(fn_node)
        if key not in self._cfgs:
            self._cfgs[key] = ControlFlowGraph.from_function(fn_node)
        return self._cfgs[key]

    def reaching(self, fn_node: ast.AST) -> ReachingDefinitions:
        key = id(fn_node)
        if key not in self._reaching:
            self._reaching[key] = ReachingDefinitions(
                self.cfg(fn_node), fn_node
            )
        return self._reaching[key]

    def context_for(self, info: FunctionInfo) -> FileContext:
        return info.ctx

"""Baseline file support: grandfather existing findings with justifications.

The baseline is a JSON document mapping finding fingerprints (rule + path
+ normalized source line, see :meth:`Finding.fingerprint`) to a required
human justification.  Matching by fingerprint rather than line number
keeps entries stable across unrelated edits; an entry goes stale only
when the offending line itself changes — which is exactly when it should
be re-reviewed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding

__all__ = ["Baseline", "BaselineEntry", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    snippet: str
    justification: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "snippet": self.snippet,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: Dict[str, BaselineEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"(expected {BASELINE_VERSION})"
            )
        baseline = cls()
        for raw in data.get("entries", []):
            entry = BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                fingerprint=raw["fingerprint"],
                snippet=raw.get("snippet", ""),
                justification=raw.get("justification", ""),
            )
            baseline.entries[entry.fingerprint] = entry
        return baseline

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str = "grandfathered"
    ) -> "Baseline":
        baseline = cls()
        for f in findings:
            baseline.entries[f.fingerprint()] = BaselineEntry(
                rule=f.rule_id,
                path=f.path,
                fingerprint=f.fingerprint(),
                snippet=" ".join(f.snippet.split()),
                justification=justification,
            )
        return baseline

    def save(self, path: "Path | str") -> None:
        doc = {
            "version": BASELINE_VERSION,
            "entries": [
                e.to_dict()
                for e in sorted(
                    self.entries.values(), key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        Path(path).write_text(
            json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def split(
        self,
        findings: Iterable[Finding],
        active_rules: "Iterable[str] | None" = None,
        active_paths: "Iterable[str] | None" = None,
    ) -> "Tuple[List[Finding], List[Finding], List[BaselineEntry]]":
        """Partition findings into (new, baselined); also return stale
        baseline entries that matched nothing (candidates for deletion).

        *active_rules* names the rules the run actually executed and
        *active_paths* the files it actually scanned; entries outside
        either are exempt from staleness, so a family-, rule-, or
        path-scoped run (e.g. ``lint.sh --changed-only``) does not
        misreport entries belonging to the unscanned remainder."""
        new: List[Finding] = []
        matched: List[Finding] = []
        seen: set = set()
        for f in findings:
            fp = f.fingerprint()
            if fp in self.entries:
                matched.append(f)
                seen.add(fp)
            else:
                new.append(f)
        rules_set = None if active_rules is None else set(active_rules)
        paths_set = None if active_paths is None else set(active_paths)
        stale = [
            e for fp, e in self.entries.items()
            if fp not in seen
            and (rules_set is None or e.rule in rules_set)
            and (paths_set is None or e.path in paths_set)
        ]
        return new, matched, stale

"""Command-line interface: ``python -m repro.analysis [paths]``.

Exit codes: 0 clean, 1 findings or parse errors, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import RULE_FAMILIES
from repro.analysis.report import render_json, render_rule_catalog, render_text
from repro.analysis.runner import analyze_paths

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE = Path("tools") / "numlint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "numlint — numerical-safety static analysis encoding the "
            "paper's Fig. 3 pitfall catalog (see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline JSON (default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file, report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0 "
             "(requires --justification)",
    )
    parser.add_argument(
        "--justification", default=None, metavar="TEXT",
        help="human rationale recorded on every baseline entry written by "
             "--write-baseline; required so grandfathered findings carry a "
             "real review note instead of a placeholder",
    )
    parser.add_argument(
        "--rules", default=None, metavar="NL001,DT002",
        help="comma-separated subset of rules to run",
    )
    parser.add_argument(
        "--rule-family", choices=RULE_FAMILIES, default=None,
        dest="rule_family",
        help="run only one analyzer tier: 'expression' (per-file NL rules) "
             "or 'flow' (interprocedural DT/RD rules)",
    )
    parser.add_argument(
        "--call-graph-dot", type=Path, default=None, metavar="FILE",
        dest="call_graph_dot",
        help="write the interprocedural call graph as GraphViz DOT to FILE "
             "(debug aid for DT001 reachability; implies the flow tier runs)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="directory that report paths are made relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog with paper grounding and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list baselined (grandfathered) findings",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try: python -m repro.analysis src)",
              file=sys.stderr)
        return 2

    missing = [str(p) for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if args.write_baseline and not (args.justification or "").strip():
        print(
            "error: --write-baseline requires --justification TEXT "
            "(a real reason each finding is acceptable; placeholders "
            "defeat the baseline's re-review contract)",
            file=sys.stderr,
        )
        return 2

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    families = None
    if args.rule_family:
        families = [args.rule_family]
        if args.call_graph_dot is not None and args.rule_family != "flow":
            print("error: --call-graph-dot needs the flow tier "
                  "(drop --rule-family or set it to 'flow')",
                  file=sys.stderr)
            return 2

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.is_file():
        baseline_path = DEFAULT_BASELINE

    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path is not None:
        if not baseline_path.is_file():
            print(f"error: baseline file not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        baseline = Baseline.load(baseline_path)

    result = analyze_paths(
        args.paths, baseline=baseline, rules=rule_ids,
        families=families, root=args.root,
    )

    if args.call_graph_dot is not None:
        if result.project is None:
            print("error: no call graph was built (no parseable files?)",
                  file=sys.stderr)
            return 2
        args.call_graph_dot.write_text(
            result.project.callgraph.to_dot(), encoding="utf-8"
        )
        print(f"numlint: wrote call graph to {args.call_graph_dot}",
              file=sys.stderr)

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(
            result.findings, justification=args.justification.strip()
        ).save(target)
        print(f"numlint: wrote {len(result.findings)} entrie(s) to {target}")
        return 0

    print(render_text(result, verbose=args.verbose) if args.fmt == "text"
          else render_json(result))
    return result.exit_code()

"""Retry with exponential backoff, jitter, and perturbed restarts.

Transient solver failures — a :class:`ConvergenceError` from a bad warm
start, a :class:`NumericalInstabilityError` from an ill-conditioned
iterate, an injected chaos fault — are often cured by retrying from a
slightly perturbed starting point.  :func:`retry_call` implements the
standard exponential-backoff-with-jitter loop; the jitter RNG and the
sleep function are injectable so tests are deterministic and instant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Type

import numpy as np

from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    ConvergenceError,
    FaultInjectedError,
    NumericalInstabilityError,
)
from repro.obs import get_metrics
from repro.resilience.budget import Budget

__all__ = ["RetryPolicy", "RetryOutcome", "retry_call", "perturb_warm_start"]

#: exception classes a retry can plausibly cure
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    ConvergenceError,
    NumericalInstabilityError,
    FaultInjectedError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base_delay * backoff**k``, capped and jittered.

    ``jitter`` is the fractional uniform spread: delay is multiplied by
    ``1 + jitter * U[0, 1)`` (decorrelates retries across callers).
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    backoff: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ConfigurationError("delays and jitter must be nonnegative")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff delay after the *attempt*-th failure (1-based)."""
        raw = min(self.base_delay * self.backoff ** (attempt - 1), self.max_delay)
        return raw * (1.0 + self.jitter * float(rng.random()))


@dataclass
class RetryOutcome:
    """What a retried call actually did."""

    value: object
    attempts: int
    delays: List[float] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)


def retry_call(
    fn: Callable[..., object],
    policy: Optional[RetryPolicy] = None,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    budget: Optional[Budget] = None,
) -> RetryOutcome:
    """Call ``fn()`` with retries under *policy*.

    ``on_retry(attempt, error)`` fires before each retry — the hook where
    callers re-seed or perturb a warm start.  A :class:`Budget` caps the
    whole loop: backoff never sleeps past the deadline, and an expired
    budget aborts with :class:`BudgetExceededError` (which is never
    retried — out of time is out of time).
    """
    policy = policy or RetryPolicy()
    rng = rng or np.random.default_rng(0)
    outcome = RetryOutcome(value=None, attempts=0)
    for attempt in range(1, policy.max_attempts + 1):
        if budget is not None:
            budget.check("retry loop")
        outcome.attempts = attempt
        try:
            outcome.value = fn()
            return outcome
        except BudgetExceededError:
            raise
        except policy.retry_on as err:
            outcome.errors.append(f"{type(err).__name__}: {err}")
            if attempt == policy.max_attempts:
                get_metrics().counter("retry.exhausted",
                                      error=type(err).__name__).inc()
                raise
            get_metrics().counter("retry.retries",
                                  error=type(err).__name__).inc()
            delay = policy.delay(attempt, rng)
            if budget is not None:
                delay = min(delay, budget.remaining_time)
            outcome.delays.append(delay)
            if delay > 0:
                sleep(delay)
            if on_retry is not None:
                on_retry(attempt, err)
    raise AssertionError("unreachable")  # pragma: no cover


def perturb_warm_start(
    x0: np.ndarray,
    rng: np.random.Generator,
    scale: float = 0.1,
    attempt: int = 1,
) -> np.ndarray:
    """Perturbed restart point: gaussian noise that grows with the attempt.

    The noise magnitude is relative to the iterate's own scale so a
    restart explores a genuinely different basin without leaving the
    problem's natural range.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    magnitude = scale * attempt * max(1.0, float(np.linalg.norm(x0)) / max(1, x0.size))
    return x0 + magnitude * rng.standard_normal(x0.shape)

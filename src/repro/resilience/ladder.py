"""Fallback ladders declared as data.

The paper's §II-B-2 "hybridized approach vector" is a ladder: exact
(complete, expensive) down through successively wider relaxations
(cheap, incomplete).  This module turns that into an operational
degradation policy: a tuple of :class:`Rung` objects, tightest first,
each naming the relaxation grade it answers at.  :func:`run_ladder`
walks the rungs — retrying transient failures within a rung, descending
on persistent failure or budget exhaustion — and the returned
:class:`LadderResult` records *which rung actually answered*, so callers
always know what certainty they got (a degraded answer is honest, never
a silently wrong one).

A rung with ``guaranteed=True`` (normally the last, a cheap conservative
heuristic) is run even when the budget has already expired: serving
*some* valid answer beats hanging or crashing the QoS control plane.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    LadderExhaustedError,
    ReproError,
)
from repro.obs import get_metrics, get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import Budget, BudgetReport
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = ["Rung", "LadderResult", "run_ladder"]

#: histogram buckets for the answering rung index (ladders are short)
_RUNG_INDEX_BUCKETS = (0, 1, 2, 3, 4, 8)


@dataclass(frozen=True)
class Rung:
    """One step of a fallback ladder.

    ``grade`` is a human-readable relaxation-grade label (e.g. ``exact``,
    ``lp``, ``sdp``, ``heuristic``) recorded in the result; ``solve`` is
    the zero-argument computation; ``retry`` governs transient failures
    *within* this rung before the ladder descends; ``guaranteed`` marks a
    rung that must run even with an exhausted budget.

    A rung with ``accepts_warm_start=True`` is called as
    ``solve(warm_start=iterate)`` when the previously failed rung's error
    carried a best iterate (``err.iterate``) — work a failed tighter rung
    already paid for seeds the next one instead of being thrown away.
    The closure owns shape validation: a carried iterate it cannot use
    must be ignored, never an error.
    """

    name: str
    solve: Callable[..., object]
    grade: str = ""
    retry: Optional[RetryPolicy] = None
    guaranteed: bool = False
    accepts_warm_start: bool = False


@dataclass(frozen=True)
class LadderResult:
    """Outcome of one ladder run: the value plus full provenance.

    ``rung_times`` records the wall-clock each *attempted* rung spent
    (including its retries), measured with the budget's injectable clock
    when a budget is threaded through — skipped rungs do not appear.
    """

    value: object
    rung: str
    rung_index: int
    grade: str
    attempts: int
    failures: Tuple[Tuple[str, str], ...]
    budget: Optional[BudgetReport] = None
    rung_times: Tuple[Tuple[str, float], ...] = ()

    @property
    def degraded(self) -> bool:
        """True when a rung below the tightest one answered."""
        return self.rung_index > 0

    @property
    def total_rung_time(self) -> float:
        import math

        return math.fsum(t for _, t in self.rung_times)


def run_ladder(
    rungs: Sequence[Rung],
    budget: Optional[Budget] = None,
    validator: Optional[Callable[[object], None]] = None,
    breaker: Optional[CircuitBreaker] = None,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
    name: str = "ladder",
    clock: Optional[Callable[[], float]] = None,
) -> LadderResult:
    """Walk *rungs* tightest-first until one produces a valid answer.

    ``validator(value)`` may raise any :class:`ReproError` to reject a
    rung's output (e.g. a NaN-corrupted bound) — rejection counts as a
    rung failure and the ladder descends.  A :class:`CircuitBreaker`
    guards the *non-guaranteed* rungs: while open, the ladder jumps
    straight to the guaranteed conservative rung; the primary rung's
    outcome feeds the breaker state.

    ``name`` labels this ladder in traces and metrics (``"verify"``,
    ``"rra"``, ...).  Per-rung wall time is measured with ``clock``,
    defaulting to the budget's injectable clock when one is threaded
    through (so deterministic tests drive both with one fake clock) and
    ``time.perf_counter`` otherwise.
    """
    if not rungs:
        raise ConfigurationError("ladder needs at least one rung")
    rng = rng or np.random.default_rng(0)
    if clock is None:
        clock = budget.clock if budget is not None else time.perf_counter
    tracer = get_tracer()
    metrics = get_metrics()
    failures: List[Tuple[str, str]] = []
    rung_times: List[Tuple[str, float]] = []
    total_attempts = 0
    carry: object = None  # best iterate carried down from a failed rung

    skip_to_guaranteed = breaker is not None and not breaker.allow()

    with tracer.span("resilience.ladder", ladder=name, rungs=len(rungs)) as span:
        for index, rung in enumerate(rungs):
            out_of_budget = budget is not None and budget.expired
            if (skip_to_guaranteed or out_of_budget) and not rung.guaranteed:
                reason = "circuit open" if skip_to_guaranteed else "budget exhausted"
                failures.append((rung.name, f"skipped: {reason}"))
                tracer.event("ladder.rung_skipped", ladder=name,
                             rung=rung.name, reason=reason)
                metrics.counter("ladder.rung_skipped", ladder=name,
                                reason=reason).inc()
                continue

            attempt_counter = [0]

            def attempt(rung: Rung = rung, counter: List[int] = attempt_counter) -> object:
                counter[0] += 1
                if rung.accepts_warm_start and carry is not None:
                    value = rung.solve(warm_start=carry)
                else:
                    value = rung.solve()
                if validator is not None:
                    validator(value)
                return value

            rung_start = clock()
            try:
                # a guaranteed rung must finish even if the budget expires
                # mid-rung, so it runs with no budget guard on its retries
                outcome = retry_call(attempt, policy=rung.retry or RetryPolicy(max_attempts=1),
                                     rng=rng, sleep=sleep,
                                     budget=None if rung.guaranteed else budget)
                rung_times.append((rung.name, clock() - rung_start))
                total_attempts += attempt_counter[0]
                if breaker is not None and index == 0:
                    breaker.record_success()
                span.set(answered=rung.name, rung_index=index,
                         attempts=total_attempts)
                tracer.event("ladder.answered", ladder=name, rung=rung.name,
                             rung_index=index, grade=rung.grade or rung.name)
                metrics.counter("ladder.answered", ladder=name,
                                rung=rung.name).inc()
                metrics.histogram("ladder.rung_index",
                                  buckets=_RUNG_INDEX_BUCKETS,
                                  ladder=name).observe(index)
                return LadderResult(
                    value=outcome.value,
                    rung=rung.name,
                    rung_index=index,
                    grade=rung.grade or rung.name,
                    attempts=total_attempts,
                    failures=tuple(failures),
                    budget=budget.report() if budget is not None else None,
                    rung_times=tuple(rung_times),
                )
            except BudgetExceededError as err:
                rung_times.append((rung.name, clock() - rung_start))
                total_attempts += max(attempt_counter[0], 1)
                failures.append((rung.name, f"BudgetExceededError: {err}"))
                tracer.event("ladder.rung_failed", ladder=name, rung=rung.name,
                             error="BudgetExceededError")
                metrics.counter("ladder.rung_failed", ladder=name,
                                rung=rung.name).inc()
                if breaker is not None and index == 0:
                    breaker.record_failure()
            except ReproError as err:
                rung_times.append((rung.name, clock() - rung_start))
                total_attempts += max(attempt_counter[0], 1)
                failures.append((rung.name, f"{type(err).__name__}: {err}"))
                if getattr(err, "iterate", None) is not None:
                    carry = err.iterate
                tracer.event("ladder.rung_failed", ladder=name, rung=rung.name,
                             error=type(err).__name__)
                metrics.counter("ladder.rung_failed", ladder=name,
                                rung=rung.name).inc()
                if breaker is not None and index == 0:
                    breaker.record_failure()

        span.set(exhausted=True)
        metrics.counter("ladder.exhausted", ladder=name).inc()
        raise LadderExhaustedError(
            f"all {len(rungs)} rungs failed: "
            + "; ".join(f"{name_} ({msg})" for name_, msg in failures),
            failures=tuple(failures),
        )

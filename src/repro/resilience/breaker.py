"""Circuit breaker guarding the QoS hot path.

The scheduler's admission/RRA loop runs once per frame; a broken solver
backend must not be hammered every frame while it fails.  The classic
three-state breaker: CLOSED (normal) counts consecutive failures; after
``failure_threshold`` of them it OPENs and callers are routed to the
cheap conservative policy; after ``cooldown_s`` it becomes HALF_OPEN and
admits probe calls — enough consecutive successes re-CLOSE it, any
failure re-OPENs it.

The clock is injectable so trip/recovery is testable deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exceptions import CircuitOpenError, ConfigurationError, ReproError
from repro.obs import get_metrics, get_tracer

__all__ = ["CircuitBreaker"]

#: state -> gauge value, so dashboards can plot transitions numerically
_STATE_INDEX = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open recovery."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        half_open_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "breaker",
        max_half_open_probes: int = 1,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ConfigurationError("cooldown_s must be positive")
        if half_open_successes < 1:
            raise ConfigurationError("half_open_successes must be >= 1")
        if max_half_open_probes < 1:
            raise ConfigurationError("max_half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_successes = half_open_successes
        self.max_half_open_probes = max_half_open_probes
        self.name = name
        self._clock = clock
        self._on_transition = on_transition
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._probes_inflight = 0
        self._opened_at = 0.0
        # counters for observability
        self.trips = 0
        self.calls_rejected = 0
        self.probes_rejected = 0

    # ---- state ---------------------------------------------------------------
    def _transition(self, to_state: str) -> None:
        """Record a state change as an event, counter, and gauge."""
        from_state = self._state
        self._state = to_state
        get_tracer().event("breaker.transition", breaker=self.name,
                           from_state=from_state, to_state=to_state)
        metrics = get_metrics()
        metrics.counter("breaker.transitions", breaker=self.name,
                        from_state=from_state, to_state=to_state).inc()
        metrics.gauge("breaker.state", breaker=self.name).set(
            _STATE_INDEX[to_state])
        if self._on_transition is not None:
            # owner hookup (e.g. a serve shard feeding its windowed
            # flip-rate instrument); observers must not raise
            self._on_transition(from_state, to_state)

    @property
    def state(self) -> str:
        """Current state, lazily transitioning OPEN -> HALF_OPEN."""
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(self.HALF_OPEN)
            self._probe_successes = 0
            self._probes_inflight = 0
        return self._state

    def allow(self) -> bool:
        """May a call go to the guarded backend right now?

        In HALF_OPEN at most ``max_half_open_probes`` (default 1) calls
        may be in flight at once: the whole point of the state is to
        learn from a *controlled* probe, and a thundering herd of
        concurrent probes can re-knock-over a barely recovered backend
        before the first verdict lands.  An admitted probe is released
        by the next :meth:`record_success`/:meth:`record_failure`.
        """
        state = self.state
        if state == self.OPEN:
            self.calls_rejected += 1
            get_metrics().counter("breaker.rejected", breaker=self.name).inc()
            return False
        if state == self.HALF_OPEN:
            if self._probes_inflight >= self.max_half_open_probes:
                self.probes_rejected += 1
                self.calls_rejected += 1
                get_metrics().counter("breaker.probe_rejected",
                                      breaker=self.name).inc()
                return False
            self._probes_inflight += 1
        return True

    # ---- outcome feedback ----------------------------------------------------
    def record_success(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            # outcomes may arrive without a prior allow() (e.g. a ladder
            # feeding primary-rung results straight in), so never underflow
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._transition(self.CLOSED)
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        state = self.state
        if state == self.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._transition(self.OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_successes = 0
        self._probes_inflight = 0
        self.trips += 1

    # ---- convenience wrapper -------------------------------------------------
    def call(self, fn: Callable[[], object],
             fallback: Optional[Callable[[], object]] = None) -> object:
        """Run ``fn`` through the breaker.

        While OPEN, ``fallback`` is used when given, otherwise
        :class:`CircuitOpenError` is raised.  Failures of ``fn`` (any
        :class:`ReproError`) feed the breaker and re-raise.
        """
        if not self.allow():
            if fallback is not None:
                return fallback()
            raise CircuitOpenError(
                f"circuit open after {self.trips} trip(s); retry after cooldown"
            )
        try:
            value = fn()
        except ReproError:
            self.record_failure()
            raise
        self.record_success()
        return value

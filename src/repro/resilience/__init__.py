"""Fault-tolerant solver runtime: budgets, retries, fallback ladders,
circuit breaking, and deterministic fault injection.

The paper's ladder from exact to relaxed solvers (§II-B-2) is a
cost/completeness policy; this package makes it an *operational* one.
Every expensive computation in the repo can be wrapped with

* a cooperative :class:`Budget` (wall-clock + iteration deadlines,
  threaded into solver loops);
* :func:`retry_call` with exponential backoff, jitter, and perturbed
  restarts for transient failures;
* a declarative fallback ladder (:class:`Rung` / :func:`run_ladder`)
  that degrades tight -> loose and records which rung answered;
* a :class:`CircuitBreaker` guarding hot paths against a persistently
  broken backend;
* a seeded :class:`ChaosMonkey` that injects NaN corruption, transient
  exceptions, latency, and budget exhaustion so all of the above is
  provable by deterministic tests.

See docs/RESILIENCE.md for the operational story.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import Budget, BudgetReport
from repro.resilience.chaos import ChaosMonkey, FaultSpec, InjectionEvent, corrupt_with_nan
from repro.resilience.ladder import LadderResult, Rung, run_ladder
from repro.resilience.retry import (
    DEFAULT_RETRYABLE,
    RetryOutcome,
    RetryPolicy,
    perturb_warm_start,
    retry_call,
)

__all__ = [
    "Budget",
    "BudgetReport",
    "ChaosMonkey",
    "CircuitBreaker",
    "DEFAULT_RETRYABLE",
    "FaultSpec",
    "InjectionEvent",
    "LadderResult",
    "RetryOutcome",
    "RetryPolicy",
    "Rung",
    "corrupt_with_nan",
    "perturb_warm_start",
    "retry_call",
    "run_ladder",
]

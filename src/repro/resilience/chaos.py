"""Deterministic fault injection ("chaos") harness.

Every mechanism in :mod:`repro.resilience` claims graceful degradation
under faults; this module makes those claims testable.  A
:class:`ChaosMonkey` wraps callables and, driven by a *seeded* RNG,
injects

* **NaN corruption** — numeric outputs (floats / arrays, and numeric
  fields of result dataclasses) are poisoned with NaN;
* **transient exceptions** — :class:`FaultInjectedError` raised before
  the call, modelling a flaky backend;
* **artificial latency** — extra sleep before the call (injectable
  sleep, so tests stay instant) plus optional charge against a
  cooperative :class:`Budget`, modelling a slow backend that eats the
  deadline.

The same seed always yields the same injection schedule, so a test that
demonstrates "NaN on call 2 degrades the verifier to the LP rung" is
reproducible bit-for-bit.  Every injection is appended to
:attr:`ChaosMonkey.events` for assertions.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, FaultInjectedError
from repro.obs import get_metrics, get_tracer
from repro.resilience.budget import Budget

__all__ = ["FaultSpec", "InjectionEvent", "ChaosMonkey", "corrupt_with_nan"]


@dataclass(frozen=True)
class FaultSpec:
    """Per-call injection probabilities and magnitudes.

    Rates are independent Bernoulli draws per call, evaluated in a fixed
    order (exception, latency, NaN) so schedules are reproducible.
    ``budget_burn`` iterations are charged to the wrapped budget whenever
    latency fires — the deterministic stand-in for "the backend got slow
    and ate the deadline".
    """

    nan_rate: float = 0.0
    exception_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.0
    budget_burn: int = 0

    def __post_init__(self):
        for name in ("nan_rate", "exception_rate", "latency_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"{name} must be a probability, got {v}")
        if self.latency_s < 0 or self.budget_burn < 0:
            raise ConfigurationError("latency_s and budget_burn must be nonnegative")


@dataclass(frozen=True)
class InjectionEvent:
    """One injected fault, for post-hoc assertions."""

    call_index: int
    kind: str  # "exception" | "latency" | "nan"
    target: str


def corrupt_with_nan(value: object, rng: np.random.Generator) -> object:
    """Poison a numeric result with NaN, preserving its shape/type.

    Arrays get one random element set to NaN; floats become NaN; frozen
    dataclasses are rebuilt with every float/array field poisoned.
    Non-numeric values pass through unchanged.
    """
    if isinstance(value, np.ndarray):
        if value.size == 0 or not np.issubdtype(value.dtype, np.floating):
            return value
        out = value.copy()
        flat = out.ravel()
        flat[int(rng.integers(flat.size))] = np.nan
        return out
    if isinstance(value, float):
        return float("nan")
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changes = {}
        for f in dataclasses.fields(value):
            v = getattr(value, f.name)
            if isinstance(v, float) or (
                isinstance(v, np.ndarray) and np.issubdtype(v.dtype, np.floating)
            ):
                changes[f.name] = corrupt_with_nan(v, rng)
        if changes:
            return dataclasses.replace(value, **changes)
    return value


class ChaosMonkey:
    """Wrap callables with seeded fault injection.

    Parameters
    ----------
    spec:
        Injection rates/magnitudes.
    seed:
        Seed for the injection schedule — same seed, same schedule.
    sleep:
        Latency implementation; inject a no-op in tests.
    budget:
        Optional budget charged by latency injections.
    """

    def __init__(
        self,
        spec: FaultSpec,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        budget: Optional[Budget] = None,
    ):
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self._sleep = sleep
        self.budget = budget
        self.events: List[InjectionEvent] = []
        self.calls = 0

    def _inject(self, index: int, kind: str, target: str) -> None:
        """Record one injection everywhere it can be asserted on: the
        local event list, the metrics registry, and the active trace."""
        self.events.append(InjectionEvent(index, kind, target))
        get_metrics().counter("chaos.injections", kind=kind,
                              target=target).inc()
        get_tracer().event("chaos.injection", fault=kind, target=target,
                           call_index=index)

    def wrap(self, fn: Callable[..., object], name: str = "") -> Callable[..., object]:
        """Return ``fn`` with fault injection applied around each call."""
        target = name or getattr(fn, "__name__", "callable")

        def chaotic(*args, **kwargs):
            index = self.calls
            self.calls += 1
            if self.spec.exception_rate and self.rng.random() < self.spec.exception_rate:
                self._inject(index, "exception", target)
                raise FaultInjectedError(
                    f"injected transient failure in {target} (call {index})"
                )
            if self.spec.latency_rate and self.rng.random() < self.spec.latency_rate:
                self._inject(index, "latency", target)
                if self.spec.latency_s > 0:
                    self._sleep(self.spec.latency_s)
                if self.budget is not None and self.spec.budget_burn:
                    # charge without raising mid-call; the wrapped code's
                    # own cooperative checks will observe the exhaustion
                    self.budget.charge(self.spec.budget_burn)
            value = fn(*args, **kwargs)
            if self.spec.nan_rate and self.rng.random() < self.spec.nan_rate:
                self._inject(index, "nan", target)
                value = corrupt_with_nan(value, self.rng)
            return value

        chaotic.__name__ = f"chaotic_{target}"
        return chaotic

    def kinds(self) -> List[str]:
        """Injection kinds in order, for compact assertions."""
        return [e.kind for e in self.events]

    def stats(self) -> dict:
        """Aggregate view of everything this monkey has done."""
        by_kind: dict = {}
        by_target: dict = {}
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            by_target[event.target] = by_target.get(event.target, 0) + 1
        return {
            "calls": self.calls,
            "injections": len(self.events),
            "by_kind": by_kind,
            "by_target": by_target,
        }

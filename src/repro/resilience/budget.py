"""Cooperative wall-clock and iteration budgets.

The paper's ladder of verifiers and relaxations (§II-B-2) is a cost/
completeness trade-off: the exact rung is allowed *some* time, not
unlimited time.  A :class:`Budget` makes that contract explicit — it is
threaded into solver loops, which call :meth:`Budget.spend` once per
iteration; when either the wall-clock deadline or the iteration budget
runs out the solver raises :class:`BudgetExceededError` and the
resilience runtime degrades to a cheaper rung instead of hanging.

The clock is injectable so tests can drive deadlines deterministically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import BudgetExceededError, ConfigurationError

__all__ = ["Budget", "BudgetReport"]


@dataclass(frozen=True)
class BudgetReport:
    """Snapshot of what a budget has consumed — attached to resilient
    results so callers can see what their answer cost."""

    wall_clock_s: float
    iterations: int
    wall_clock_limit_s: float
    iteration_limit: int
    exhausted: bool

    def to_dict(self) -> dict:
        return {
            "wall_clock_s": self.wall_clock_s,
            "iterations": self.iterations,
            "wall_clock_limit_s": self.wall_clock_limit_s,
            "iteration_limit": self.iteration_limit,
            "exhausted": self.exhausted,
        }


class Budget:
    """A cooperative deadline: wall-clock seconds and/or iterations.

    Parameters
    ----------
    wall_clock_s:
        Wall-clock allowance in seconds (``inf`` = unlimited).
    iterations:
        Iteration allowance across *all* work charged to this budget
        (``None`` = unlimited).
    clock:
        Monotonic time source; injectable for deterministic tests.

    A budget starts counting at construction.  Solvers charge it with
    :meth:`spend` (which raises on exhaustion) or poll :meth:`check`;
    orchestration code uses :attr:`expired` for non-raising queries.
    """

    def __init__(
        self,
        wall_clock_s: float = math.inf,
        iterations: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if wall_clock_s <= 0:
            raise ConfigurationError("wall_clock_s must be positive")
        if iterations is not None and iterations <= 0:
            raise ConfigurationError("iteration budget must be positive")
        self.wall_clock_s = float(wall_clock_s)
        self.iteration_limit = math.inf if iterations is None else int(iterations)
        self._clock = clock
        self._start = clock()
        self._iterations = 0

    # ---- accounting ----------------------------------------------------------
    @property
    def clock(self) -> Callable[[], float]:
        """The injectable monotonic time source — shared with callers
        (e.g. the ladder's per-rung timing) so one fake clock drives a
        whole deterministic test."""
        return self._clock

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    @property
    def iterations_used(self) -> int:
        return self._iterations

    @property
    def remaining_time(self) -> float:
        return max(0.0, self.wall_clock_s - self.elapsed)

    @property
    def remaining_iterations(self) -> float:
        return max(0, self.iteration_limit - self._iterations)

    @property
    def expired(self) -> bool:
        return self.remaining_time <= 0.0 or self.remaining_iterations <= 0

    # ---- cooperative checkpoints ---------------------------------------------
    def spend(self, iterations: int = 1, context: str = "") -> None:
        """:meth:`check` the budget, then charge *iterations* to it.

        Checking first makes the allowance exact: a budget of N
        iterations permits exactly N unit spends; the (N+1)-th raises.
        """
        self.check(context)
        self._iterations += int(iterations)

    def charge(self, iterations: int = 1) -> None:
        """Charge *iterations* without raising — for external accounting
        (e.g. the chaos harness burning budget); the next cooperative
        :meth:`check` observes the exhaustion."""
        self._iterations += int(iterations)

    def check(self, context: str = "") -> None:
        """Raise :class:`BudgetExceededError` if the budget is spent."""
        if self.remaining_iterations <= 0:
            raise BudgetExceededError(
                f"iteration budget of {self.iteration_limit} exhausted"
                + (f" during {context}" if context else ""),
                elapsed=self.elapsed,
                iterations=self._iterations,
            )
        if self.remaining_time <= 0.0:
            raise BudgetExceededError(
                f"deadline of {self.wall_clock_s:.3g}s exceeded"
                + (f" during {context}" if context else ""),
                elapsed=self.elapsed,
                iterations=self._iterations,
            )

    # ---- reporting -----------------------------------------------------------
    def report(self) -> BudgetReport:
        return BudgetReport(
            wall_clock_s=self.elapsed,
            iterations=self._iterations,
            wall_clock_limit_s=self.wall_clock_s,
            iteration_limit=(-1 if self.iteration_limit is math.inf
                             else int(self.iteration_limit)),
            exhausted=self.expired,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Budget(elapsed={self.elapsed:.3g}/{self.wall_clock_s:.3g}s, "
                f"iterations={self._iterations}/{self.iteration_limit})")

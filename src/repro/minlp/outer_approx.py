"""Outer approximation for convex MINLP (here: convex MIQP).

Outer approximation alternates between (1) an NLP subproblem with the
integer variables fixed, and (2) a MILP master assembled from gradient
cuts of the nonlinear objective at every NLP solution seen so far.  For
convex problems the master's optimum is a valid lower bound and the loop
converges finitely — the textbook alternative to BnB that the paper's
"hybridizing local and global optimization algorithms" points at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InfeasibleError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.convex.qp import solve_qp
from repro.minlp.milp import solve_milp
from repro.minlp.model import MILPModel, MIQPModel

__all__ = ["OAResult", "solve_outer_approximation"]


@dataclass(frozen=True)
class OAResult:
    """Outer-approximation outcome."""

    x: np.ndarray | None
    objective: float
    lower_bound: float
    major_iterations: int
    converged: bool

    @property
    def gap(self) -> float:
        if self.x is None:
            return float("inf")
        return self.objective - self.lower_bound


def _nlp_subproblem(model: MIQPModel, x_int: np.ndarray) -> tuple[np.ndarray, float] | None:
    """Solve the continuous QP with integer coordinates fixed to x_int."""
    n = model.dim
    lo = model.lo.copy()
    hi = model.hi.copy()
    for i in model.integer_indices:
        lo[i] = hi[i] = x_int[i]
    relaxed = model.relaxation(lo, hi)
    sol = solve_qp(relaxed)
    if not sol.converged:
        ineq, eq = relaxed.residuals(sol.x)
        if ineq > 1e-5 or eq > 1e-5:
            return None
    x = sol.x.copy()
    for i in model.integer_indices:
        x[i] = x_int[i]
    return x, model.objective_value(x)


def solve_outer_approximation(
    model: MIQPModel,
    max_major: int = 30,
    gap_tol: float = 1e-6,
    milp_max_nodes: int = 5000,
) -> OAResult:
    """Outer approximation for a convex :class:`MIQPModel`.

    The master MILP works in the epigraph variable ``eta`` plus the
    original ``x``; each major iteration adds the gradient cut
    ``eta >= f(x_k) + grad f(x_k)^T (x - x_k)``.
    """
    n = model.dim
    for i in model.integer_indices:
        if not (np.isfinite(model.lo[i]) and np.isfinite(model.hi[i])):
            raise InfeasibleError(f"integer variable {i} needs finite bounds")

    # initial linearization point: continuous relaxation optimum; its
    # objective is a valid global lower bound for eta
    relaxed = model.relaxation(model.lo, model.hi)
    base = solve_qp(relaxed)
    cut_points: list[np.ndarray] = [base.x]
    best_x: np.ndarray | None = None
    best_obj = np.inf
    lower = base.objective

    # seed an incumbent by rounding the relaxation optimum, so the
    # epigraph variable has a finite, well-scaled upper bound
    seed_int = base.x.copy()
    for i in model.integer_indices:
        seed_int[i] = np.clip(round(seed_int[i]), model.lo[i], model.hi[i])
    seeded = _nlp_subproblem(model, seed_int)
    if seeded is not None:
        x_seed, obj_seed = seeded
        cut_points.append(x_seed)
        if model.is_feasible(x_seed):
            best_obj = obj_seed
            best_x = x_seed

    for major in range(1, max_major + 1):
        # master MILP in (x, eta)
        cut_rows = []
        cut_rhs = []
        for xk in cut_points:
            grad = model.qp.objective.gradient(xk)
            fk = model.qp.objective.value(xk)
            # f_k + g^T (x - x_k) <= eta  ->  g^T x - eta <= g^T x_k - f_k
            row = np.concatenate([grad, [-1.0]])
            cut_rows.append(row)
            cut_rhs.append(float(grad @ xk - fk))
        g_rows = [np.asarray(cut_rows)]
        h_parts = [np.asarray(cut_rhs)]
        if model.qp.g is not None:
            g_rows.append(np.hstack([model.qp.g, np.zeros((model.qp.g.shape[0], 1))]))
            h_parts.append(model.qp.h)
        a_ext = None
        b_ext = None
        if model.qp.a is not None:
            a_ext = np.hstack([model.qp.a, np.zeros((model.qp.a.shape[0], 1))])
            b_ext = model.qp.b
        scale = max(1.0, abs(lower), abs(best_obj) if np.isfinite(best_obj) else 1.0)
        eta_lo = lower - 1e-6 * scale
        eta_hi = (best_obj if np.isfinite(best_obj) else lower + 1e3 * scale) + 1e-6 * scale
        lp = LPProblem(
            c=np.concatenate([np.zeros(n), [1.0]]),
            g=np.vstack(g_rows),
            h=np.concatenate(h_parts),
            a=a_ext,
            b=b_ext,
            lo=np.concatenate([model.lo, [eta_lo]]),
            hi=np.concatenate([model.hi, [eta_hi]]),
        )
        master = MILPModel(lp, frozenset(model.integer_indices))
        try:
            master_res = solve_milp(master, max_nodes=milp_max_nodes)
        except InfeasibleError:
            break
        if master_res.x is None:
            break
        lower = max(lower, master_res.objective)
        x_int = np.array([round(master_res.x[i]) for i in range(n)])
        x_int_fixed = master_res.x.copy()
        for i in model.integer_indices:
            x_int_fixed[i] = round(x_int_fixed[i])
        sub = _nlp_subproblem(model, x_int_fixed)
        if sub is not None:
            x_sub, obj_sub = sub
            cut_points.append(x_sub)
            if model.is_feasible(x_sub) and obj_sub < best_obj:
                best_obj = obj_sub
                best_x = x_sub
        else:
            # integer assignment infeasible: cut it off via a no-good bound
            cut_points.append(x_int_fixed)
        if best_obj - lower <= gap_tol:
            return OAResult(best_x, best_obj, lower, major, True)
    return OAResult(best_x, best_obj, lower, max_major, best_obj - lower <= gap_tol)

"""MILP and convex-MIQP solvers built on the branch-and-bound engine."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.convex.qp import solve_qp
from repro.minlp.branch_and_bound import BnBResult, branch_and_bound
from repro.minlp.model import MILPModel, MIQPModel

__all__ = ["solve_milp", "solve_miqp"]


def solve_milp(
    model: MILPModel,
    max_nodes: int = 20000,
    gap_tol: float = 1e-6,
    time_limit: float = float("inf"),
    use_root_heuristic: bool = True,
) -> BnBResult:
    """Exact MILP solve: best-first BnB with LP-relaxation bounding.

    ``use_root_heuristic`` runs rounding-repair on the root relaxation to
    seed the incumbent — the hybrid local/global bounding §II-B endorses.
    """

    def bound(lo: np.ndarray, hi: np.ndarray) -> tuple[float, np.ndarray]:
        if np.any(lo > hi + 1e-12):
            raise InfeasibleError("empty node box")
        relaxed = model.relaxation(extra_lo=lo, extra_hi=hi)
        sol = solve_lp(relaxed)
        return sol.objective, sol.x

    initial = None
    if use_root_heuristic and model.integer_indices:
        from repro.minlp.heuristics import round_and_repair

        try:
            root = solve_lp(model.relaxation())
            initial = round_and_repair(model, root.x)
        except InfeasibleError:
            initial = None

    return branch_and_bound(
        bound_fn=bound,
        objective_fn=model.objective_value,
        feasible_fn=model.is_feasible,
        lo=model.lp.lo,
        hi=model.lp.hi,
        integer_indices=model.integer_indices,
        max_nodes=max_nodes,
        gap_tol=gap_tol,
        time_limit=time_limit,
        initial_incumbent=initial,
    )


def solve_miqp(
    model: MIQPModel,
    max_nodes: int = 20000,
    gap_tol: float = 1e-6,
    time_limit: float = float("inf"),
) -> BnBResult:
    """Exact convex-MIQP solve: BnB with convex-QP bounding.

    The per-node relaxation is the model's convex QP on the node box —
    the "mixed-integer convex relaxations" bounding step of §II-B.
    """

    def bound(lo: np.ndarray, hi: np.ndarray) -> tuple[float, np.ndarray]:
        if np.any(lo > hi + 1e-12):
            raise InfeasibleError("empty node box")
        relaxed = model.relaxation(lo, hi)
        sol = solve_qp(relaxed)
        if not sol.converged:
            ineq, eq = relaxed.residuals(sol.x)
            if ineq > 1e-4 or eq > 1e-4:
                raise InfeasibleError("node QP did not reach feasibility")
        return sol.objective, sol.x

    # finite root box is required for branching on integers
    lo = model.lo.copy()
    hi = model.hi.copy()
    for i in model.integer_indices:
        if not np.isfinite(lo[i]) or not np.isfinite(hi[i]):
            raise InfeasibleError(
                f"integer variable {i} needs finite bounds for branch-and-bound"
            )
    return branch_and_bound(
        bound_fn=bound,
        objective_fn=model.objective_value,
        feasible_fn=model.is_feasible,
        lo=lo,
        hi=hi,
        integer_indices=model.integer_indices,
        max_nodes=max_nodes,
        gap_tol=gap_tol,
        time_limit=time_limit,
    )

"""Generic best-first branch-and-bound over box-branchable relaxations.

This is the "exact verifier" engine of the paper's §II-B-2: "exact
verifiers are not beset by false positives or false negatives, but they
must contend with resolving NP-hard optimization problems".  The engine
is parameterized by a bounding oracle so the same code drives MILP
(LP bounding), convex MIQP (QP bounding), and the exact NN robustness
verifier (LP bounding over ReLU activation boxes).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.exceptions import InfeasibleError, UnboundedError

__all__ = ["BnBResult", "BnBNode", "branch_and_bound", "most_fractional_index"]

# bounding oracle: (lo, hi) -> (bound_value, relaxed_solution) or raises
# InfeasibleError when the node region is empty.
BoundFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


@dataclass(order=True)
class BnBNode:
    """A search node: a box with its parent relaxation bound as priority."""

    bound: float
    counter: int = field(compare=True)
    lo: np.ndarray = field(compare=False, default=None)
    hi: np.ndarray = field(compare=False, default=None)
    depth: int = field(compare=False, default=0)


@dataclass(frozen=True)
class BnBResult:
    """Branch-and-bound outcome with optimality-gap accounting."""

    x: Optional[np.ndarray]
    objective: float
    lower_bound: float
    nodes_explored: int
    nodes_pruned: int
    converged: bool
    wall_time: float

    @property
    def gap(self) -> float:
        if self.x is None or not np.isfinite(self.objective):
            return float("inf")
        return self.objective - self.lower_bound


def most_fractional_index(x: np.ndarray, integer_indices: FrozenSet[int], tol: float = 1e-6) -> int | None:
    """Branching rule: the integer coordinate farthest from integrality."""
    best_i, best_frac = None, tol
    for i in sorted(integer_indices):
        frac = abs(x[i] - round(x[i]))
        # distance from nearest integer, maximized at 0.5
        if frac > best_frac:
            best_frac = frac
            best_i = i
    return best_i


def branch_and_bound(
    bound_fn: BoundFn,
    objective_fn: Callable[[np.ndarray], float],
    feasible_fn: Callable[[np.ndarray], bool],
    lo: np.ndarray,
    hi: np.ndarray,
    integer_indices: FrozenSet[int],
    max_nodes: int = 20000,
    gap_tol: float = 1e-6,
    time_limit: float = float("inf"),
    incumbent_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], Optional[np.ndarray]] | None = None,
    initial_incumbent: Optional[np.ndarray] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> BnBResult:
    """Best-first branch and bound for minimization.

    Parameters
    ----------
    bound_fn:
        Relaxation oracle returning ``(lower_bound, x_relaxed)`` for a box.
    objective_fn / feasible_fn:
        Evaluate and accept candidate incumbents.
    lo, hi:
        Root box (integer coordinates are branched, continuous ones kept).
    incumbent_fn:
        Optional primal heuristic invoked on each node's relaxed point
        ``(x_relaxed, node_lo, node_hi)``; returns a candidate or None.
        (The paper's "hybridizing local and global optimization
        algorithms ... for deriving valid bounds".)
    """
    start = clock()
    lo = np.asarray(lo, dtype=np.float64).copy()
    hi = np.asarray(hi, dtype=np.float64).copy()
    counter = itertools.count()

    best_x: Optional[np.ndarray] = None
    best_obj = np.inf
    explored = 0
    pruned = 0

    try:
        root_bound, root_x = bound_fn(lo, hi)
    except InfeasibleError:
        return BnBResult(None, np.inf, np.inf, 0, 0, True, clock() - start)

    heap: list[BnBNode] = [BnBNode(root_bound, next(counter), lo, hi, 0)]
    global_lower = root_bound

    def try_incumbent(x: Optional[np.ndarray]) -> None:
        nonlocal best_x, best_obj
        if x is None:
            return
        x = np.asarray(x, dtype=np.float64)
        if feasible_fn(x):
            obj = objective_fn(x)
            if obj < best_obj:
                best_obj = obj
                best_x = x.copy()

    if initial_incumbent is not None:
        try_incumbent(initial_incumbent)

    while heap:
        if explored >= max_nodes or clock() - start > time_limit:
            global_lower = heap[0].bound if heap else global_lower
            return BnBResult(
                best_x, best_obj, min(global_lower, best_obj), explored, pruned,
                False, clock() - start,
            )
        node = heapq.heappop(heap)
        global_lower = node.bound
        if node.bound >= best_obj - gap_tol:
            pruned += 1
            continue
        explored += 1
        try:
            bound, x_rel = bound_fn(node.lo, node.hi)
        except InfeasibleError:
            pruned += 1
            continue
        if bound >= best_obj - gap_tol:
            pruned += 1
            continue
        # integral relaxed point -> incumbent and exact bound for the node
        branch_i = most_fractional_index(x_rel, integer_indices)
        if branch_i is None:
            snapped = x_rel.copy()
            for i in integer_indices:
                snapped[i] = round(snapped[i])
            try_incumbent(snapped)
            continue
        # primal heuristic
        if incumbent_fn is not None:
            try_incumbent(incumbent_fn(x_rel, node.lo, node.hi))
        else:
            snapped = x_rel.copy()
            for i in integer_indices:
                snapped[i] = round(snapped[i])
            try_incumbent(snapped)
        # branch
        val = x_rel[branch_i]
        left_hi = node.hi.copy()
        left_hi[branch_i] = np.floor(val)
        right_lo = node.lo.copy()
        right_lo[branch_i] = np.ceil(val)
        if left_hi[branch_i] >= node.lo[branch_i] - 1e-12:
            heapq.heappush(heap, BnBNode(bound, next(counter), node.lo.copy(), left_hi, node.depth + 1))
        if right_lo[branch_i] <= node.hi[branch_i] + 1e-12:
            heapq.heappush(heap, BnBNode(bound, next(counter), right_lo, node.hi.copy(), node.depth + 1))

    final_lower = best_obj if best_x is not None else np.inf
    return BnBResult(
        best_x, best_obj, final_lower, explored, pruned, True, clock() - start
    )

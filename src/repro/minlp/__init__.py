"""Mixed-integer (non)linear programming: models, branch-and-bound,
MILP/MIQP solvers, outer approximation, and primal heuristics."""

from repro.minlp.branch_and_bound import (
    BnBNode,
    BnBResult,
    branch_and_bound,
    most_fractional_index,
)
from repro.minlp.heuristics import diving_heuristic, feasibility_pump, round_and_repair
from repro.minlp.milp import solve_milp, solve_miqp
from repro.minlp.model import MILPModel, MIQPModel, integrality_violation, is_integral
from repro.minlp.outer_approx import OAResult, solve_outer_approximation
from repro.minlp.spatial import SpatialResult, spatial_minimize_quadratic

__all__ = [
    "BnBNode",
    "BnBResult",
    "MILPModel",
    "MIQPModel",
    "OAResult",
    "SpatialResult",
    "branch_and_bound",
    "diving_heuristic",
    "feasibility_pump",
    "integrality_violation",
    "is_integral",
    "most_fractional_index",
    "round_and_repair",
    "solve_milp",
    "solve_miqp",
    "solve_outer_approximation",
    "spatial_minimize_quadratic",
]

"""Primal heuristics for mixed-integer models.

These provide fast *incumbents* — the upper-bound half of the paper's
bound-tightening story — and double as the "relaxation + rounding"
baseline the QOS benchmark compares against the exact BnB and PSO.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.minlp.model import MILPModel, is_integral

__all__ = ["round_and_repair", "feasibility_pump", "diving_heuristic"]


def round_and_repair(model: MILPModel, x_relaxed: np.ndarray, max_repair: int = 50) -> np.ndarray | None:
    """Round the integer coordinates of an LP-relaxed point, then re-solve
    the LP over the continuous coordinates with integers fixed.

    Tries nearest-rounding first, then floor-rounding (which can only
    reduce resource usage in <=-constrained models).  Returns the best
    feasible point found, or None.
    """
    x_relaxed = np.asarray(x_relaxed, dtype=np.float64)
    best: np.ndarray | None = None
    best_obj = np.inf
    for rounder in (np.round, np.floor):
        x = x_relaxed.copy()
        for i in model.integer_indices:
            x[i] = rounder(x[i])
        x = np.clip(x, model.lp.lo, model.lp.hi)
        candidate: np.ndarray | None = None
        if model.is_feasible(x):
            candidate = x
        else:
            # fix integers, re-optimize continuous part
            lo = model.lp.lo.copy()
            hi = model.lp.hi.copy()
            for i in model.integer_indices:
                lo[i] = hi[i] = x[i]
            try:
                sol = solve_lp(LPProblem(c=model.lp.c, g=model.lp.g, h=model.lp.h,
                                         a=model.lp.a, b=model.lp.b, lo=lo, hi=hi))
                if model.is_feasible(sol.x):
                    candidate = sol.x
            except InfeasibleError:
                candidate = None
        if candidate is not None:
            obj = model.objective_value(candidate)
            if obj < best_obj:
                best, best_obj = candidate, obj
    return best


def feasibility_pump(model: MILPModel, max_rounds: int = 60, rng: np.random.Generator | None = None) -> np.ndarray | None:
    """Classic feasibility pump: alternate LP projection and rounding,
    perturbing on cycles.  Returns a feasible point or None."""
    rng = rng or np.random.default_rng(0)
    try:
        sol = solve_lp(model.lp)
    except InfeasibleError:
        return None
    x_lp = sol.x
    idx = sorted(model.integer_indices)
    if not idx:
        return x_lp if model.is_feasible(x_lp) else None
    x_int = x_lp.copy()
    x_int[idx] = np.round(x_int[idx])
    seen: set[tuple] = set()
    for _ in range(max_rounds):
        if model.is_feasible(x_int):
            return x_int
        key = tuple(np.round(x_int[idx]).astype(int))
        if key in seen:
            # cycle: flip a few random integer coordinates
            flips = rng.choice(len(idx), size=max(1, len(idx) // 5), replace=False)
            for f in flips:
                i = idx[f]
                x_int[i] = np.clip(x_int[i] + rng.choice([-1.0, 1.0]), model.lp.lo[i], model.lp.hi[i])
            key = tuple(np.round(x_int[idx]).astype(int))
        seen.add(key)
        # LP projection: minimize L1 distance of integer coords to x_int
        # via objective substitution c_proj = sign trick on a fresh LP
        n = model.dim
        c_proj = np.zeros(n)
        for i in idx:
            # piecewise-linear |x_i - round| approximated by its gradient
            # direction at the current LP point
            c_proj[i] = -1.0 if x_int[i] > 0.5 * (model.lp.lo[i] + model.lp.hi[i]) else 1.0
        try:
            sol = solve_lp(LPProblem(c=c_proj, g=model.lp.g, h=model.lp.h,
                                     a=model.lp.a, b=model.lp.b, lo=model.lp.lo, hi=model.lp.hi))
        except InfeasibleError:
            return None
        x_lp = sol.x
        x_int = x_lp.copy()
        x_int[idx] = np.round(x_int[idx])
    return x_int if model.is_feasible(x_int) else None


def diving_heuristic(model: MILPModel, max_depth: int | None = None) -> np.ndarray | None:
    """Depth-first dive: repeatedly solve the LP relaxation and fix the
    most-integral fractional variable to its nearest integer."""
    lo = model.lp.lo.copy()
    hi = model.lp.hi.copy()
    depth_budget = max_depth if max_depth is not None else 2 * len(model.integer_indices) + 4
    for _ in range(depth_budget):
        try:
            sol = solve_lp(LPProblem(c=model.lp.c, g=model.lp.g, h=model.lp.h,
                                     a=model.lp.a, b=model.lp.b, lo=lo, hi=hi))
        except InfeasibleError:
            return None
        x = sol.x
        if is_integral(x, model.integer_indices):
            snapped = x.copy()
            for i in model.integer_indices:
                snapped[i] = np.round(snapped[i])
            return snapped if model.is_feasible(snapped) else None
        # most integral fractional variable (smallest fractionality > tol)
        best_i, best_frac = None, np.inf
        for i in sorted(model.integer_indices):
            frac = abs(x[i] - round(x[i]))
            if 1e-6 < frac < best_frac:
                best_frac = frac
                best_i = i
        if best_i is None:
            return None
        lo[best_i] = hi[best_i] = np.round(x[best_i])
    return None

"""Mixed-integer model descriptions.

The paper frames the 5G QoS problems as MINLPs: "optimally assigning
frequency-time blocks (integer variables) to a number of served
connections while simultaneously determining the appropriate transmit
powers (continuous variables)".  Two concrete classes cover everything
this library generates:

* :class:`MILPModel` — linear objective/constraints with integer vars
  (the relaxed-verifier class, and the QoS RRA after linearization);
* :class:`MIQPModel` — convex quadratic objective with linear
  constraints and integer vars (the convex-MINLP class handed to
  branch-and-bound with QP bounding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError
from repro.convex.problem import LPProblem, QPProblem, QuadraticForm

__all__ = ["MILPModel", "MIQPModel", "integrality_violation", "is_integral"]


def integrality_violation(x: np.ndarray, integer_indices: FrozenSet[int]) -> float:
    """Max distance of the integer-constrained coordinates from Z."""
    if not integer_indices:
        return 0.0
    idx = sorted(integer_indices)
    vals = np.asarray(x, dtype=np.float64)[idx]
    return float(np.max(np.abs(vals - np.round(vals)), initial=0.0))


def is_integral(x: np.ndarray, integer_indices: FrozenSet[int], tol: float = 1e-6) -> bool:
    return integrality_violation(x, integer_indices) <= tol


@dataclass(frozen=True)
class MILPModel:
    """``min c^T x`` s.t. ``G x <= h``, ``A x = b``, bounds, ``x_I`` integer."""

    lp: LPProblem
    integer_indices: FrozenSet[int] = frozenset()

    def __post_init__(self):
        n = self.lp.dim
        bad = [i for i in self.integer_indices if not 0 <= i < n]
        if bad:
            raise DimensionError(f"integer indices {bad} out of range for dim {n}")
        object.__setattr__(self, "integer_indices", frozenset(self.integer_indices))

    @property
    def dim(self) -> int:
        return self.lp.dim

    def objective_value(self, x: np.ndarray) -> float:
        return float(self.lp.c @ np.asarray(x, dtype=np.float64))

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        x = np.asarray(x, dtype=np.float64).ravel()
        if self.lp.g is not None and np.max(self.lp.g @ x - self.lp.h, initial=-np.inf) > tol:
            return False
        if self.lp.a is not None and np.max(np.abs(self.lp.a @ x - self.lp.b), initial=0.0) > tol:
            return False
        if np.any(x < self.lp.lo - tol) or np.any(x > self.lp.hi + tol):
            return False
        return is_integral(x, self.integer_indices, tol)

    def relaxation(self, extra_lo: np.ndarray | None = None, extra_hi: np.ndarray | None = None) -> LPProblem:
        """Continuous relaxation, optionally with tightened bounds (the
        per-node boxes produced by branching)."""
        lo = self.lp.lo if extra_lo is None else np.maximum(self.lp.lo, extra_lo)
        hi = self.lp.hi if extra_hi is None else np.minimum(self.lp.hi, extra_hi)
        return LPProblem(c=self.lp.c, g=self.lp.g, h=self.lp.h, a=self.lp.a, b=self.lp.b, lo=lo, hi=hi)


@dataclass(frozen=True)
class MIQPModel:
    """Convex quadratic objective over linear constraints with integer vars."""

    qp: QPProblem
    integer_indices: FrozenSet[int] = frozenset()
    lo: Optional[np.ndarray] = None
    hi: Optional[np.ndarray] = None

    def __post_init__(self):
        n = self.qp.dim
        if not self.qp.is_convex():
            raise ConfigurationError(
                "MIQPModel requires a convex quadratic objective; relax the "
                "Hessian first (e.g. via its convex envelope)"
            )
        bad = [i for i in self.integer_indices if not 0 <= i < n]
        if bad:
            raise DimensionError(f"integer indices {bad} out of range for dim {n}")
        lo = np.full(n, -np.inf) if self.lo is None else np.asarray(self.lo, dtype=np.float64).ravel()
        hi = np.full(n, np.inf) if self.hi is None else np.asarray(self.hi, dtype=np.float64).ravel()
        if lo.size != n or hi.size != n:
            raise DimensionError("bound arrays must match model dimension")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "integer_indices", frozenset(self.integer_indices))

    @property
    def dim(self) -> int:
        return self.qp.dim

    def objective_value(self, x: np.ndarray) -> float:
        return self.qp.objective.value(x)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        x = np.asarray(x, dtype=np.float64).ravel()
        if not self.qp.is_feasible(x, tol):
            return False
        if np.any(x < self.lo - tol) or np.any(x > self.hi + tol):
            return False
        return is_integral(x, self.integer_indices, tol)

    def relaxation(self, extra_lo: np.ndarray, extra_hi: np.ndarray) -> QPProblem:
        """Continuous QP relaxation on the node box ``[extra_lo, extra_hi]``.

        The node box is encoded as additional inequality rows so the QP
        solver sees one uniform problem.
        """
        n = self.dim
        lo = np.maximum(self.lo, extra_lo)
        hi = np.minimum(self.hi, extra_hi)
        rows = []
        rhs = []
        if self.qp.g is not None:
            rows.append(self.qp.g)
            rhs.append(self.qp.h)
        finite_hi = np.isfinite(hi)
        if np.any(finite_hi):
            e = np.eye(n)[finite_hi]
            rows.append(e)
            rhs.append(hi[finite_hi])
        finite_lo = np.isfinite(lo)
        if np.any(finite_lo):
            e = -np.eye(n)[finite_lo]
            rows.append(e)
            rhs.append(-lo[finite_lo])
        g = np.vstack(rows) if rows else None
        h = np.concatenate(rhs) if rhs else None
        return QPProblem(self.qp.objective, g=g, h=h, a=self.qp.a, b=self.qp.b)

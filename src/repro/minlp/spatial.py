"""Spatial branch-and-bound for nonconvex (indefinite) quadratic programs.

§II-B: "the nonlinearities are typically replaced by convex
under-estimators and concave over-estimators" — this module is that
sentence as an algorithm.  For ``min 0.5 x^T Q x + q^T x`` with an
*indefinite* Q over a box, every bilinear/quadratic term is replaced by
its McCormick/secant envelope on the current box, giving an LP lower
bound; branching splits the box on the variable with the largest
envelope gap, and the bounds tighten as the boxes shrink ("the involved
bound tightening and global optimization algorithms" the ETH quote in
§II names).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.convex.lp import solve_lp
from repro.convex.problem import LPProblem
from repro.exceptions import InfeasibleError

__all__ = ["SpatialResult", "spatial_minimize_quadratic"]


@dataclass(frozen=True)
class SpatialResult:
    """Global optimization outcome with certified bound."""

    x: np.ndarray
    objective: float
    lower_bound: float
    nodes: int
    converged: bool
    wall_time: float

    @property
    def gap(self) -> float:
        return self.objective - self.lower_bound


def _node_lp(q_mat: np.ndarray, q_vec: np.ndarray, lo: np.ndarray, hi: np.ndarray):
    """McCormick LP relaxation on a box.

    Variables: ``[x (n), w (n*(n+1)/2)]`` where ``w_ij`` relaxes
    ``x_i x_j``.  Objective: ``sum_{i<=j} coeff_ij w_ij + q^T x`` with
    ``coeff_ii = Q_ii / 2`` and ``coeff_ij = Q_ij`` for i<j.
    Constraints: the four McCormick faces per off-diagonal term and the
    secant + tangent faces for the squares.
    """
    n = q_vec.size
    pairs = [(i, j) for i in range(n) for j in range(i, n)]
    n_w = len(pairs)
    total = n + n_w

    def w_index(i: int, j: int) -> int:
        return n + pairs.index((min(i, j), max(i, j)))

    c = np.zeros(total)
    c[:n] = q_vec
    for k, (i, j) in enumerate(pairs):
        c[n + k] = 0.5 * q_mat[i, i] if i == j else q_mat[i, j]

    g_rows: List[np.ndarray] = []
    h_vals: List[float] = []

    def add(row, rhs):
        g_rows.append(row)
        h_vals.append(rhs)

    for i, j in pairs:
        wi = w_index(i, j)
        xl, xu = lo[i], hi[i]
        yl, yu = lo[j], hi[j]
        if i == j:
            # w >= x^2: tangents at both endpoints and the midpoint
            for t in (xl, 0.5 * (xl + xu), xu):
                row = np.zeros(total)
                row[i] = 2.0 * t
                row[wi] = -1.0
                add(row, t * t)  # 2 t x - w <= t^2  <=>  w >= 2 t x - t^2
            # w <= secant
            row = np.zeros(total)
            row[wi] = 1.0
            row[i] = -(xl + xu)
            add(row, -xl * xu)  # w - (l+u) x <= -l u
        else:
            # McCormick under: w >= xl*y + yl*x - xl*yl ; w >= xu*y + yu*x - xu*yu
            for (a, b) in ((xl, yl), (xu, yu)):
                row = np.zeros(total)
                row[j] = a
                row[i] = b
                row[wi] = -1.0
                add(row, a * b)
            # McCormick over: w <= xu*y + yl*x - xu*yl ; w <= xl*y + yu*x - xl*yu
            for (a, b) in ((xu, yl), (xl, yu)):
                row = np.zeros(total)
                row[wi] = 1.0
                row[j] = -a
                row[i] = -b
                add(row, -a * b)

    lo_full = np.concatenate([lo, np.full(n_w, -np.inf)])
    hi_full = np.concatenate([hi, np.full(n_w, np.inf)])
    # bound the w variables by interval arithmetic for LP boundedness
    for k, (i, j) in enumerate(pairs):
        prods = [lo[i] * lo[j], lo[i] * hi[j], hi[i] * lo[j], hi[i] * hi[j]]
        lo_full[n + k] = min(prods)
        hi_full[n + k] = max(prods)
    return LPProblem(c=c, g=np.asarray(g_rows), h=np.asarray(h_vals),
                     lo=lo_full, hi=hi_full), pairs


def spatial_minimize_quadratic(
    q_mat: np.ndarray,
    q_vec: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    max_nodes: int = 2000,
    gap_tol: float = 1e-5,
    time_limit: float = float("inf"),
    clock: Callable[[], float] = time.perf_counter,
) -> SpatialResult:
    """Globally minimize ``0.5 x^T Q x + q^T x`` over a box, Q indefinite.

    Best-first spatial branch-and-bound with McCormick-relaxed LP lower
    bounds; incumbents come from evaluating the true objective at the
    relaxation solutions.
    """
    q_mat = 0.5 * (np.asarray(q_mat, dtype=np.float64)
                   + np.asarray(q_mat, dtype=np.float64).T)
    q_vec = np.asarray(q_vec, dtype=np.float64).ravel()
    lo = np.asarray(lo, dtype=np.float64).ravel().copy()
    hi = np.asarray(hi, dtype=np.float64).ravel().copy()
    n = q_vec.size
    if q_mat.shape != (n, n) or lo.size != n or hi.size != n:
        raise ConfigurationError("inconsistent problem dimensions")
    if np.any(lo > hi) or not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
        raise ConfigurationError("spatial BnB needs a finite, nonempty box")

    def objective(x: np.ndarray) -> float:
        return float(0.5 * x @ q_mat @ x + q_vec @ x)

    start = clock()
    counter = itertools.count()
    best_x = 0.5 * (lo + hi)
    best_val = objective(best_x)
    # corners are cheap and often optimal for indefinite quadratics
    if n <= 10:
        for bits in itertools.product((0, 1), repeat=n):
            corner = np.where(np.array(bits, dtype=bool), hi, lo)
            v = objective(corner)
            if v < best_val:
                best_val, best_x = v, corner.copy()

    heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
    lp, pairs = _node_lp(q_mat, q_vec, lo, hi)
    try:
        sol = solve_lp(lp)
    except InfeasibleError:
        return SpatialResult(best_x, best_val, best_val, 0, True,
                             clock() - start)
    heapq.heappush(heap, (sol.objective, next(counter), lo, hi))
    nodes = 0
    global_lower = sol.objective

    while heap:
        if nodes >= max_nodes or clock() - start > time_limit:
            return SpatialResult(best_x, best_val, min(global_lower, best_val),
                                 nodes, False, clock() - start)
        bound, _, node_lo, node_hi = heapq.heappop(heap)
        global_lower = bound
        if bound >= best_val - gap_tol:
            return SpatialResult(best_x, best_val, min(bound, best_val), nodes,
                                 True, clock() - start)
        nodes += 1
        lp, pairs = _node_lp(q_mat, q_vec, node_lo, node_hi)
        try:
            sol = solve_lp(lp)
        except InfeasibleError:
            continue
        x_rel = np.clip(sol.x[:n], node_lo, node_hi)
        val = objective(x_rel)
        if val < best_val:
            best_val, best_x = val, x_rel.copy()
        if sol.objective >= best_val - gap_tol:
            continue
        # branch on the variable whose relaxation error is largest
        w_rel = sol.x[n:]
        errors = np.zeros(n)
        for k, (i, j) in enumerate(pairs):
            err = abs(w_rel[k] - x_rel[i] * x_rel[j])
            errors[i] += err
            if i != j:
                errors[j] += err
        widths = node_hi - node_lo
        errors = errors * (widths > 1e-9)
        branch_i = int(np.argmax(errors * widths))
        if widths[branch_i] <= 1e-9:
            continue
        mid = float(np.clip(x_rel[branch_i], node_lo[branch_i] + 0.2 * widths[branch_i],
                            node_hi[branch_i] - 0.2 * widths[branch_i]))
        left_hi = node_hi.copy()
        left_hi[branch_i] = mid
        right_lo = node_lo.copy()
        right_lo[branch_i] = mid
        heapq.heappush(heap, (sol.objective, next(counter), node_lo.copy(), left_hi))
        heapq.heappush(heap, (sol.objective, next(counter), right_lo, node_hi.copy()))

    return SpatialResult(best_x, best_val, best_val, nodes, True,
                         clock() - start)

#!/usr/bin/env bash
# Repo lint gate: ruff (when available) + both numlint analyzer tiers —
# the per-file expression rules (NL···) and the interprocedural flow
# rules (DT···/RD···).  Exits non-zero on any finding.
#
# Usage, from the repo root:
#   tools/lint.sh                 # full gate: src benchmarks tools
#   tools/lint.sh --changed-only  # only files touched vs HEAD (fast loop)
#
# --changed-only scopes *ruff* and the *expression* tier to the changed
# files; the flow tier always sees the full gate scope, because its
# rules are interprocedural — an edit in one module can create a DT/RD
# finding in another (a new call edge reaches an unseeded RNG), so a
# diff-scoped flow pass would miss exactly the regressions it exists to
# catch.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

changed_only=0
for arg in "$@"; do
    case "$arg" in
        --changed-only) changed_only=1 ;;
        *) echo "usage: tools/lint.sh [--changed-only]" >&2; exit 2 ;;
    esac
done

status=0
scope=(src benchmarks tools)

changed_files=()
if [ "$changed_only" -eq 1 ]; then
    # staged + unstaged + untracked python files under the gate scope
    while IFS= read -r f; do
        [ -f "$f" ] && changed_files+=("$f")
    done < <(
        {
            git diff --name-only --diff-filter=d HEAD -- \
                'src/*.py' 'benchmarks/*.py' 'tools/*.py' 'tests/*.py'
            git ls-files --others --exclude-standard -- \
                'src/*.py' 'benchmarks/*.py' 'tools/*.py' 'tests/*.py'
        } | sort -u
    )
    if [ "${#changed_files[@]}" -eq 0 ]; then
        echo "lint: no python files changed vs HEAD; nothing to do"
        exit 0
    fi
    echo "lint: ${#changed_files[@]} changed file(s)"
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    if [ "$changed_only" -eq 1 ]; then
        ruff check "${changed_files[@]}" || status=1
    else
        ruff check src tests || status=1
    fi
else
    echo "== ruff == (not installed; skipping — config lives in pyproject.toml)"
fi

echo "== numlint: expression tier =="
if [ "$changed_only" -eq 1 ]; then
    PYTHONPATH=src python -m repro.analysis --rule-family expression \
        "${changed_files[@]}" || status=1
else
    PYTHONPATH=src python -m repro.analysis --rule-family expression \
        "${scope[@]}" || status=1
fi

echo "== numlint: flow tier (always full scope — rules are interprocedural) =="
PYTHONPATH=src python -m repro.analysis --rule-family flow \
    "${scope[@]}" || status=1

exit "$status"

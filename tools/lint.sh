#!/usr/bin/env bash
# Repo lint gate: ruff (when available) + the numlint numerical-safety
# analyzer.  Exits non-zero on any finding; run from the repo root.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=1
else
    echo "== ruff == (not installed; skipping — config lives in pyproject.toml)"
fi

echo "== numlint =="
PYTHONPATH=src python -m repro.analysis src || status=1

exit "$status"

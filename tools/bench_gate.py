#!/usr/bin/env python
"""Kernel-benchmark regression gate.

Replays the workload of ``benchmarks/bench_kernels.py`` (via its pure
:func:`measure_kernels`) and compares each family's measured speedup
against the committed snapshot ``benchmarks/results/BENCH_kernels.json``.
The gate **fails** (exit 1) when any family's speedup drops more than
``--threshold`` (default 25%) below the committed value — the signal
that a kernel silently fell off its vectorized fast path.

Run from the repo root::

    PYTHONPATH=src python tools/bench_gate.py [--threshold 0.25]

The same check is importable as a ``perf``-marked pytest test
(``pytest -m perf benchmarks/ tools/``); it is never part of tier-1.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
SNAPSHOT = BENCH_DIR / "results" / "BENCH_kernels.json"
ANALYSIS_SNAPSHOT = BENCH_DIR / "results" / "BENCH_analysis.json"
SERVE_SNAPSHOT = BENCH_DIR / "results" / "BENCH_serve_soak.json"
OBS_SNAPSHOT = BENCH_DIR / "results" / "BENCH_obs_overhead.json"
SIGNAL_SNAPSHOT = BENCH_DIR / "results" / "BENCH_signal_streaming.json"
FIRSTORDER_SNAPSHOT = BENCH_DIR / "results" / "BENCH_firstorder.json"
DEFAULT_THRESHOLD = 0.25
#: streaming-DSP speedups (vs block oracles) may drop this fraction
#: below the committed value before the gate fails; same noise profile
#: as the kernel micro-benchmarks
SIGNAL_THRESHOLD = 0.3
#: analyzer wall time may grow this fraction above its committed value
#: before the gate fails (wall clocks are noisier than speedup ratios)
ANALYSIS_THRESHOLD = 0.5
#: serving-layer p99 simulated latency may grow this fraction above the
#: committed value; the measurement is deterministic (simulated time),
#: so the margin absorbs legitimate small calibration shifts, not noise
SERVE_THRESHOLD = 0.25
#: absolute slack on per-class shed rates (fractions in [0, 1])
SERVE_SHED_SLACK = 0.05
#: the first-order fast path's headline claim: batches of >= 256 small
#: solves answer at least this much faster than the per-problem rungs.
#: A hard floor, not a relative one — dropping under 5x means the batch
#: backend stopped paying for its certification machinery
FIRSTORDER_SPEEDUP_FLOOR = 5.0
#: families without a hard floor (warm-start ratio) may drop this
#: fraction below their committed speedup before the gate fails
FIRSTORDER_THRESHOLD = 0.3


def _load_bench_module(name: str = "bench_kernels"):
    """Import a ``benchmarks/*.py`` module by path.

    The benchmarks directory is not a package, and bench modules import
    their siblings (``_harness``, ``conftest``) by bare name, so it goes
    on ``sys.path`` first.
    """
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_regressions(threshold: float = DEFAULT_THRESHOLD,
                      retries: int = 2) -> list:
    """Measure current kernel speedups and diff against the snapshot.

    A family below its floor is re-measured up to ``retries`` times and
    judged on its best observation — wall-clock micro-benchmarks see
    ~20% scheduler noise, and a real fast-path regression fails every
    attempt while a noisy dip does not.  Returns a list of failure
    strings; empty means the gate passes.
    """
    committed = json.loads(SNAPSHOT.read_text())
    baseline = {row["family"]: row["speedup"] for row in committed["rows"]}

    module = _load_bench_module()
    current = {row["family"]: row["speedup"] for row in module.measure_kernels()}
    for attempt in range(retries):
        floors = {f: s * (1.0 - threshold) for f, s in baseline.items()}
        if all(current.get(f, 0.0) >= floors[f] for f in baseline):
            break
        print(f"(retry {attempt + 1}: re-measuring families below floor)")
        for row in module.measure_kernels():
            family = row["family"]
            current[family] = max(current.get(family, 0.0), row["speedup"])

    failures = []
    print(f"{'family':<24} {'committed':>10} {'current':>10} {'floor':>10}")
    for family, committed_speedup in baseline.items():
        floor = committed_speedup * (1.0 - threshold)
        measured = current.get(family)
        if measured is None:
            failures.append(f"{family}: missing from current measurement")
            continue
        print(f"{family:<24} {committed_speedup:>9.1f}x {measured:>9.1f}x "
              f"{floor:>9.1f}x")
        if measured < floor:
            failures.append(
                f"{family}: speedup {measured:.2f}x regressed more than "
                f"{100 * threshold:.0f}% below committed {committed_speedup:.2f}x")
    return failures


def check_analysis_regressions(
    threshold: float = ANALYSIS_THRESHOLD, retries: int = 2
) -> list:
    """Measure current analyzer wall-clock and diff against the snapshot.

    Two conditions fail the gate: the full-``src/`` two-tier pass breaks
    the committed hard cap (``cap_s``, the tier-1 acceptance budget), or
    any scope's wall time grows more than ``threshold`` above its
    committed value.  Wall clocks regress *upward*, so the sign is the
    mirror of the kernel-speedup check; retries keep scheduler noise
    from failing a healthy analyzer.
    """
    committed = json.loads(ANALYSIS_SNAPSHOT.read_text())
    cap_s = float(committed.get("cap_s", 10.0))
    baseline = {
        (row["scope"], row["families"]): row["wall_s"]
        for row in committed["rows"]
    }

    module = _load_bench_module("bench_analysis")
    current = {
        (row["scope"], row["families"]): row["wall_s"]
        for row in module.measure_analysis()
    }
    for attempt in range(retries):
        ceilings = {k: s * (1.0 + threshold) for k, s in baseline.items()}
        over = [
            k for k in baseline
            if current.get(k, float("inf")) > max(ceilings[k], 0.1)
        ]
        if not over and current.get(("src", "both"), float("inf")) < cap_s:
            break
        print(f"(retry {attempt + 1}: re-measuring scopes above ceiling)")
        for key, wall in (
            ((row["scope"], row["families"]), row["wall_s"])
            for row in module.measure_analysis()
        ):
            current[key] = min(current.get(key, float("inf")), wall)

    failures = []
    print(f"{'scope':<6} {'families':<12} {'committed':>10} {'current':>10} "
          f"{'ceiling':>10}")
    for key, committed_wall in baseline.items():
        scope, families = key
        # sub-100ms committed walls get an absolute floor on the ceiling:
        # a 50% margin on 20ms is pure scheduler noise, not a regression
        ceiling = max(committed_wall * (1.0 + threshold), 0.1)
        measured = current.get(key)
        if measured is None:
            failures.append(f"{scope}/{families}: missing from measurement")
            continue
        print(f"{scope:<6} {families:<12} {committed_wall:>9.3f}s "
              f"{measured:>9.3f}s {ceiling:>9.3f}s")
        if measured > ceiling:
            failures.append(
                f"{scope}/{families}: wall {measured:.3f}s regressed more "
                f"than {100 * threshold:.0f}% above committed "
                f"{committed_wall:.3f}s")
    full_src = current.get(("src", "both"))
    if full_src is not None and full_src >= cap_s:
        failures.append(
            f"src/both: wall {full_src:.3f}s breaks the {cap_s:.0f}s "
            "tier-1 acceptance cap")
    return failures


def check_serve_regressions(threshold: float = SERVE_THRESHOLD) -> list:
    """Replay the gate-scale serving soak and diff against the snapshot.

    The serving layer runs on *simulated* time, so the replayed rows are
    bit-reproducible given the seed — no retries needed.  Three
    conditions fail the gate: p99 simulated latency grows more than
    ``threshold`` above its committed value, a best-effort class's shed
    rate grows more than :data:`SERVE_SHED_SLACK` (absolute), or the
    URLLC shed rate is nonzero at all — the class-policy invariant is a
    hard zero, never a ratio.
    """
    committed = json.loads(SERVE_SNAPSHOT.read_text())
    baseline = {row["scenario"]: row for row in committed["rows"]}

    module = _load_bench_module("bench_serve_soak")
    current = {row["scenario"]: row for row in module.measure_serve_soak()}

    failures = []
    print(f"{'scenario':<14} {'metric':<16} {'committed':>10} {'current':>10} "
          f"{'ceiling':>10}")
    for scenario, base in baseline.items():
        row = current.get(scenario)
        if row is None:
            failures.append(f"{scenario}: missing from current measurement")
            continue
        # p99 simulated latency: one tick of absolute slack on top of the
        # fractional threshold keeps near-zero baselines meaningful
        ceiling = base["p99_latency_s"] * (1.0 + threshold) + base["tick_s"]
        measured = row["p99_latency_s"]
        print(f"{scenario:<14} {'p99_latency_s':<16} "
              f"{base['p99_latency_s']:>9.3f}s {measured:>9.3f}s "
              f"{ceiling:>9.3f}s")
        if measured > ceiling:
            failures.append(
                f"{scenario}: p99 sim latency {measured:.3f}s regressed "
                f"above ceiling {ceiling:.3f}s "
                f"(committed {base['p99_latency_s']:.3f}s)")
        if row["shed_rate_URLLC"] != 0.0:
            failures.append(
                f"{scenario}: URLLC shed rate {row['shed_rate_URLLC']:.4f} "
                "!= 0 — class shedding policy violated")
        for cls in ("eMBB", "mMTC"):
            key = f"shed_rate_{cls}"
            shed_ceiling = base[key] + SERVE_SHED_SLACK
            print(f"{scenario:<14} {key:<16} {base[key]:>10.3f} "
                  f"{row[key]:>10.3f} {shed_ceiling:>10.3f}")
            if row[key] > shed_ceiling:
                failures.append(
                    f"{scenario}: {cls} shed rate {row[key]:.3f} exceeds "
                    f"committed {base[key]:.3f} + {SERVE_SHED_SLACK} slack")
    return failures


def check_obs_regressions(retries: int = 2) -> list:
    """Replay the telemetry-overhead benchmark against its budgets.

    Unlike the other gates this one compares against *absolute* ratio
    ceilings (the committed ``budget`` per mode: no-op < 1.05,
    recording-on windowed/sampled < 1.15), not against the committed
    measurement — overhead ratios hover near 1.0, where a relative diff
    is pure noise but the budget is the actual promise.  A mode over
    budget is re-measured up to ``retries`` times and judged on its best
    observation.
    """
    committed = json.loads(OBS_SNAPSHOT.read_text())
    budgets = {row["mode"]: float(row["budget"]) for row in committed["rows"]}

    module = _load_bench_module("bench_obs_overhead")
    current = {row["mode"]: row["ratio"] for row in module.measure_obs_overhead()}
    for attempt in range(retries):
        if all(current.get(m, float("inf")) < b for m, b in budgets.items()):
            break
        print(f"(retry {attempt + 1}: re-measuring modes over budget)")
        for row in module.measure_obs_overhead():
            mode = row["mode"]
            current[mode] = min(current.get(mode, float("inf")), row["ratio"])

    failures = []
    print(f"{'mode':<24} {'current':>10} {'budget':>10}")
    for mode, budget in budgets.items():
        measured = current.get(mode)
        if measured is None:
            failures.append(f"{mode}: missing from current measurement")
            continue
        print(f"{mode:<24} {measured:>10.4f} {budget:>10.2f}")
        if measured >= budget:
            failures.append(
                f"{mode}: telemetry overhead ratio {measured:.4f} breaks "
                f"the {budget:.2f} budget")
    return failures


def check_signal_streaming_regressions(
    threshold: float = SIGNAL_THRESHOLD, retries: int = 2
) -> list:
    """Replay the streaming-DSP benchmark and diff against the snapshot.

    Each family's speedup over its block oracle must stay within
    ``threshold`` of the committed value — a drop means the overlap-save
    blocks, the polyphase evaluation, or the streaming STFT kernel fell
    off its fast path.  Wall-clock ratios carry scheduler noise, so a
    family below its floor is re-measured up to ``retries`` times and
    judged on its best observation, like the kernel gate.
    """
    committed = json.loads(SIGNAL_SNAPSHOT.read_text())
    baseline = {row["family"]: row["speedup"] for row in committed["rows"]}

    module = _load_bench_module("bench_signal_streaming")
    current = {row["family"]: row["speedup"]
               for row in module.measure_signal_streaming()}
    for attempt in range(retries):
        floors = {f: s * (1.0 - threshold) for f, s in baseline.items()}
        if all(current.get(f, 0.0) >= floors[f] for f in baseline):
            break
        print(f"(retry {attempt + 1}: re-measuring families below floor)")
        for row in module.measure_signal_streaming():
            family = row["family"]
            current[family] = max(current.get(family, 0.0), row["speedup"])

    failures = []
    print(f"{'family':<24} {'committed':>10} {'current':>10} {'floor':>10}")
    for family, committed_speedup in baseline.items():
        floor = committed_speedup * (1.0 - threshold)
        measured = current.get(family)
        if measured is None:
            failures.append(f"{family}: missing from current measurement")
            continue
        print(f"{family:<24} {committed_speedup:>9.2f}x {measured:>9.2f}x "
              f"{floor:>9.2f}x")
        if measured < floor:
            failures.append(
                f"{family}: speedup {measured:.2f}x regressed more than "
                f"{100 * threshold:.0f}% below committed "
                f"{committed_speedup:.2f}x")
    return failures


def check_firstorder_regressions(
    threshold: float = FIRSTORDER_THRESHOLD, retries: int = 2
) -> list:
    """Replay the first-order fast-path benchmark and diff the snapshot.

    Two invariants fail the gate outright, no retries:

    * ``miscertified`` must be 0 for every family — a certified batch
      answer that disagrees with the (converged) reference rung means an
      uncertified answer was served, the one thing the fast path must
      never do;
    * the batch families (``*_b256`` except warm starts) must clear the
      hard :data:`FIRSTORDER_SPEEDUP_FLOOR` of 5x over the per-problem
      rungs — this is the claim that justifies the rung's existence, so
      it is pinned absolutely rather than relative to the snapshot.

    On top of the floor, every family must stay within ``threshold`` of
    its committed speedup; wall-clock ratios carry scheduler noise, so a
    family below its relative floor is re-measured up to ``retries``
    times and judged on its best observation.
    """
    committed = json.loads(FIRSTORDER_SNAPSHOT.read_text())
    baseline = {row["family"]: row["speedup"] for row in committed["rows"]}

    module = _load_bench_module("bench_firstorder")
    rows = {row["family"]: row for row in module.measure_firstorder()}
    failures = []
    for family, row in rows.items():
        if row.get("miscertified", 0) != 0:
            failures.append(
                f"{family}: {row['miscertified']} certified answer(s) "
                "disagree with the reference rung — uncertified answers "
                "were served")
    hard = {f: FIRSTORDER_SPEEDUP_FLOOR for f in baseline
            if not f.startswith("box_qp_warm")}
    for attempt in range(retries):
        floors = {f: max(s * (1.0 - threshold), hard.get(f, 0.0))
                  for f, s in baseline.items()}
        if all(rows.get(f, {}).get("speedup", 0.0) >= floors[f]
               for f in baseline):
            break
        print(f"(retry {attempt + 1}: re-measuring families below floor)")
        for row in module.measure_firstorder():
            family = row["family"]
            if row["speedup"] > rows.get(family, {}).get("speedup", 0.0):
                rows[family] = row

    print(f"{'family':<20} {'committed':>10} {'current':>10} {'floor':>10}")
    for family, committed_speedup in baseline.items():
        floor = max(committed_speedup * (1.0 - threshold),
                    hard.get(family, 0.0))
        row = rows.get(family)
        if row is None:
            failures.append(f"{family}: missing from current measurement")
            continue
        print(f"{family:<20} {committed_speedup:>9.1f}x "
              f"{row['speedup']:>9.1f}x {floor:>9.1f}x")
        if row["speedup"] < floor:
            failures.append(
                f"{family}: speedup {row['speedup']:.2f}x below floor "
                f"{floor:.2f}x (committed {committed_speedup:.2f}x, "
                f"hard floor {hard.get(family, 0.0):.1f}x)")
    return failures


try:
    import pytest
except ImportError:  # CLI-only environments don't need the pytest shim
    pytest = None

if pytest is not None:
    @pytest.mark.perf
    def test_bench_gate():
        """Perf-marked pytest entry point (``pytest -m perf tools/bench_gate.py``);
        excluded from tier-1 by both the marker and ``testpaths``."""
        failures = check_regressions()
        assert not failures, "; ".join(failures)

    @pytest.mark.perf
    def test_analysis_gate():
        """Analyzer wall-clock gate against BENCH_analysis.json."""
        failures = check_analysis_regressions()
        assert not failures, "; ".join(failures)

    @pytest.mark.perf
    def test_serve_gate():
        """Serving-soak p99/shed-rate gate against BENCH_serve_soak.json."""
        failures = check_serve_regressions()
        assert not failures, "; ".join(failures)

    @pytest.mark.perf
    def test_obs_gate():
        """Telemetry-overhead budget gate against BENCH_obs_overhead.json."""
        failures = check_obs_regressions()
        assert not failures, "; ".join(failures)

    @pytest.mark.perf
    def test_signal_streaming_gate():
        """Streaming-DSP speedup gate against BENCH_signal_streaming.json."""
        failures = check_signal_streaming_regressions()
        assert not failures, "; ".join(failures)

    @pytest.mark.perf
    def test_firstorder_gate():
        """First-order fast-path gate against BENCH_firstorder.json:
        5x speedup floor + zero uncertified answers served."""
        failures = check_firstorder_regressions()
        assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional speedup drop before failing (default 0.25)")
    parser.add_argument(
        "--analysis-threshold", type=float, default=ANALYSIS_THRESHOLD,
        help="allowed fractional analyzer wall-clock growth before failing "
             "(default 0.5)")
    parser.add_argument(
        "--serve-threshold", type=float, default=SERVE_THRESHOLD,
        help="allowed fractional serving-soak p99 simulated-latency growth "
             "before failing (default 0.25)")
    parser.add_argument(
        "--signal-threshold", type=float, default=SIGNAL_THRESHOLD,
        help="allowed fractional streaming-DSP speedup drop before failing "
             "(default 0.3)")
    parser.add_argument(
        "--firstorder-threshold", type=float, default=FIRSTORDER_THRESHOLD,
        help="allowed fractional first-order fast-path speedup drop before "
             "failing; the absolute 5x floor always applies (default 0.3)")
    opts = parser.parse_args(argv)
    failures = check_regressions(opts.threshold)
    if ANALYSIS_SNAPSHOT.is_file():
        print()
        failures += check_analysis_regressions(opts.analysis_threshold)
    else:
        print("\n(no BENCH_analysis.json snapshot; analyzer gate skipped)")
    if SERVE_SNAPSHOT.is_file():
        print()
        failures += check_serve_regressions(opts.serve_threshold)
    else:
        print("\n(no BENCH_serve_soak.json snapshot; serve gate skipped)")
    if OBS_SNAPSHOT.is_file():
        print()
        failures += check_obs_regressions()
    else:
        print("\n(no BENCH_obs_overhead.json snapshot; obs gate skipped)")
    if SIGNAL_SNAPSHOT.is_file():
        print()
        failures += check_signal_streaming_regressions(opts.signal_threshold)
    else:
        print("\n(no BENCH_signal_streaming.json snapshot; "
              "signal gate skipped)")
    if FIRSTORDER_SNAPSHOT.is_file():
        print()
        failures += check_firstorder_regressions(opts.firstorder_threshold)
    else:
        print("\n(no BENCH_firstorder.json snapshot; firstorder gate skipped)")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

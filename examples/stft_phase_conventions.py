#!/usr/bin/env python
"""STFT phase conventions, skew, and correction (paper §IV-A/B, Eqs. 5-6).

Demonstrates, on a chirp:

  1. the three conventions produce identical magnitudes but different
     phases;
  2. the simplified (causal) convention carries a delay of floor(Lg/2)
     samples plus a phase skew exp(-2 pi i m floor(Lg/2)/M) — and the
     exact pointwise correction recovers the centered transform of the
     advanced signal to machine precision;
  3. the Fig. 3-style detector battery catalogues these (and other)
     numerical issues automatically;
  4. the gabphasederiv reliability caveat the paper quotes from LTFAT.

Run:  python examples/stft_phase_conventions.py
"""

import numpy as np

from repro.signal import (
    GaborFrame,
    convert_convention,
    delay_of_simplified_convention,
    gabor_transform,
    gabphasederiv,
    get_window,
    linear_chirp,
    magnitude_mismatch,
    phase_skew,
    run_detectors,
    stft,
)


def main() -> None:
    s = linear_chirp(1024, f0=0.05, f1=0.3)
    lg, hop, n_fft = 32, 4, 64
    g = get_window("hann", lg)

    ti = stft(s, g, hop=hop, n_fft=n_fft, convention="time_invariant")
    fi = stft(s, g, hop=hop, n_fft=n_fft, convention="frequency_invariant")
    simp = stft(s, g, hop=hop, n_fft=n_fft, convention="simplified")

    print("=== 1. magnitudes agree, phases differ ===")
    print(f"|TI| vs |FI| mismatch   : {magnitude_mismatch(ti.coefficients, fi.coefficients):.2e}")
    print(f"TI vs FI phase skew     : {phase_skew(ti.coefficients, fi.coefficients):.3f} rad")
    print(f"FI vs simplified skew   : "
          f"{phase_skew(fi.coefficients[:, 4:-12], simp.coefficients[:, 4:-12]):.3f} rad")

    print("\n=== 2. the pointwise conversion matrix (exact) ===")
    converted = convert_convention(fi, "time_invariant")
    err = float(np.max(np.abs(converted.coefficients - ti.coefficients)))
    print(f"FI -> TI conversion residual: {err:.2e}  (pointwise phase factors)")

    half = delay_of_simplified_convention(lg)
    fi_advanced = stft(s[half:], g, hop=hop, n_fft=n_fft,
                       convention="frequency_invariant")
    m = np.arange(n_fft)[:, None]
    corrected = simp.coefficients * np.exp(2j * np.pi * m * half / n_fft)
    nf = min(corrected.shape[1], fi_advanced.coefficients.shape[1]) - 8
    rel = float(np.linalg.norm(corrected[:, 4:nf] - fi_advanced.coefficients[:, 4:nf])
                / np.linalg.norm(fi_advanced.coefficients[:, 4:nf]))
    print(f"simplified convention: delay = {half} samples (= floor(Lg/2)), "
          f"skew factor exp(-2 pi i m {half}/{n_fft})")
    print(f"after correction + advance, residual vs centered transform: {rel:.2e}")

    print("\n=== 3. the Fig. 3 numerical-issue catalog ===")
    for issue in run_detectors():
        print("  " + issue.as_row())

    print("\n=== 4. gabphasederiv reliability (the LTFAT caveat) ===")
    frame = GaborFrame(window_length=32, hop=8, n_channels=64)
    res = gabor_transform(s[:512], frame)
    deriv, reliable = gabphasederiv(res, dflag="t")
    print(f"bins flagged reliable : {reliable.mean():.1%}")
    mag = np.abs(res.coefficients)
    low = mag < 1e-8 * mag.max()
    if np.any(low):
        print(f"phase-derivative spread on near-zero bins: {np.std(deriv[low]):.2f} "
              "(≈ random, as the paper warns)")
    high = reliable & (mag > 0.1 * mag.max())
    print(f"phase-derivative spread on strong bins   : {np.std(deriv[high]):.2f}")


if __name__ == "__main__":
    main()

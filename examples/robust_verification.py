#!/usr/bin/env python
"""Robustness verification through the RCR ladder (paper §II-B-2).

Trains a small classifier three ways (standard, PGD, convex-relaxation
adversarial), then for each model:

  * walks one robustness spec up the exact/relaxed verifier ladder
    (IBP -> CROWN-IBP -> CROWN -> LP -> exact MILP), printing the margin
    bound, verdict, and cost at each grade;
  * prints the layer-wise bound-tightening table;
  * reports the mean certified radius.

Run:  python examples/robust_verification.py
"""

import numpy as np

from repro.core import RobustConvexRelaxation
from repro.verify import RobustTrainer, classification_spec, make_two_moons


def main() -> None:
    x, y = make_two_moons(150, rng=np.random.default_rng(0))
    eps = 0.12

    for mode in ("standard", "pgd", "relaxation"):
        trainer = RobustTrainer(hidden=12, depth=2, mode=mode, eps_train=eps, seed=3)
        trainer.train(x, y, epochs=25)
        acc = trainer.accuracy(x, y)
        radius = trainer.mean_certified_radius(x, y, n_points=15)
        print(f"\n=== training mode: {mode} ===")
        print(f"clean accuracy       : {acc:.2f}")
        print(f"mean certified radius: {radius:.3f}")

        # pick a correctly classified point and verify a spec on it
        logits = trainer.net.forward(x, training=False)
        correct = np.argmax(logits, axis=1) == y
        idx = int(np.argmax(correct))
        spec = classification_spec(x[idx], eps=eps / 2, true_label=int(y[idx]),
                                   other_label=1 - int(y[idx]), n_classes=2)
        rcr = RobustConvexRelaxation(trainer.net)
        chain = rcr.relaxation_chain(spec)
        print(f"relaxation chain for one spec (eps = {eps / 2}):")
        print(f"{'method':>10s} | {'grade':>18s} | {'margin bound':>12s} | {'time (s)':>8s}")
        print("-" * 58)
        for step in chain.steps:
            print(f"{step.name:>10s} | {step.grade.name:>18s} | "
                  f"{step.bound:12.4f} | {step.solve_time:8.4f}")
        print(f"chain monotone (looser grade -> weaker bound): {chain.is_monotone()}")

        report = rcr.tightness_report(x[idx], eps / 2)
        factors = report.tightening_factor("ibp", "crown")
        print("layer-wise tightening (IBP width / CROWN width): "
              + ", ".join(f"L{i}={f:.2f}x" for i, f in enumerate(factors)))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Three routes to the same nonconvex optimum (paper §IV-C).

The paper's §IV-C irony — resolving QoS convex optimizations "involves
formulating successive gradations of convex optimizations" — is shown
concretely on one nonconvex problem: minimize an *indefinite* quadratic
over a ball/box.  Three independent machines from this library solve it:

  1. the Moré-Sorensen trust-region solver (exact for ball constraints);
  2. the Shor SDP relaxation (Eq. 7 -> lifted SDP; tight for this class);
  3. spatial branch-and-bound with McCormick envelopes (box constraint).

All three agree — and route 3 certifies its answer with a global lower
bound, the "valid bounds" §II-B demands.

Run:  python examples/nonconvex_routes.py
"""

import numpy as np

from repro.convex import (
    QCQPProblem,
    QuadraticForm,
    shor_relaxation,
    solve_trust_region,
)
from repro.minlp import spatial_minimize_quadratic


def main() -> None:
    rng = np.random.default_rng(11)
    q = rng.standard_normal((3, 3))
    q = q + q.T  # indefinite
    g = rng.standard_normal(3)
    eigs = np.linalg.eigvalsh(q)
    print(f"problem: min 0.5 x'Qx + g'x,  eig(Q) = {np.round(eigs, 2)}  (indefinite)")

    radius = 1.5
    print(f"\n--- route 1: trust-region subproblem (||x|| <= {radius}) ---")
    tr = solve_trust_region(g, q, delta=radius)
    print(f"minimizer {np.round(tr.p, 4)}")
    print(f"value     {tr.value:.6f}   (boundary={tr.on_boundary}, "
          f"hard case={tr.hard_case}, lambda={tr.lagrange_multiplier:.4f})")

    print("\n--- route 2: Shor SDP relaxation of the same ball QCQP ---")
    obj = QuadraticForm(q, g)
    ball = QuadraticForm(2 * np.eye(3), np.zeros(3), -radius**2)
    shor = shor_relaxation(QCQPProblem(obj, [ball]))
    print(f"SDP lower bound   {shor.lower_bound:.6f}")
    print(f"recovered point   {np.round(shor.x_recovered, 4)} "
          f"(feasible={shor.recovered_feasible})")
    print(f"recovered value   {shor.recovered_objective:.6f}  "
          f"relaxation gap {shor.relaxation_gap:.2e}")

    print("\n--- route 3: spatial BnB with McCormick envelopes (box) ---")
    # the box inscribed in the ball: x in [-radius/sqrt(3), radius/sqrt(3)]^3
    half = radius / np.sqrt(3.0)
    res = spatial_minimize_quadratic(q, g, -half * np.ones(3), half * np.ones(3))
    print(f"box minimizer     {np.round(res.x, 4)}")
    print(f"box value         {res.objective:.6f}  certified lower bound "
          f"{res.lower_bound:.6f}  ({res.nodes} nodes, converged={res.converged})")

    print("\nagreement check (routes 1 vs 2, same feasible set):")
    print(f"  trust-region value {tr.value:.6f}  vs  Shor bound {shor.lower_bound:.6f}"
          f"  -> gap {abs(tr.value - shor.lower_bound):.2e}")
    print("route 3 solves the *inscribed box*, so its optimum is >= the ball's:")
    print(f"  {res.objective:.6f} >= {tr.value:.6f}: {res.objective >= tr.value - 1e-9}")


if __name__ == "__main__":
    main()

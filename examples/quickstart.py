#!/usr/bin/env python
"""Quickstart: run the full RCR architectural stack (paper Fig. 1).

The stack has three stages, each enabling the one above it:

  3. adaptive inertial weighting, solved as a convex QP each generation
     (the paper's "M-GNU-O accelerant");
  2. a QP-equipped discrete PSO that tunes the MSY3I (squeezed YOLO-style
     detector) hyperparameters;
  1. the RCR paradigm itself: convex-relaxation adversarial training plus
     layer-wise relaxation verification through the exact/relaxed ladder.

Run:  python examples/quickstart.py
"""

from repro.core import run_rcr_stack


def main() -> None:
    print("Running the RCR architectural stack (this takes a few seconds)...")
    report = run_rcr_stack(swarm_size=5, generations=3,
                           tuning_train_steps=12, robust_epochs=12, seed=0)

    print("\n=== RCR stack report (paper Fig. 1) ===")
    for stage in report.stages:
        print(f"\n[{stage.name}]  ({stage.wall_time:.2f} s)")
        for key, value in stage.metrics.items():
            print(f"    {key:28s} = {value:.4g}")

    print("\nPSO-tuned MSY3I configuration:")
    for key, value in report.tuned_config.items():
        print(f"    {key:18s} = {value}")

    s1 = report.stage("rcr-paradigm").metrics
    verdict = "CERTIFIED" if s1["certified"] else "not certified"
    print(f"\nRobustness spec on the RCR-trained classifier: {verdict} "
          f"(margin lower bound {s1['margin_lower_bound']:.4f}, "
          f"{int(s1['ladder_attempts'])} ladder attempt(s))")
    print(f"Mean layer-wise bound tightening (CROWN vs IBP): "
          f"{s1['mean_layer_tightening']:.2f}x")


if __name__ == "__main__":
    main()

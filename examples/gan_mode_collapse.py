#!/usr/bin/env python
"""Mode collapse and the mixture-of-generators remedy (paper §IV, Fig. 2).

Trains three GAN configurations on the 8-mode Gaussian ring:

  * a single generator without batch-norm (collapses to a few modes);
  * a single generator with selective batch-norm (the paradigm-1,
    stability-first configuration);
  * the paper's DCGAN #3 remedy — a mixture of three generators sharing
    one discriminator.

Prints per-configuration mode coverage, sample quality, loss-oscillation
audits, and the forward-stability probe ("a forward stable DCGAN does
not amplify perturbations of the input set").

Run:  python examples/gan_mode_collapse.py
"""

import numpy as np

from repro.core import audit_training_trace, network_amplification
from repro.nn import GANConfig, GANTrainer, MixtureOfGenerators

STEPS = 3000


def describe(name, trainer, trace, config) -> None:
    audit = audit_training_trace(trace.g_losses)
    gen = trainer.generator if hasattr(trainer, "generator") else trainer.generators[0]
    amp = network_amplification(gen, np.zeros((4, config.latent_dim)))
    print(f"\n--- {name} ---")
    print(f"mode coverage over training : {trace.coverage}")
    print(f"sample quality over training: {[round(q, 2) for q in trace.quality]}")
    print(f"generator-loss oscillation  : {audit.oscillation:.3f} "
          f"(stable={audit.is_stable})")
    print(f"forward amplification       : {amp:.2f}")


def main() -> None:
    base = dict(batch_size=128, hidden=64, depth=3, latent_dim=8,
                lr=1e-3, mode_sigma=0.1)

    cfg_none = GANConfig(batchnorm="none", **base)
    single = GANTrainer(cfg_none, seed=1)
    trace = single.train(STEPS, metric_every=STEPS // 6)
    describe("single generator, no batch-norm", single, trace, cfg_none)

    cfg_sel = GANConfig(batchnorm="selective", **base)
    stable = GANTrainer(cfg_sel, seed=1)
    trace_s = stable.train(STEPS, metric_every=STEPS // 6)
    describe("single generator, selective batch-norm (paradigm 1)", stable, trace_s, cfg_sel)

    mixture = MixtureOfGenerators(3, cfg_none, seed=1)
    trace_m = mixture.train(STEPS, metric_every=STEPS // 6)
    describe("mixture of 3 generators (DCGAN #3 remedy)", mixture, trace_m, cfg_none)

    print("\nsummary (best mode coverage of 8):")
    print(f"  single/no-bn     : {max(trace.coverage)}")
    print(f"  single/selective : {max(trace_s.coverage)}")
    print(f"  mixture of 3     : {max(trace_m.coverage)}")
    print("\nThe paper's claim — the additional generator 'assist[s] in "
          "mitigating mode failure' — corresponds to the mixture row "
          "covering more modes than the single no-bn generator.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""5G QoS radio resource allocation end to end (paper §I's motivating problem).

Builds a small OFDMA cell with an eMBB/URLLC/mMTC service mix, then:

  1. solves one scheduling frame's RRA MINLP four ways (exact BnB,
     LP-relaxation + rounding, discrete PSO, greedy) and compares them;
  2. allocates transmit power over the winner's blocks by water-filling
     and by the minimum-energy QCQP with SINR floors;
  3. partitions bandwidth across network slices with the convex QP;
  4. runs the frame-by-frame scheduler and reports per-class QoS
     satisfaction.

Run:  python examples/qos_resource_allocation.py
"""

import numpy as np

from repro.qos import (
    ChannelConfig,
    ChannelModel,
    QoSRequirement,
    RRAProblem,
    Scheduler,
    ServiceClass,
    SliceSpec,
    TrafficGenerator,
    UserSession,
    allocate_slices,
    qcqp_power_control,
    solve_rra_exact,
    solve_rra_greedy,
    solve_rra_pso,
    solve_rra_relaxed,
    water_filling,
)


def scaled_users(traffic: TrafficGenerator, n: int, scale: float):
    """Draw users and scale their QoS floors to the small grid."""
    users = []
    for u in traffic.users(n):
        q = u.qos
        users.append(UserSession(u.user_id, u.service, QoSRequirement(
            min_rate_bps=q.min_rate_bps * scale,
            max_latency_ms=q.max_latency_ms,
            reliability=q.reliability,
            priority=q.priority,
        )))
    return users


def main() -> None:
    rng = np.random.default_rng(7)
    channel = ChannelModel(ChannelConfig(n_blocks=6), rng=rng)
    traffic = TrafficGenerator(rng=rng)
    users = scaled_users(traffic, 3, scale=0.02)

    print("=== one scheduling frame: the RRA MINLP, four ways ===")
    problem = RRAProblem(
        gains=channel.gains(len(users)),
        users=users,
        power_levels_mw=np.array([50.0, 100.0]),
        total_power_mw=480.0,
        noise_mw=channel.noise_linear_mw,
    )
    results = [
        solve_rra_exact(problem, max_nodes=20000, time_limit=30.0),
        solve_rra_relaxed(problem),
        solve_rra_pso(problem, swarm_size=14, generations=40),
        solve_rra_greedy(problem),
    ]
    print(f"{'method':>10s} | {'rate (Mb/s)':>11s} | {'QoS ok':>6s} | {'time (s)':>8s}")
    print("-" * 48)
    for res in results:
        print(f"{res.method:>10s} | {res.total_rate / 1e6:11.2f} | "
              f"{str(res.qos_ok):>6s} | {res.wall_time:8.3f}")

    print("\n=== power allocation over the exact solution's blocks ===")
    exact = results[0]
    used_blocks = [b for b, ch in enumerate(exact.choice) if ch >= 0]
    owner = [int(exact.choice[b]) // problem.n_levels for b in used_blocks]
    gains = np.array([problem.gains[u, b] for u, b in zip(owner, used_blocks)])
    budget = problem.total_power_mw
    p_wf = water_filling(gains, budget, problem.noise_mw)
    print(f"water-filling over {len(used_blocks)} blocks: "
          f"powers {np.round(p_wf, 1)} mW (sum {p_wf.sum():.1f})")
    floors = np.full(len(used_blocks), 20.0)  # 13 dB SINR floor
    pc = qcqp_power_control(gains, problem.noise_mw, budget, floors)
    print(f"min-energy QCQP with SINR floors: powers {np.round(pc.powers_mw, 2)} mW "
          f"(feasible={pc.feasible})")

    print("\n=== network slicing across the three 5G service classes ===")
    slices = [
        SliceSpec(ServiceClass.EMBB, efficiency_bps_per_hz=5.0, min_rate_bps=40e6),
        SliceSpec(ServiceClass.URLLC, efficiency_bps_per_hz=2.0, min_rate_bps=4e6, weight=2.0),
        SliceSpec(ServiceClass.MMTC, efficiency_bps_per_hz=1.0, min_rate_bps=1e6),
    ]
    alloc = allocate_slices(slices, total_bw_hz=20e6)
    for spec, bw, rate in zip(slices, alloc.bandwidth_hz, alloc.rates_bps):
        print(f"{spec.service.value:>6s}: {bw / 1e6:5.2f} MHz -> {rate / 1e6:6.1f} Mb/s "
              f"(floor {spec.min_rate_bps / 1e6:.1f})")

    print("\n=== link adaptation: what reliability costs in rate ===")
    from repro.qos import reliability_rate_table

    for snr_db in (6.0, 12.0, 20.0):
        rows = reliability_rate_table(snr_db, [0.9, 0.99, 0.99999])
        rendered = ", ".join(f"{rel:.5f}->{name} {rate / 1e3:.0f} kb/s"
                             for rel, name, rate in rows)
        print(f"SINR {snr_db:4.0f} dB: {rendered}")

    print("\n=== admission control: who gets in when capacity is short ===")
    from repro.qos import AdmissionProblem, solve_admission_exact, solve_admission_greedy

    demand_rng = np.random.default_rng(23)
    many_users = scaled_users(traffic, 8, scale=0.02)
    demands = demand_rng.uniform(0.15, 0.45, len(many_users))
    admission = AdmissionProblem(users=many_users, resource_demand=demands)
    adm_exact = solve_admission_exact(admission)
    adm_greedy = solve_admission_greedy(admission)
    for res in (adm_exact, adm_greedy):
        admitted_ids = [u.user_id for u, a in zip(many_users, res.admitted) if a]
        print(f"{res.method:>10s}: utility {res.utility:5.1f}, load {res.load:4.2f}, "
              f"admitted {admitted_ids}")

    print("\n=== 8-frame scheduling run (greedy strategy) ===")
    scheduler = Scheduler(n_users=4, strategy="greedy", rate_floor_scale=0.05, seed=11)
    report = scheduler.run(8)
    print(f"mean cell rate      : {report.mean_rate / 1e6:.1f} Mb/s")
    print(f"QoS success rate    : {report.qos_success_rate:.2f}")
    for svc, sat in report.class_satisfaction().items():
        print(f"  {svc.value:>6s} satisfaction : {sat:.2f}")


if __name__ == "__main__":
    main()
